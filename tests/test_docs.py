"""The user documentation must exist and stay internally consistent."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_checker():
    """Import tools/check_docs_links.py as a module (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_pages_exist():
    assert (REPO / "README.md").is_file()
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "schedules.md").is_file()
    assert (REPO / "docs" / "scenarios.md").is_file()
    assert (REPO / "docs" / "performance.md").is_file()
    assert (REPO / "docs" / "service.md").is_file()


def test_docs_link_checker_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_scenario_gallery_is_generated_and_current():
    """The docs/scenarios.md gallery is simulator output: regenerating it
    must be a no-op, so a hand-edited or stale gallery fails here."""
    result = subprocess.run(
        [
            sys.executable,
            str(REPO / "tools" / "gen_scenario_gallery.py"),
            "--check",
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_readme_documents_every_subcommand():
    from repro.harness.cli import SUBCOMMANDS

    text = (REPO / "README.md").read_text() + (
        REPO / "docs" / "schedules.md"
    ).read_text()
    for name in (
        "fig2", "table5", "table6", "schedules", "plan", "scenarios", "serve"
    ):
        assert name in SUBCOMMANDS and name in text


def test_readme_quickstart_commands_run():
    """The README's first CLI command works exactly as written."""
    from repro.harness.cli import main

    assert main(["fig2"]) == 0


class TestCheckerCatchesDrift:
    """The extended checker must actually flag stale CLI/API mentions."""

    def check_text(self, tmp_path, text: str) -> list[str]:
        """Run the real check_file over a synthetic page, minus the
        file-reference checks (a tmp page can't resolve repo paths)."""
        checker = load_checker()
        page = tmp_path / "page.md"
        page.write_text(text)
        problems = checker.check_file(
            page,
            checker.cli_surface(),
            checker.known_callables(),
            checker.service_routes(),
        )
        return [p for p in problems if "missing file reference" not in p]

    def test_cli_surface_covers_all_subcommands(self):
        checker = load_checker()
        from repro.harness.cli import SUBCOMMANDS

        cli = checker.cli_surface()
        assert set(cli) == set(SUBCOMMANDS)
        assert "--scenario" in cli["plan"]
        assert "--samples" in cli["scenarios"]

    def test_flags_unknown_subcommand_and_option(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "Run `repro-experiments scenariosz list` or\n"
            "`repro-experiments plan --devices 8 --frobnicate`.\n",
        )
        assert any("scenariosz" in p for p in problems)
        assert any("--frobnicate" in p for p in problems)

    def test_accepts_valid_cli_usage(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "`repro-experiments scenarios compare --scenario slow-node "
            "--samples 64 --json`\n",
        )
        assert problems == []

    def test_flags_unknown_kwarg_in_python_block(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "```python\n"
            "from repro.planner import plan\n"
            "plan(model, parallel, scenario='slow-node', frobnicate=3)\n"
            "```\n",
        )
        assert any("frobnicate" in p for p in problems)

    def test_flags_unknown_scenario_kwarg(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "```python\n"
            "from repro.scenarios import ClusterScenario\n"
            "ClusterScenario(name='x', straggler_speed=0.5)\n"
            "```\n",
        )
        assert any("straggler_speed" in p for p in problems)

    def test_flags_unparseable_python_block(self, tmp_path):
        problems = self.check_text(
            tmp_path, "```python\nplan(model,, parallel)\n```\n"
        )
        assert any("does not parse" in p for p in problems)

    def test_flags_unknown_http_endpoint(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "Call `POST /v1/frobnicate` or `GET /healthz-extra` to plan.\n",
        )
        assert any("/v1/frobnicate" in p for p in problems)
        assert any("/healthz-extra" in p for p in problems)

    def test_flags_wrong_method_on_real_route(self, tmp_path):
        problems = self.check_text(tmp_path, "Use `GET /v1/plan`.\n")
        assert any("GET /v1/plan" in p for p in problems)

    def test_accepts_valid_endpoints(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "`POST /v1/plan`, `GET /healthz`, `GET /stats` and "
            "`POST /shutdown` are all live.\n",
        )
        assert problems == []

    def test_route_coverage_flags_undocumented_route(self):
        checker = load_checker()
        routes = checker.service_routes()
        assert ("POST", "/v1/plan") in routes
        problems = checker.check_route_coverage(
            routes, "Only `GET /healthz` is documented here.\n"
        )
        assert any("/v1/plan" in p for p in problems)
        full_text = "\n".join(
            f"`{method} {path}`" for method, path in routes
        )
        assert checker.check_route_coverage(routes, full_text) == []

    def test_accepts_valid_kwargs(self, tmp_path):
        problems = self.check_text(
            tmp_path,
            "```python\n"
            "from repro.planner import PlannerConstraints, plan\n"
            "plans = plan(model, parallel,\n"
            "             PlannerConstraints(memory_budget_gib=40.0),\n"
            "             scenario='slow-node', robustness='p95')\n"
            "```\n",
        )
        assert problems == []
