"""The user documentation must exist and stay internally consistent."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_pages_exist():
    assert (REPO / "README.md").is_file()
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "schedules.md").is_file()


def test_docs_link_checker_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_readme_documents_every_subcommand():
    from repro.harness.cli import SUBCOMMANDS

    text = (REPO / "README.md").read_text() + (
        REPO / "docs" / "schedules.md"
    ).read_text()
    for name in ("fig2", "table5", "table6", "schedules", "plan"):
        assert name in SUBCOMMANDS and name in text


def test_readme_quickstart_commands_run():
    """The README's first CLI command works exactly as written."""
    from repro.harness.cli import main

    assert main(["fig2"]) == 0
