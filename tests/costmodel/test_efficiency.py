"""Tests for the kernel-efficiency model and MFU metric."""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel import (
    A100_SXM_80G,
    HardwareModel,
    KernelEfficiencyModel,
    iteration_flops,
    mfu,
)


class TestEfficiencyCurve:
    def test_monotone_in_each_dimension(self):
        eff = KernelEfficiencyModel()
        base = eff.matmul_efficiency(1024, 1024, 1024)
        assert eff.matmul_efficiency(2048, 1024, 1024) > base
        assert eff.matmul_efficiency(1024, 2048, 1024) > base
        assert eff.matmul_efficiency(1024, 1024, 2048) > base

    def test_bounded_by_max(self):
        eff = KernelEfficiencyModel()
        assert eff.matmul_efficiency(1 << 20, 1 << 20, 1 << 20) < (
            eff.max_matmul_efficiency
        )

    def test_training_scale_matmuls_realistic(self):
        """Transformer-sized matmuls land in the 50–65 % band the
        paper's ~50 % MFU implies."""
        eff = KernelEfficiencyModel()
        e = eff.matmul_efficiency(2048, 3072, 4 * 3072)
        assert 0.5 < e < 0.66

    def test_small_shards_lose_efficiency(self):
        """§6.5: partitioned operations are less parallelized."""
        eff = KernelEfficiencyModel()
        assert eff.matmul_efficiency(2048, 3072, 256) < (
            0.9 * eff.matmul_efficiency(2048, 3072, 262144)
        )

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            KernelEfficiencyModel().matmul_efficiency(0, 10, 10)


class TestTimes:
    def test_matmul_time_includes_launch_overhead(self):
        eff = KernelEfficiencyModel()
        tiny = eff.matmul_time(1, 1, 1, A100_SXM_80G)
        assert tiny >= A100_SXM_80G.kernel_launch_overhead

    def test_elementwise_bandwidth_bound(self):
        eff = KernelEfficiencyModel()
        one_gb = eff.elementwise_time(1e9, A100_SXM_80G)
        assert one_gb > 1e9 / eff.hbm_bandwidth  # can't beat peak

    def test_flops_time_validation(self):
        eff = KernelEfficiencyModel()
        with pytest.raises(ValueError):
            eff.flops_time(1e9, A100_SXM_80G, 1.5)
        with pytest.raises(ValueError):
            eff.flops_time(-1, A100_SXM_80G, 0.5)
        with pytest.raises(ValueError):
            eff.elementwise_time(-1, A100_SXM_80G)


class TestMFU:
    def test_perfect_efficiency_bound(self):
        model = ModelConfig(
            num_layers=8,
            hidden_size=512,
            num_attention_heads=8,
            seq_length=512,
            vocab_size=8192,
        )
        parallel = ParallelConfig(pipeline_size=4, num_microbatches=16)
        flops = iteration_flops(model, parallel)
        # Running exactly at aggregate peak would be MFU = 1.
        perfect_time = flops / (4 * A100_SXM_80G.peak_flops)
        assert mfu(model, parallel, A100_SXM_80G, perfect_time) == pytest.approx(1.0)

    def test_slower_run_lower_mfu(self):
        model = ModelConfig(
            num_layers=8,
            hidden_size=512,
            num_attention_heads=8,
            seq_length=512,
            vocab_size=8192,
        )
        parallel = ParallelConfig(pipeline_size=4, num_microbatches=16)
        fast = mfu(model, parallel, A100_SXM_80G, 1.0)
        slow = mfu(model, parallel, A100_SXM_80G, 2.0)
        assert fast == pytest.approx(2 * slow)

    def test_rejects_nonpositive_time(self):
        model = ModelConfig(
            num_layers=2, hidden_size=64, num_attention_heads=2,
            seq_length=64, vocab_size=128,
        )
        with pytest.raises(ValueError):
            mfu(model, ParallelConfig(pipeline_size=1), A100_SXM_80G, 0.0)


class TestHardware:
    def test_fits(self):
        hw = HardwareModel()
        assert hw.fits(hw.memory_bytes)
        assert not hw.fits(hw.memory_bytes + 1)

    def test_paper_testbed_defaults(self):
        assert A100_SXM_80G.peak_flops == pytest.approx(312e12)
        assert A100_SXM_80G.memory_bytes == pytest.approx(80 * 1024**3)
