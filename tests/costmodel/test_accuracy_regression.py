"""Accuracy regression for the committed reference profile.

``src/repro/costmodel/profiles/a100-sim.json`` is the fitted reference
the planner's trust-gated verification relies on.  These tests are the
drift detector: if the estimator or simulator changes enough that the
profile's stored per-family error bounds no longer hold, they fail and
the fix is to re-fit (``repro-experiments calibrate fit``) — not to
loosen the bounds.

Everything prices the deterministic seed-0 quick grid so the suite
stays in tier-1 time; CI's ``calibration-accuracy`` job runs the same
check through the CLI (``calibrate report --quick --check``).
"""

from __future__ import annotations

import math

import pytest

from repro.costmodel import (
    BUILTIN_PROFILE,
    HardwareProfile,
    builtin_profiles_dir,
    check_profile,
    evaluate_profile,
    get_cost_model,
)

# The improvement the tentpole promises: fitted MARE at most half the
# analytic model's on the same grid.
IMPROVEMENT_RATIO = 0.5

# Committed per-family max |relative error| ceilings (fraction, not %).
# Intentionally a little above the fitted bounds so estimator noise
# does not flap CI, but tight enough that real drift trips them.
FAMILY_MAX_ERROR = {
    "baseline": 0.04,
    "redis": 0.04,
    "interlaced": 0.08,
    "vocab-1": 0.08,
    "vocab-2": 0.08,
    "vhalf-baseline": 0.04,
    "vhalf-vocab-1": 0.04,
    "vhalf-vocab-2": 0.04,
}


@pytest.fixture(scope="module")
def profile() -> HardwareProfile:
    return HardwareProfile.load(builtin_profiles_dir() / f"{BUILTIN_PROFILE}.json")


@pytest.fixture(scope="module")
def fresh_report(profile):
    """Re-measured accuracy of the committed profile on the quick grid."""
    return evaluate_profile(profile, quick=True, seed=0)


class TestCommittedProfile:
    def test_registered_and_calibrated(self, profile):
        assert profile.name == BUILTIN_PROFILE
        assert profile.calibrated
        registered = get_cost_model(BUILTIN_PROFILE)
        assert registered.profile.digest() == profile.digest()

    def test_stored_report_meets_improvement_criterion(self, profile):
        report = profile.report
        assert report is not None
        assert report.grid == "full"
        assert report.mean_abs_rel_error <= (
            IMPROVEMENT_RATIO * report.baseline_mean_abs_rel_error
        )

    def test_stored_bounds_under_committed_ceilings(self, profile):
        for fit in profile.fits:
            ceiling = FAMILY_MAX_ERROR[fit.method]
            assert fit.max_abs_rel_error <= ceiling, (
                f"{fit.method}: stored bound "
                f"{100 * fit.max_abs_rel_error:.2f}% exceeds the committed "
                f"ceiling {100 * ceiling:.2f}% — re-fit the profile"
            )

    def test_every_family_has_an_error_bound(self, profile):
        from repro.harness.experiments import KNOWN_METHODS

        for method in KNOWN_METHODS:
            bound = profile.error_bound(method)
            assert bound is not None and 0.0 < bound < 0.10, method


class TestFreshEvaluation:
    def test_check_profile_passes(self, profile, fresh_report):
        problems = check_profile(profile, fresh_report, tolerance=1.25)
        assert problems == [], "\n".join(problems)

    def test_fresh_mare_still_halves_analytic(self, profile, fresh_report):
        assert fresh_report.baseline_mean_abs_rel_error > 0.0
        assert fresh_report.mean_abs_rel_error <= (
            IMPROVEMENT_RATIO * fresh_report.baseline_mean_abs_rel_error
        )

    def test_fresh_errors_are_finite_and_sane(self, fresh_report):
        for row in fresh_report.families:
            assert math.isfinite(row.mean_abs_rel_error)
            assert math.isfinite(row.max_abs_rel_error)
            assert 0.0 <= row.mean_abs_rel_error <= row.max_abs_rel_error


class TestProfileRoundTrip:
    def test_json_round_trip_preserves_digest(self, profile, tmp_path):
        path = profile.save(tmp_path / "copy.json")
        again = HardwareProfile.load(path)
        assert again == profile
        assert again.digest() == profile.digest()

    def test_uncalibrated_profile_has_no_bounds(self):
        blank = HardwareProfile(name="blank")
        assert not blank.calibrated
        assert blank.error_bound("baseline") is None
