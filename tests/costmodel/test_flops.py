"""Tests for the Table 4 FLOPs model (Appendix A)."""

import pytest

from repro.config import ModelConfig
from repro.costmodel import (
    input_layer_flops,
    model_flops_per_iteration,
    output_layer_flops,
    transformer_layer_flops,
    vocab_to_transformer_compute_ratio,
)


@pytest.fixture
def model() -> ModelConfig:
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=131072,
    )


class TestTable4Formulas:
    def test_transformer_total(self, model):
        b, s, h = 1, model.seq_length, model.hidden_size
        expected = b * s * h * (72 * h + 12 * s)
        assert transformer_layer_flops(model).total == pytest.approx(expected)

    def test_input_total(self, model):
        expected = 3 * model.seq_length * model.hidden_size
        assert input_layer_flops(model).total == pytest.approx(expected)

    def test_output_total(self, model):
        expected = 6 * model.seq_length * model.hidden_size * model.vocab_size
        assert output_layer_flops(model).total == pytest.approx(expected)

    def test_backward_is_twice_forward(self, model):
        for flops in (
            transformer_layer_flops(model),
            output_layer_flops(model),
            input_layer_flops(model),
        ):
            assert flops.backward == pytest.approx(2.0 * flops.forward)

    def test_microbatch_size_scales_linearly(self, model):
        one = transformer_layer_flops(model, microbatch_size=1).total
        four = transformer_layer_flops(model, microbatch_size=4).total
        assert four == pytest.approx(4.0 * one)

    def test_output_vocab_override(self, model):
        half = output_layer_flops(model, vocab_size=model.vocab_size // 2)
        assert half.total == pytest.approx(output_layer_flops(model).total / 2)


class TestIterationFlops:
    def test_composition(self, model):
        per_mb = (
            32 * transformer_layer_flops(model).total
            + input_layer_flops(model).total
            + output_layer_flops(model).total
        )
        assert model_flops_per_iteration(model, 1, 128) == pytest.approx(128 * per_mb)


class TestFigure2Ratios:
    """Gemma2-9B's output layer ≈ 5 transformer layers at 256k (Fig. 2)."""

    def test_gemma2_9b_output_ratio_at_256k(self):
        from repro.harness.settings import GEMMA2_9B

        _, out_ratio = vocab_to_transformer_compute_ratio(GEMMA2_9B)
        assert 4.0 < out_ratio < 6.0

    def test_ratio_grows_linearly_with_vocab(self, model):
        _, r1 = vocab_to_transformer_compute_ratio(model)
        _, r2 = vocab_to_transformer_compute_ratio(
            model.replace(vocab_size=2 * model.vocab_size)
        )
        assert r2 == pytest.approx(2.0 * r1)

    def test_input_compute_negligible(self, model):
        in_ratio, out_ratio = vocab_to_transformer_compute_ratio(model)
        assert in_ratio < 0.01
        assert out_ratio > 1.0

    def test_paper_7b_example(self):
        """Figure 3 caption: 7B model, 128k vocab → output ≈ 2.4×."""
        model = ModelConfig(
            num_layers=32,
            hidden_size=4096,
            num_attention_heads=32,
            seq_length=2048,
            vocab_size=128 * 1024,
        )
        _, out_ratio = vocab_to_transformer_compute_ratio(model)
        assert out_ratio == pytest.approx(2.4, abs=0.15)
