"""Tests for the parameter/activation memory model."""

import pytest

from repro.config import ModelConfig
from repro.costmodel import (
    MemoryModel,
    activation_bytes_per_microbatch,
    input_layer_param_bytes,
    output_layer_param_bytes,
    transformer_layer_param_bytes,
    vocab_to_transformer_memory_ratio,
)


@pytest.fixture
def model() -> ModelConfig:
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=131072,
    )


class TestParamBytes:
    def test_transformer_24h2(self, model):
        assert transformer_layer_param_bytes(model) == 24 * 3072 * 3072

    def test_vocab_layers_2hv(self, model):
        assert input_layer_param_bytes(model) == 2 * 3072 * 131072
        assert output_layer_param_bytes(model) == input_layer_param_bytes(model)

    def test_vocab_override(self, model):
        assert output_layer_param_bytes(model, vocab_size=1024) == 2 * 3072 * 1024

    def test_memory_ratio_paper_7b(self):
        """Figure 3 caption: output = 2.6× transformer parameter memory."""
        model = ModelConfig(
            num_layers=32,
            hidden_size=4096,
            num_attention_heads=32,
            seq_length=2048,
            vocab_size=128 * 1024,
        )
        _, out_ratio = vocab_to_transformer_memory_ratio(model)
        assert out_ratio == pytest.approx(2.67, abs=0.1)


class TestActivationBytes:
    def test_flash_attention_formula(self, model):
        expected = 2048 * 3072 * 34.0
        assert activation_bytes_per_microbatch(model) == pytest.approx(expected)

    def test_without_flash_includes_quadratic_term(self, model):
        with_flash = activation_bytes_per_microbatch(model, flash_attention=True)
        without = activation_bytes_per_microbatch(model, flash_attention=False)
        assert without > with_flash

    def test_scales_with_layers_and_microbatch(self, model):
        base = activation_bytes_per_microbatch(model, 1, 1)
        assert activation_bytes_per_microbatch(model, 2, 3) == pytest.approx(6 * base)


class TestMemoryModel:
    def test_training_state_factor(self, model):
        mm = MemoryModel(train_state_factor=9.0)
        assert mm.transformer_stage_param_bytes(model, 4) == pytest.approx(
            4 * 24 * 3072 * 3072 * 9.0
        )

    def test_output_shard_activation(self, model):
        mm = MemoryModel()
        assert mm.output_shard_activation_bytes(model, 1, 4096) == pytest.approx(
            2048 * 4096 * 4.0
        )

    def test_vocab_state_bytes(self, model):
        mm = MemoryModel(vocab_state_factor=7.0)
        assert mm.input_layer_state_bytes(model, 1024) == pytest.approx(
            2 * 3072 * 1024 * 7.0
        )
