"""Shared fixtures for the test suite.

NumPy is an optional dependency of the package (see pyproject.toml),
and CI runs a ``no-numpy`` matrix leg over the planner/service subset:
the import here must stay optional so collection succeeds without it —
numerical tests request the ``rng`` fixture and skip cleanly instead.
"""

from __future__ import annotations

import pytest

try:
    import numpy as np
except ImportError:  # the no-numpy CI leg
    np = None

from repro.config import ModelConfig, ParallelConfig


@pytest.fixture
def rng():
    if np is None:
        pytest.skip("numpy is not installed")
    return np.random.default_rng(12345)


@pytest.fixture
def small_model() -> ModelConfig:
    """A model small enough for fast schedule simulation."""
    return ModelConfig(
        num_layers=8,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )


@pytest.fixture
def small_parallel() -> ParallelConfig:
    return ParallelConfig(pipeline_size=4, num_microbatches=16)


@pytest.fixture
def paper_4b_model() -> ModelConfig:
    """The paper's ≈4B setting (Table 1, 8 GPUs)."""
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=256 * 1024,
    )
