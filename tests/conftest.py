"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, ParallelConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_model() -> ModelConfig:
    """A model small enough for fast schedule simulation."""
    return ModelConfig(
        num_layers=8,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )


@pytest.fixture
def small_parallel() -> ParallelConfig:
    return ParallelConfig(pipeline_size=4, num_microbatches=16)


@pytest.fixture
def paper_4b_model() -> ModelConfig:
    """The paper's ≈4B setting (Table 1, 8 GPUs)."""
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=256 * 1024,
    )
