"""End-to-end :func:`repro.api.optimize`: golden result, determinism,
engine parity, cache addressing and input validation."""

import pytest

from repro.api import (
    OptimizedPlan,
    PlanCache,
    PlannerConstraints,
    optimize,
    optimize_cache_key,
)
from repro.harness.settings import model_for_1f1b, parallel_for
from repro.optimize import get_strategy


@pytest.fixture
def model():
    """The paper's 8-GPU Table 1 shape at a 64k vocabulary."""
    return model_for_1f1b(8, 2048, 64 * 1024)


@pytest.fixture
def parallel():
    return parallel_for(8, 16)


def run(model, parallel, tmp_path, name="a", **kwargs):
    return optimize(
        model, parallel, cache=PlanCache(str(tmp_path / name)), **kwargs
    )


class TestGolden:
    def test_beats_every_named_family_on_slow_node(
        self, model, parallel, tmp_path
    ):
        """The PR's headline claim, oracle-verified: the search finds a
        schedule strictly faster than all named families."""
        result = run(model, parallel, tmp_path, scenario="slow-node", seed=0)
        assert isinstance(result, OptimizedPlan)
        assert result.improved
        assert result.beats_all_named()
        assert result.speedup > 1.0
        assert result.baseline_time == pytest.approx(
            result.optimized_time * result.speedup
        )
        # The win comes from sequence slicing the named generators
        # cannot express.
        assert "token-split" in {step.rule for step in result.trace}
        assert result.token_split > 1
        assert result.num_microbatches > parallel.num_microbatches
        # Memory stays within the planner's budget.
        assert result.peak_memory_gib <= result.memory_budget_gib
        assert 0 < result.evaluations <= result.budget

    def test_as_dict_round_trips_the_report(self, model, parallel, tmp_path):
        result = run(model, parallel, tmp_path, scenario="slow-node", seed=0)
        body = result.as_dict()
        assert body["speedup"] == result.speedup
        assert body["beats_all_named"] is True
        assert body["cache_key"] == result.cache_key
        assert [s["rule"] for s in body["trace"]] == [
            s.rule for s in result.trace
        ]
        methods = {entry["method"] for entry in body["baseline_times"]}
        assert result.baseline_method in methods
        rendered = result.render()
        assert "speedup" in rendered
        assert result.baseline_method in rendered


class TestDeterminism:
    def test_same_seed_same_result(self, model, parallel, tmp_path):
        first = run(model, parallel, tmp_path, name="a", seed=0, budget=48)
        second = run(model, parallel, tmp_path, name="b", seed=0, budget=48)
        assert first.as_dict() == second.as_dict()

    def test_pure_python_engine_matches(
        self, model, parallel, tmp_path, monkeypatch
    ):
        """The oracle replay is bit-identical across the NumPy and
        pure-Python execution kernels, so the whole search is too."""
        import repro.sim.compiled as compiled

        if compiled._np is None:
            pytest.skip("already running without numpy")
        with_numpy = run(
            model, parallel, tmp_path, name="np", seed=0, budget=48
        )
        monkeypatch.setattr(compiled, "_np", None)
        without = run(
            model, parallel, tmp_path, name="py", seed=0, budget=48
        )
        assert with_numpy.as_dict() == without.as_dict()

    def test_result_is_cached_under_its_key(self, model, parallel, tmp_path):
        cache = PlanCache(str(tmp_path / "shared"))
        first = optimize(model, parallel, cache=cache, seed=0, budget=48)
        again = optimize(model, parallel, cache=cache, seed=0, budget=48)
        assert again.as_dict() == first.as_dict()
        assert cache.get_aux("optimize", first.cache_key) is not None


class TestCacheKey:
    def test_key_matches_result(self, model, parallel, tmp_path):
        result = run(model, parallel, tmp_path, seed=0, budget=48)
        assert result.cache_key == optimize_cache_key(
            model, parallel, seed=0, budget=48
        )

    def test_key_discriminates_inputs(self, model, parallel):
        base = optimize_cache_key(model, parallel)
        assert optimize_cache_key(model, parallel) == base
        assert optimize_cache_key(model, parallel, seed=1) != base
        assert optimize_cache_key(model, parallel, strategy="anneal") != base
        assert optimize_cache_key(model, parallel, budget=7) != base
        assert optimize_cache_key(
            model, parallel, scenario="slow-node"
        ) != base
        assert optimize_cache_key(
            model, parallel, PlannerConstraints(memory_budget_gib=40.0)
        ) != base


class TestValidation:
    def test_unknown_strategy_rejected(self, model, parallel):
        with pytest.raises(ValueError, match="unknown strategy"):
            optimize(model, parallel, strategy="magic")
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("magic")

    def test_non_positive_budget_rejected(self, model, parallel):
        with pytest.raises(ValueError, match="budget"):
            optimize(model, parallel, budget=0)

    def test_unknown_scenario_rejected(self, model, parallel):
        with pytest.raises(KeyError):
            optimize(model, parallel, scenario="not-a-scenario")


class TestAnnealing:
    def test_anneal_returns_a_verified_plan(self, model, parallel, tmp_path):
        result = run(
            model, parallel, tmp_path, strategy="anneal", seed=0, budget=32
        )
        assert result.strategy == "anneal"
        assert result.optimized_time <= result.baseline_time
        assert result.evaluations <= result.budget + 1
