"""Property tests for the rewrite catalog over :class:`ScheduleIR`.

Every rewrite's contract: each enumerated site applies to a copy (the
input program is never mutated), the emitted schedule still validates
and executes under the compiled-graph oracle, reorder rewrites conserve
the per-device pass multiset, and the applied step lands in the trace.
"""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.memory import GiB
from repro.optimize import (
    ActivationHandoff,
    HoistCollective,
    ScheduleIR,
    ScoreContext,
    SwapAdjacent,
    TokenSplit,
    default_rewrites,
)
from repro.planner.planner import PlannerConstraints, plan
from repro.planner.cache import PlanCache
from repro.sim import SimulationSetup


@pytest.fixture
def model() -> ModelConfig:
    return ModelConfig(
        num_layers=8,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )


@pytest.fixture
def parallel() -> ParallelConfig:
    return ParallelConfig(pipeline_size=4, num_microbatches=8)


@pytest.fixture
def start(model, parallel, tmp_path):
    """The best named family, lowered and oracle-scored."""
    constraints = PlannerConstraints(simulate_top_k=None)
    plans = plan(
        model, parallel, constraints, cache=PlanCache(str(tmp_path))
    )
    schedule = plans.build_best_schedule()
    ctx = ScoreContext(
        SimulationSetup(model, parallel),
        budget_bytes=plans.memory_budget_gib * GiB,
    )
    candidate = ctx.score(ScheduleIR.from_schedule(schedule), ())
    assert candidate is not None
    return ctx, candidate


def apply_some_sites(rewrite, candidate, limit=6):
    sites = rewrite.sites(candidate.ir, candidate.rewrite_ctx)
    return sites, [rewrite.apply(candidate.ir, s) for s in sites[:limit]]


class TestSwapAdjacent:
    def test_sites_apply_and_stay_legal(self, start):
        ctx, candidate = start
        sites, applied = apply_some_sites(SwapAdjacent(), candidate)
        assert sites, "a pipeline schedule must expose some legal swap"
        for new_ir, step in applied:
            assert step.rule == "swap-adjacent"
            # Reorders conserve the per-device pass multiset.
            assert new_ir.pass_multiset() == candidate.ir.pass_multiset()
            assert new_ir.split == candidate.ir.split
            new_ir.emit().validate()
            scored = ctx.score(new_ir, (step,))
            assert scored is not None, "dependence-free swap must execute"
            assert scored.trace == (step,)

    def test_input_program_is_not_mutated(self, start):
        _, candidate = start
        before = [list(order) for order in candidate.ir.device_orders]
        sites = SwapAdjacent().sites(candidate.ir, candidate.rewrite_ctx)
        SwapAdjacent().apply(candidate.ir, sites[0])
        assert candidate.ir.device_orders == before


class TestHoistCollective:
    def test_sites_apply_and_stay_legal(self, model, parallel):
        # A vocabulary-parallel schedule, so S/T passes exist to hoist.
        from repro.harness.experiments import build_schedule

        setup = SimulationSetup(model, parallel)
        schedule = build_schedule("vocab-1", setup)
        ctx = ScoreContext(setup)
        candidate = ctx.score(ScheduleIR.from_schedule(schedule), ())
        assert candidate is not None
        sites, applied = apply_some_sites(HoistCollective(), candidate)
        assert sites, "vocab-1 must expose hoistable S/T passes"
        for new_ir, step in applied:
            assert step.rule == "hoist-collective"
            assert new_ir.pass_multiset() == candidate.ir.pass_multiset()
            new_ir.emit().validate()
            assert ctx.score(new_ir, (step,)) is not None


class TestTokenSplit:
    def test_split_doubles_microbatches_and_stays_legal(self, start):
        ctx, candidate = start
        rewrite = TokenSplit()
        sites = rewrite.sites(candidate.ir, candidate.rewrite_ctx)
        assert sites == [()]
        new_ir, step = rewrite.apply(candidate.ir, sites[0])
        assert step.rule == "token-split"
        assert new_ir.num_microbatches == 2 * candidate.ir.num_microbatches
        assert new_ir.split == 2 * candidate.ir.split
        for old, new in zip(candidate.ir.device_orders, new_ir.device_orders):
            assert len(new) == 2 * len(old)
        new_ir.emit().validate()
        scored = ctx.score(new_ir, (step,))
        assert scored is not None
        # Split halves per-pass compute but pays per-pass overhead and
        # full collectives twice: the time must stay in a sane band,
        # never double.
        assert scored.time < 2 * candidate.time

    def test_split_round_trips_through_emit(self, start):
        _, candidate = start
        new_ir, _ = TokenSplit().apply(candidate.ir, ())
        again = ScheduleIR.from_schedule(new_ir.emit())
        assert again.split == new_ir.split
        assert again.num_microbatches == new_ir.num_microbatches

    def test_respects_max_split(self, start):
        _, candidate = start
        ir = candidate.ir
        for _ in range(2):  # split -> 2 -> 4 (MAX_SPLIT)
            ir, _ = TokenSplit().apply(ir, ())
        assert TokenSplit().sites(ir, candidate.rewrite_ctx) == []


class TestActivationHandoff:
    def test_no_sites_without_memory_pressure(self, start):
        _, candidate = start
        # The default budget leaves headroom on the small model, so the
        # BPipe predicate must not fire.
        assert (
            ActivationHandoff().sites(candidate.ir, candidate.rewrite_ctx)
            == []
        )

    def test_apply_records_handoff_without_touching_orders(self, start):
        _, candidate = start
        new_ir, step = ActivationHandoff().apply(candidate.ir, (0, 1, 1))
        assert step.rule == "activation-handoff"
        assert new_ir.handoffs == candidate.ir.handoffs + ((0, 1, 1),)
        assert new_ir.device_orders == candidate.ir.device_orders

    def test_scoring_prices_the_handoff(self, start):
        ctx, candidate = start
        # The oracle re-checks the BPipe bound on every score: the
        # handoff shifts one activation's bytes from src to dst, and
        # the candidate stays executable.
        new_ir, step = ActivationHandoff().apply(candidate.ir, (0, 1, 1))
        scored = ctx.score(new_ir, (step,))
        assert scored is not None
        assert scored.peak_bytes > 0

    def test_binding_budget_marks_infeasible(self, model, parallel, start):
        _, candidate = start
        tight = ScoreContext(
            SimulationSetup(model, parallel), budget_bytes=1.0
        )
        scored = tight.score(candidate.ir.copy(), ())
        assert scored is not None
        assert not scored.feasible


class TestCatalog:
    def test_default_rewrites_order_is_stable(self):
        names = [r.name for r in default_rewrites()]
        assert names == [
            "swap-adjacent",
            "hoist-collective",
            "activation-handoff",
            "token-split",
        ]
