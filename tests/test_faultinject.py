"""Deterministic fault injection: spec parsing and stream behaviour.

The chaos suite (``tools/loadtest_service.py --chaos``) can only
assert exact outcomes because the injector is a pure function of its
spec — these tests pin that contract down.
"""

import pytest

from repro import faultinject
from repro.faultinject import (
    ENV_VAR,
    KNOWN_SITES,
    Fault,
    FaultInjector,
    corrupt_bytes,
    parse_spec,
)


@pytest.fixture(autouse=True)
def disarm():
    """Never leak an armed process-wide injector into other tests."""
    faultinject.reset()
    yield
    faultinject.reset()


def fire_pattern(injector: FaultInjector, site: str, n: int) -> list[bool]:
    return [injector.should_fire(site) for _ in range(n)]


class TestParseSpec:
    def test_bare_site_fires_every_event(self):
        injector = parse_spec("slow-worker")
        assert fire_pattern(injector, "slow-worker", 5) == [True] * 5

    def test_full_clause(self):
        injector = parse_spec(
            "slow-worker:rate=0.5,seed=7,after=2,limit=3,delay_ms=150"
        )
        fault = injector.fault("slow-worker")
        assert fault == Fault(
            "slow-worker", rate=0.5, seed=7, after=2, limit=3, delay_ms=150.0
        )

    def test_multiple_clauses_and_whitespace(self):
        injector = parse_spec(
            " slow-worker : rate=1 ; torn-cache-write : seed=3 ; "
        )
        assert injector.fault("slow-worker") is not None
        assert injector.fault("torn-cache-write").seed == 3
        assert injector.fault("corrupt-cache-entry") is None

    def test_empty_spec_is_disarmed(self):
        injector = parse_spec("")
        assert not injector
        assert not injector.should_fire("slow-worker")

    @pytest.mark.parametrize(
        "spec",
        [
            "definitely-not-a-site",  # unknown site
            "slow-worker:rate=2",  # rate out of range
            "slow-worker:rate=abc",  # malformed value
            "slow-worker:bogus=1",  # unknown option
            "slow-worker:rate",  # not key=value
            "slow-worker:after=-1",  # negative skip
            "slow-worker:limit=0",  # limit below 1
            "slow-worker;slow-worker",  # duplicate site
        ],
    )
    def test_bad_specs_are_rejected_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_spec(spec)

    def test_unknown_site_error_names_token_and_valid_sites(self):
        with pytest.raises(ValueError) as excinfo:
            parse_spec("slow-worker:rate=1;kill-shrad:rate=1")
        message = str(excinfo.value)
        assert "\n" not in message  # one line, greppable in startup logs
        assert "'kill-shrad'" in message
        for site in KNOWN_SITES:
            assert site in message

    def test_swapped_separator_gets_a_hint(self):
        # `site=rate...` instead of `site:rate...` — the whole clause
        # parses as one unknown "site"; the error should say so.
        with pytest.raises(ValueError, match="did you swap '='"):
            parse_spec("slow-worker=rate:1")

    def test_unknown_option_error_names_key_and_site(self):
        with pytest.raises(ValueError) as excinfo:
            parse_spec("kill-shard:bogus=1")
        message = str(excinfo.value)
        assert "'bogus'" in message and "'kill-shard'" in message
        assert "rate/seed/after/limit/delay_ms" in message

    def test_malformed_value_error_names_value_key_and_site(self):
        with pytest.raises(ValueError) as excinfo:
            parse_spec("slow-shard:delay_ms=fast")
        message = str(excinfo.value)
        assert "'fast'" in message
        assert "'delay_ms'" in message
        assert "'slow-shard'" in message

    def test_shard_sites_parse(self):
        injector = parse_spec(
            "kill-shard:rate=1,after=3,limit=1;"
            "hang-shard:rate=0.5,seed=4;slow-shard:delay_ms=900"
        )
        assert injector.fault("kill-shard").limit == 1
        assert injector.fault("hang-shard").seed == 4
        assert injector.fault("slow-shard").delay_ms == 900.0


class TestDeterminism:
    def test_same_spec_same_schedule(self):
        spec = "corrupt-cache-entry:rate=0.4,seed=11"
        first = fire_pattern(parse_spec(spec), "corrupt-cache-entry", 200)
        second = fire_pattern(parse_spec(spec), "corrupt-cache-entry", 200)
        assert first == second
        assert any(first) and not all(first)  # a real 0<rate<1 stream

    def test_seed_changes_schedule(self):
        a = fire_pattern(
            parse_spec("slow-worker:rate=0.5,seed=1"), "slow-worker", 200
        )
        b = fire_pattern(
            parse_spec("slow-worker:rate=0.5,seed=2"), "slow-worker", 200
        )
        assert a != b

    def test_sites_sharing_a_seed_draw_independent_streams(self):
        injector = parse_spec(
            "torn-cache-write:rate=0.5,seed=9;"
            "corrupt-cache-entry:rate=0.5,seed=9"
        )
        torn = fire_pattern(injector, "torn-cache-write", 200)
        corrupt = fire_pattern(injector, "corrupt-cache-entry", 200)
        assert torn != corrupt

    def test_rate_is_roughly_honoured(self):
        fired = fire_pattern(
            parse_spec("slow-worker:rate=0.25,seed=3"), "slow-worker", 2000
        )
        assert 0.15 < sum(fired) / len(fired) < 0.35


class TestAfterAndLimit:
    def test_after_skips_leading_events(self):
        injector = parse_spec("kill-pool-worker:rate=1,after=3")
        assert fire_pattern(injector, "kill-pool-worker", 6) == [
            False, False, False, True, True, True,
        ]

    def test_limit_caps_total_fires(self):
        injector = parse_spec("kill-pool-worker:rate=1,limit=2")
        fired = fire_pattern(injector, "kill-pool-worker", 10)
        assert fired == [True, True] + [False] * 8

    def test_snapshot_counts_events_and_fires(self):
        injector = parse_spec("kill-pool-worker:rate=1,after=1,limit=1")
        fire_pattern(injector, "kill-pool-worker", 5)
        snap = injector.snapshot()
        assert snap["kill-pool-worker"] == {
            "rate": 1.0, "events": 5, "fires": 1,
        }

    def test_disarmed_site_keeps_no_state(self):
        injector = parse_spec("slow-worker")
        assert not injector.should_fire("torn-cache-write")
        assert "torn-cache-write" not in injector.snapshot()


class TestProcessWideInjector:
    def test_install_and_reset(self):
        faultinject.install("slow-worker:limit=1")
        assert faultinject.should_fire("slow-worker")
        assert not faultinject.should_fire("slow-worker")
        faultinject.reset()
        assert not faultinject.should_fire("slow-worker")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "torn-cache-write:rate=1,limit=1")
        faultinject.reset()  # forget any cached resolution
        assert faultinject.should_fire("torn-cache-write")
        assert not faultinject.should_fire("torn-cache-write")

    def test_install_accepts_injector_instance(self):
        injector = FaultInjector((Fault("slow-worker"),))
        assert faultinject.install(injector) is injector
        assert faultinject.get_injector() is injector


class TestCorruptBytes:
    def test_flips_exactly_one_byte_deterministically(self):
        payload = bytes(range(64))
        mutated = corrupt_bytes(payload, seed=5)
        assert mutated != payload
        assert len(mutated) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, mutated)) if a != b]
        assert len(diffs) == 1
        assert corrupt_bytes(payload, seed=5) == mutated

    def test_empty_payload_is_untouched(self):
        assert corrupt_bytes(b"") == b""


def test_known_sites_is_the_documented_set():
    assert KNOWN_SITES == (
        "kill-pool-worker",
        "slow-worker",
        "corrupt-cache-entry",
        "torn-cache-write",
        "drop-connection-mid-response",
        "kill-shard",
        "hang-shard",
        "slow-shard",
    )
