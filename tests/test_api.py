"""The unified public surface (:mod:`repro.api`) and its shims.

Three contracts: every ``repro.api.__all__`` name resolves; the
``repro`` top level lazily re-exports the facade subset; and the
historical ``repro.planner`` import paths keep working behind a
one-time :class:`DeprecationWarning` per name — including the two
names shadowed by same-named submodules (``sweep``, ``whatif``).
"""

import importlib
import warnings

import pytest

import repro
import repro.api


class TestFacade:
    def test_api_version(self):
        assert repro.api.API_VERSION == 1

    def test_every_declared_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_all_is_sorted_and_deduplicated(self):
        assert list(repro.api.__all__) == sorted(set(repro.api.__all__))

    def test_core_entry_points_are_present(self):
        from repro.api import (  # noqa: F401
            OptimizedPlan,
            PlannerConstraints,
            RankedPlans,
            WhatifResult,
            calibrate,
            optimize,
            plan,
            sweep,
            whatif,
        )

        assert callable(plan) and callable(optimize)

    def test_facade_names_match_defining_modules(self):
        from repro.api import PlanCache, optimize, plan, sweep, whatif

        assert plan is importlib.import_module("repro.planner.planner").plan
        assert sweep is importlib.import_module("repro.planner.sweep").sweep
        assert whatif is importlib.import_module("repro.planner.whatif").whatif
        assert PlanCache is importlib.import_module("repro.planner.cache").PlanCache
        assert optimize is importlib.import_module("repro.optimize").optimize


class TestTopLevelReExports:
    def test_lazy_facade_subset(self):
        for name in ("plan", "sweep", "whatif", "calibrate", "API_VERSION"):
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_optimize_is_the_subpackage_at_top_level(self):
        # ``repro.optimize`` is a subpackage; the callable is only on
        # the facade, so the name can never silently flip meaning.
        import repro.optimize as subpackage

        assert repro.optimize is subpackage
        assert "optimize" not in repro.__all__


class TestPlannerDeprecationShim:
    def test_attribute_access_warns_once_and_resolves(self):
        planner_pkg = importlib.import_module("repro.planner")
        planner_pkg.__dict__.pop("PlannerConstraints", None)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            value = planner_pkg.PlannerConstraints
        assert value is repro.api.PlannerConstraints
        # The resolved value is cached: no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert planner_pkg.PlannerConstraints is value

    def test_shadowed_names_stay_callable(self):
        # Importing the submodule rebinds the parent attribute to the
        # module; the shim must still hand old callers the function.
        importlib.import_module("repro.planner.sweep")
        importlib.import_module("repro.planner.whatif")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.planner import sweep, whatif
        assert callable(sweep)
        assert callable(whatif)
        assert sweep is repro.api.sweep
        assert whatif is repro.api.whatif

    def test_unknown_name_still_raises(self):
        planner_pkg = importlib.import_module("repro.planner")
        with pytest.raises(AttributeError):
            planner_pkg.definitely_not_a_name

    def test_dir_lists_historical_names(self):
        planner_pkg = importlib.import_module("repro.planner")
        listed = dir(planner_pkg)
        for name in ("plan", "sweep", "whatif", "PlanCache", "grid"):
            assert name in listed
