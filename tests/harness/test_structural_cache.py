"""Process-wide structural caches: hit/cold identity and isolation.

The schedule-generation and compiled-graph caches are pure performance
features — a cache hit must be observationally identical to a cold
build: equal schedules (but never shared mutable state) and
bit-identical simulation metrics.
"""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import (
    KNOWN_METHODS,
    clear_structural_caches,
    generate_method_schedule,
    run_method,
    run_method_bindings,
    structural_cache_stats,
)
from repro.sim import SimulationSetup

MODEL = ModelConfig(
    num_layers=16,
    hidden_size=512,
    num_attention_heads=8,
    seq_length=512,
    vocab_size=32 * 1024,
)
PARALLEL = ParallelConfig(pipeline_size=4, num_microbatches=6, microbatch_size=1)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_structural_caches()
    yield
    clear_structural_caches()


@pytest.fixture
def setup() -> SimulationSetup:
    return SimulationSetup(MODEL, PARALLEL)


class TestScheduleGenerationCache:
    @pytest.mark.parametrize("method", KNOWN_METHODS)
    def test_hit_equals_cold_build(self, method, setup):
        cold = generate_method_schedule(method, setup)
        assert structural_cache_stats()["schedule_misses"] == 1
        hit = generate_method_schedule(method, setup)
        assert structural_cache_stats()["schedule_hits"] == 1
        assert hit == cold
        assert hit is not cold

    def test_hits_never_share_mutable_state(self, setup):
        first = generate_method_schedule("vocab-1", setup)
        first.device_orders[0].reverse()
        first.metadata["poisoned"] = True
        second = generate_method_schedule("vocab-1", setup)
        assert second.device_orders[0] == list(reversed(first.device_orders[0]))
        assert "poisoned" not in second.metadata

    def test_different_bindings_miss(self, setup):
        generate_method_schedule("baseline", setup)
        slower = SimulationSetup(MODEL, PARALLEL, pass_overhead=1e-2)
        generate_method_schedule("baseline", slower)
        stats = structural_cache_stats()
        # A changed overhead changes the generator's timing scalars, so
        # the second build is a miss (orders could legitimately differ).
        assert stats["schedule_misses"] == 2

    def test_infeasible_config_still_raises(self, setup):
        bad = SimulationSetup(
            MODEL.replace(num_layers=15), PARALLEL
        )
        with pytest.raises(ValueError):
            generate_method_schedule("baseline", bad)
        with pytest.raises(ValueError):
            generate_method_schedule("vhalf-baseline", bad)


class TestCompiledGraphCache:
    @pytest.mark.parametrize("method", KNOWN_METHODS)
    def test_graph_cache_hit_metrics_identical(self, method, setup):
        cold = run_method(method, MODEL, PARALLEL, setup=setup)
        stats = structural_cache_stats()
        assert stats["graph_misses"] >= 1
        clear_after_first = stats["graph_hits"]
        warm = run_method(method, MODEL, PARALLEL, setup=setup)
        assert structural_cache_stats()["graph_hits"] > clear_after_first
        assert warm.iteration_time == cold.iteration_time
        assert warm.peak_memory_gb == cold.peak_memory_gb
        assert warm.per_device_peak_gb == cold.per_device_peak_gb
        assert warm.mean_bubble == cold.mean_bubble

    def test_rebind_across_bindings_matches_cold_compile(self, setup):
        """A second binding re-uses the lowering; results must match a
        from-scratch build of that binding."""
        run_method("vocab-2", MODEL, PARALLEL, setup=setup)
        slower = SimulationSetup(MODEL, PARALLEL, pass_overhead=1e-3)
        warm = run_method("vocab-2", MODEL, PARALLEL, setup=slower)
        clear_structural_caches()
        cold = run_method("vocab-2", MODEL, PARALLEL, setup=slower)
        assert warm.iteration_time == cold.iteration_time
        assert warm.per_device_peak_gb == cold.per_device_peak_gb


class TestRunMethodBindings:
    def _setups(self):
        return [
            SimulationSetup(MODEL, PARALLEL),
            SimulationSetup(MODEL, PARALLEL, pass_overhead=1e-3),
            SimulationSetup(MODEL, PARALLEL, pass_overhead=5e-4),
        ]

    @pytest.mark.parametrize("refine", [False, True])
    @pytest.mark.parametrize("method", KNOWN_METHODS)
    def test_batched_equals_per_binding(self, method, refine):
        setups = self._setups()
        batched = run_method_bindings(
            method, MODEL, PARALLEL, setups, refine=refine
        )
        singles = [
            run_method(method, MODEL, PARALLEL, setup=s, refine=refine)
            for s in setups
        ]
        for a, b in zip(batched, singles):
            assert a.iteration_time == b.iteration_time
            assert a.peak_memory_gb == b.peak_memory_gb
            assert a.per_device_peak_gb == b.per_device_peak_gb
            assert a.mean_bubble == b.mean_bubble
            assert a.oom == b.oom

    def test_mismatched_configs_rejected(self):
        other = SimulationSetup(
            MODEL.replace(vocab_size=64 * 1024), PARALLEL
        )
        with pytest.raises(ValueError, match="share"):
            run_method_bindings(
                "baseline", MODEL, PARALLEL,
                [SimulationSetup(MODEL, PARALLEL), other],
            )
