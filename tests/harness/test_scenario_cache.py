"""Regression: caches must never serve nominal prices for a scenario.

The structural caches (schedules, compiled graphs), the per-call
``sim_cache`` and the planner's budget-independent aux entries are all
keyed so that a result priced on the homogeneous cluster cannot leak
into a perturbed-scenario query — and vice versa.
"""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import (
    clear_structural_caches,
    compiled_graph_for,
    generate_method_schedule,
    run_method,
)
from repro.planner import PlanCache, PlannerConstraints, plan
from repro.scenarios import get_scenario
from repro.sim import RuntimeModel, SimulationSetup


@pytest.fixture
def config():
    model = ModelConfig(
        num_layers=16,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )
    return model, ParallelConfig(pipeline_size=4, num_microbatches=8)


class TestSimCacheKeying:
    def test_shared_sim_cache_keeps_scenarios_apart(self, config):
        """One sim_cache, nominal then scenario: no metric crosstalk."""
        model, parallel = config
        sim_cache: dict = {}
        nominal = run_method("baseline", model, parallel, sim_cache=sim_cache)
        perturbed = run_method(
            "baseline",
            model,
            parallel,
            sim_cache=sim_cache,
            scenario=get_scenario("slow-node"),
        )
        # A straggler must show up; equality would mean the cached
        # homogeneous metrics were served for the perturbed scenario.
        assert perturbed.iteration_time > nominal.iteration_time
        assert len(sim_cache) == 2
        # And the reverse direction: the scenario entry must not poison
        # a later nominal call.
        again = run_method("baseline", model, parallel, sim_cache=sim_cache)
        assert again.iteration_time == nominal.iteration_time

    def test_two_scenarios_do_not_share_entries(self, config):
        model, parallel = config
        sim_cache: dict = {}
        slow = run_method(
            "baseline", model, parallel, sim_cache=sim_cache,
            scenario=get_scenario("slow-node"),
        )
        mixed = run_method(
            "baseline", model, parallel, sim_cache=sim_cache,
            scenario=get_scenario("mixed-sku"),
        )
        assert slow.iteration_time != mixed.iteration_time
        assert len(sim_cache) == 2


class TestStructuralGraphCache:
    def test_cached_homogeneous_graph_is_rebound_for_scenario(self, config):
        """The graph cache may share the lowering, never the binding."""
        model, parallel = config
        clear_structural_caches()
        setup = SimulationSetup(model, parallel)
        schedule = generate_method_schedule("baseline", setup)
        nominal_graph = compiled_graph_for(
            schedule, RuntimeModel(setup, schedule)
        )
        scenario = get_scenario("slow-node")
        scenario_graph = compiled_graph_for(
            schedule, scenario.runtime_for(setup, schedule)
        )
        # Same lowering (shared structural arrays) ...
        assert scenario_graph.succ_off is nominal_graph.succ_off
        # ... but re-priced durations: the straggler devices are slower.
        assert scenario_graph.durations != nominal_graph.durations
        assert (
            scenario_graph.execute().iteration_time
            > nominal_graph.execute().iteration_time
        )


class TestPlannerAuxKeying:
    def test_warm_homogeneous_cache_never_serves_scenario(self, config):
        """The regression this file exists for: plan nominal first (warm
        every structural + aux cache), then plan the same config under a
        straggler scenario — the scenario numbers must be freshly
        simulated, not the cached homogeneous ones."""
        model, parallel = config
        constraints = PlannerConstraints(simulate_top_k=2)
        cache = PlanCache()
        nominal = plan(model, parallel, constraints, cache=cache)
        perturbed = plan(
            model, parallel, constraints, cache=cache, scenario="slow-node"
        )
        for method in ("baseline", "redis"):
            nom = nominal.candidate(method)
            per = perturbed.candidate(method)
            if nom.simulated and per.simulated:
                assert per.iteration_time > nom.iteration_time
        assert perturbed.cache_key != nominal.cache_key

    def test_homogeneous_scenario_matches_no_scenario(self, config):
        """The identity direction: the nominal scenario prices exactly
        like no scenario at all (separate cache entries, equal values)."""
        model, parallel = config
        constraints = PlannerConstraints(simulate_top_k=2)
        cache = PlanCache()
        bare = plan(model, parallel, constraints, cache=cache)
        homogeneous = plan(
            model, parallel, constraints, cache=cache, scenario="homogeneous"
        )
        assert [c.method for c in homogeneous.ranked] == [
            c.method for c in bare.ranked
        ]
        for ours, theirs in zip(homogeneous.ranked, bare.ranked):
            assert ours.iteration_time == theirs.iteration_time
            assert ours.peak_memory_gb == theirs.peak_memory_gb

    def test_robustness_requires_scenario(self, config):
        model, parallel = config
        with pytest.raises(ValueError, match="requires a scenario"):
            plan(model, parallel, robustness="p95", cache=PlanCache())

    def test_robust_ranking_orders_by_quantile(self, config):
        model, parallel = config
        plans = plan(
            model,
            parallel,
            PlannerConstraints(simulate_top_k=3),
            cache=PlanCache(),
            scenario="high-jitter",
            robustness="p95",
        )
        simulated = [c for c in plans.ranked if c.simulated]
        assert simulated, "expected simulated candidates"
        robust_times = [c.robust_time for c in simulated]
        assert all(value is not None for value in robust_times)
        assert robust_times == sorted(robust_times)
        for c in simulated:
            assert c.robust_stats is not None
            assert c.robust_time == c.robust_stats.p95_time
        assert "p95(s)" in plans.render()
