"""Tests for the experiment harness (settings, runners, tables, CLI)."""

import pytest

from repro.harness import (
    GEMMA2_9B,
    MethodMetrics,
    format_table,
    model_for_1f1b,
    model_for_vhalf,
    run_method,
)
from repro.harness.experiments import KNOWN_METHODS, build_schedule
from repro.harness.runner import (
    run_figure2,
    run_figure3,
    run_table3,
    run_table5_cell,
    run_table6_cell,
)
from repro.harness.settings import parallel_for
from repro.sim import SimulationSetup


class TestSettings:
    def test_table1_shapes(self):
        model = model_for_1f1b(8, 2048, 32 * 1024)
        assert (model.num_layers, model.hidden_size) == (32, 3072)
        assert 3.4e9 < model.num_parameters() < 4.6e9   # "≈4B"
        model = model_for_1f1b(32, 4096, 256 * 1024)
        assert (model.num_layers, model.hidden_size) == (64, 5120)
        assert 19e9 < model.num_parameters() < 24e9     # "≈21B"

    def test_table2_shapes(self):
        model = model_for_vhalf(16, 2048, 32 * 1024)
        assert (model.num_layers, model.hidden_size) == (32, 4096)
        assert 6e9 < model.num_parameters() < 8e9       # "≈7B"

    def test_unknown_gpu_counts_rejected(self):
        with pytest.raises(ValueError):
            model_for_1f1b(12, 2048, 32 * 1024)
        with pytest.raises(ValueError):
            model_for_vhalf(8, 2048, 32 * 1024)

    def test_parallel_defaults(self):
        par = parallel_for(16)
        assert par.num_microbatches == 128
        assert par.microbatch_size == 1


class TestBuildSchedule:
    @pytest.mark.parametrize("method", KNOWN_METHODS)
    def test_all_methods_build_and_validate(self, method):
        gpus = 16 if method.startswith("vhalf") else 8
        model = (model_for_vhalf if method.startswith("vhalf") else model_for_1f1b)(
            gpus, 2048, 32 * 1024
        )
        setup = SimulationSetup(model, parallel_for(gpus, num_microbatches=8))
        schedule = build_schedule(method, setup, refine=False)
        schedule.validate()

    def test_unknown_method(self):
        model = model_for_1f1b(8, 2048, 32 * 1024)
        setup = SimulationSetup(model, parallel_for(8, 8))
        with pytest.raises(ValueError, match="unknown method"):
            build_schedule("zbh1", setup)


class TestRunMethod:
    def test_metrics_fields(self):
        model = model_for_1f1b(8, 2048, 32 * 1024)
        metrics = run_method("vocab-2", model, parallel_for(8, num_microbatches=16))
        assert isinstance(metrics, MethodMetrics)
        assert 0.0 < metrics.mfu < 1.0
        assert metrics.mfu_percent == pytest.approx(100 * metrics.mfu)
        assert len(metrics.per_device_peak_gb) == 8
        assert metrics.peak_memory_gb == pytest.approx(
            max(metrics.per_device_peak_gb)
        )
        assert not metrics.oom


class TestRunners:
    def test_figure2_output_ratio_grows(self):
        result = run_figure2(GEMMA2_9B)
        assert result.compute_output[-1] > result.compute_output[0]
        assert result.memory_output[-1] > 4.0   # ≈ 5-7 transformer layers
        assert result.compute_input[-1] < 0.1

    def test_figure3_redistribution_balances_compute_not_memory(self):
        result = run_figure3()
        # Compute spread shrinks...
        uniform_spread = max(result.uniform_compute) - min(result.uniform_compute)
        redis_spread = max(result.redis_compute) - min(result.redis_compute)
        assert redis_spread < uniform_spread
        # ...but the parameter-memory imbalance stays (§2's point).
        redis_mem_spread = max(result.redis_memory_gb) - min(result.redis_memory_gb)
        assert redis_mem_spread > 2.0

    def test_table3_shapes(self):
        result = run_table3()
        assert len(result.rows) == 6
        for _, layer, ours, paper in result.rows:
            assert len(ours) == len(paper) == 3
            if layer.startswith("output"):
                # Declines with GPU count, stays within 25 rel-% of paper.
                assert ours[0] > ours[2]
                for mine, theirs in zip(ours, paper):
                    assert abs(100 * mine - theirs) < 0.25 * theirs + 5

    def test_table5_cell_quick(self):
        sweep = run_table5_cell(
            8, 2048, vocab_sizes=(32 * 1024, 256 * 1024),
            methods=("baseline", "vocab-2"), num_microbatches=16,
        )
        base = sweep.mfu_row("baseline")
        vocab = sweep.mfu_row("vocab-2")
        assert base[-1] < base[0]          # baseline collapses with V
        assert vocab[-1] > base[-1]        # vocabulary parallelism wins
        rendered = sweep.render()
        assert "baseline" in rendered and "paper" in rendered

    def test_table6_cell_quick(self):
        sweep = run_table6_cell(
            16, 2048, vocab_sizes=(256 * 1024,), num_microbatches=16,
        )
        base = sweep.metrics[("vhalf-baseline", 256 * 1024)]
        vocab = sweep.metrics[("vhalf-vocab-1", 256 * 1024)]
        assert vocab.mfu > base.mfu
        assert vocab.memory_spread_gb < 0.2 * base.memory_spread_gb


class TestTables:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        assert "2.50" in text and "OOM" in text

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestCLI:
    def test_fig2_command(self, capsys):
        from repro.harness.cli import main

        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_table3_command(self, capsys):
        from repro.harness.cli import main

        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_schedules_command(self, capsys):
        from repro.harness.cli import main

        assert main(["schedules", "--devices", "2", "--microbatches", "4",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "device  0" in out

    def test_requires_command(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main([])

    def test_run_plan_wrapper(self):
        from repro.harness.runner import run_plan

        plans = run_plan(devices=4, vocab_size=32 * 1024, num_microbatches=8,
                         simulate_top_k=1)
        assert plans.best.source == "sim"
        assert plans.parallel.pipeline_size == 4

    def test_plan_command(self, capsys):
        from repro.harness.cli import main

        assert main(["plan", "--devices", "4", "--vocab", "128k",
                     "--microbatches", "8", "--top-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "Schedule plan" in out and "vocab 128k" in out

    def test_plan_command_grid(self, capsys):
        from repro.harness.cli import main

        assert main(["plan", "--devices", "4", "--vocab", "32k", "64k",
                     "--microbatches", "8", "--top-k", "0",
                     "--executor", "serial"]) == 0
        out = capsys.readouterr().out
        assert "Planner sweep" in out

    def test_plan_command_cache_dir(self, capsys, tmp_path):
        from repro.harness.cli import main

        args = ["plan", "--devices", "4", "--vocab", "32k",
                "--microbatches", "4", "--top-k", "1",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert list(tmp_path.glob("*.plan.pkl"))

    def test_plan_vocab_parsing(self):
        from repro.harness.cli import _parse_top_k, _parse_vocab

        assert _parse_vocab("128k") == 128 * 1024
        assert _parse_vocab("131072") == 131072
        assert _parse_top_k("all") is None
        assert _parse_top_k("2") == 2
        with pytest.raises(Exception):
            _parse_vocab("huge")

    def test_help_epilog_lists_every_subcommand(self, capsys):
        from repro.harness.cli import SUBCOMMANDS, main

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out
