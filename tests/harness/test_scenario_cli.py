"""Golden-output tests for ``repro-experiments scenarios``."""

import json

import pytest

from repro.harness.cli import main
from repro.harness.experiments import KNOWN_METHODS
from repro.scenarios import BUILTIN_SCENARIOS

#: A configuration small enough for interactive test runs.
SMALL = [
    "--devices", "4", "--vocab", "32k", "--microbatches", "8",
    "--samples", "16",
]


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestList:
    def test_lists_every_builtin(self, capsys):
        out = run_cli(capsys, "scenarios", "list")
        for name in BUILTIN_SCENARIOS:
            assert name in out

    def test_json_mode(self, capsys):
        payload = json.loads(run_cli(capsys, "scenarios", "list", "--json"))
        assert {entry["name"] for entry in payload} >= set(BUILTIN_SCENARIOS)


class TestDescribe:
    def test_describe_shows_knobs_and_speeds(self, capsys):
        out = run_cli(
            capsys, "scenarios", "describe", "--scenario", "slow-node",
            "--devices", "12",
        )
        assert "slow-node" in out
        assert "0.75" in out
        assert "device speeds at p=12" in out

    def test_describe_requires_scenario(self):
        with pytest.raises(SystemExit, match="--scenario is required"):
            main(["scenarios", "describe"])

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenarios", "describe", "--scenario", "nope"])


class TestCompare:
    def test_golden_reproducible_and_complete(self, capsys):
        """Fixed seed ⇒ byte-identical output, all 8 families ranked."""
        argv = ["scenarios", "compare", "--scenario", "slow-node",
                "--seed", "7", *SMALL]
        first = run_cli(capsys, *argv)
        second = run_cli(capsys, *argv)
        assert first == second
        for method in KNOWN_METHODS:
            assert method in first
        assert "ranked by p95" in first

    def test_json_ranked_by_p95(self, capsys):
        payload = json.loads(
            run_cli(
                capsys, "scenarios", "compare", "--scenario", "high-jitter",
                "--json", *SMALL,
            )
        )
        assert payload["scenario"] == "high-jitter"
        assert payload["samples"] == 16
        methods = [entry["method"] for entry in payload["ranked"]]
        assert sorted(methods) == sorted(KNOWN_METHODS)
        p95s = [entry["p95_time"] for entry in payload["ranked"]]
        assert p95s == sorted(p95s)
        assert not payload["skipped"]

    def test_seed_changes_stats_not_structure(self, capsys):
        base = ["scenarios", "compare", "--scenario", "high-jitter",
                "--json", *SMALL]
        a = json.loads(run_cli(capsys, *base, "--seed", "1"))
        b = json.loads(run_cli(capsys, *base, "--seed", "2"))
        assert a != b
        assert {e["method"] for e in a["ranked"]} == {
            e["method"] for e in b["ranked"]
        }


class TestRun:
    def test_single_method_table(self, capsys):
        out = run_cli(
            capsys, "scenarios", "run", "--scenario", "mixed-sku",
            "--method", "vocab-2", *SMALL,
        )
        assert "vocab-2" in out
        assert "p95(s)" in out

    def test_unknown_method_is_an_error(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["scenarios", "run", "--scenario", "mixed-sku",
                  "--method", "vocab-9", *SMALL])
