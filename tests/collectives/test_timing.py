"""Tests for the α–β communication timing model."""

import pytest

from repro.collectives import CommunicationModel
from repro.config import ParallelConfig
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel


def _comm(p: int, per_node: int = 8) -> CommunicationModel:
    return CommunicationModel(
        A100_SXM_80G, ParallelConfig(pipeline_size=p, devices_per_node=per_node)
    )


class TestAllReduce:
    def test_single_rank_free(self):
        assert _comm(1).all_reduce_time(1 << 20) == 0.0

    def test_monotone_in_payload(self):
        comm = _comm(8)
        assert comm.all_reduce_time(2 << 20) > comm.all_reduce_time(1 << 20)

    def test_zero_payload_is_latency_only(self):
        comm = _comm(8)
        assert comm.all_reduce_time(0) == pytest.approx(
            2 * A100_SXM_80G.link_latency * 7
        )

    def test_multi_node_slower_than_single_node(self):
        payload = 64 << 20
        assert _comm(16).all_reduce_time(payload) > _comm(8).all_reduce_time(payload)

    def test_ring_volume_factor(self):
        # 2(p-1)/p of the payload per rank at ring bandwidth.
        comm = _comm(4)
        payload = 1e9
        expected = 2 * 3 * A100_SXM_80G.link_latency + (
            payload * 2 * 3 / 4 / A100_SXM_80G.intra_node_bandwidth
        )
        assert comm.all_reduce_time(payload) == pytest.approx(expected)

    def test_reduce_equals_all_reduce(self):
        # §6.1: Reduce implemented as NCCL AllReduce for volume balance.
        comm = _comm(8)
        assert comm.reduce_time(123456) == comm.all_reduce_time(123456)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            _comm(4).all_reduce_time(-1)


class TestBroadcast:
    def test_cheaper_than_all_reduce(self):
        comm = _comm(8)
        assert comm.broadcast_time(1 << 20) < comm.all_reduce_time(1 << 20)

    def test_single_rank_free(self):
        assert _comm(1).broadcast_time(1 << 20) == 0.0


class TestP2P:
    def test_same_device_free(self):
        assert _comm(8).p2p_time(1 << 20, 3, 3) == 0.0

    def test_intra_node_faster_than_inter_node(self):
        comm = _comm(16)
        fast = comm.p2p_time(1 << 20, 0, 1)
        slow = comm.p2p_time(1 << 20, 7, 8)   # crosses node boundary
        assert fast < slow

    def test_node_boundary_detection(self):
        comm = CommunicationModel(
            HardwareModel(), ParallelConfig(pipeline_size=8, devices_per_node=4)
        )
        intra = comm.p2p_time(1 << 20, 2, 3)
        inter = comm.p2p_time(1 << 20, 3, 4)
        assert intra < inter

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            _comm(4).p2p_time(-5, 0, 1)
