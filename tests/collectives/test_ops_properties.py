"""Hypothesis property tests for the numerical collectives."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.collectives import (
    all_gather,
    all_reduce_max,
    all_reduce_sum,
    broadcast,
    reduce_scatter_sum,
    reduce_sum,
)

shard_lists = st.integers(1, 6).flatmap(
    lambda world: st.lists(
        hnp.arrays(
            dtype=np.float64,
            shape=st.shared(
                hnp.array_shapes(min_dims=1, max_dims=2, max_side=5), key="shape"
            ),
            elements=st.floats(-1e6, 1e6),
        ),
        min_size=world,
        max_size=world,
    )
)


@settings(max_examples=60, deadline=None)
@given(shards=shard_lists)
def test_all_reduce_sum_is_sum(shards):
    out = all_reduce_sum(shards)
    expected = np.sum(np.stack(shards), axis=0)
    for o in out:
        np.testing.assert_allclose(o, expected, rtol=1e-12, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(shards=shard_lists)
def test_all_reduce_max_upper_bounds_every_shard(shards):
    out = all_reduce_max(shards)[0]
    for shard in shards:
        assert np.all(out >= shard)
    # And the max is attained somewhere.
    stacked = np.stack(shards)
    np.testing.assert_array_equal(out, stacked.max(axis=0))


@settings(max_examples=40, deadline=None)
@given(shards=shard_lists)
def test_reduce_then_broadcast_equals_all_reduce(shards):
    via_all = all_reduce_sum(shards)
    via_two = broadcast(reduce_sum(shards), len(shards))
    for a, b in zip(via_all, via_two):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    world=st.integers(1, 5),
    chunks=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_reduce_scatter_all_gather_roundtrip(world, chunks, seed):
    rng = np.random.default_rng(seed)
    length = world * chunks
    shards = [rng.normal(size=length) for _ in range(world)]
    scattered = reduce_scatter_sum(shards, axis=0)
    gathered = all_gather(scattered, axis=0)[0]
    np.testing.assert_allclose(gathered, np.sum(shards, axis=0), rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(shards=shard_lists)
def test_collectives_do_not_mutate_inputs(shards):
    copies = [s.copy() for s in shards]
    all_reduce_sum(shards)
    all_reduce_max(shards)
    reduce_sum(shards)
    for original, copy in zip(shards, copies):
        np.testing.assert_array_equal(original, copy)
