"""Unit tests for the simulated numerical collectives."""

import numpy as np
import pytest

from repro.collectives import (
    all_gather,
    all_reduce_max,
    all_reduce_sum,
    broadcast,
    reduce_scatter_sum,
    reduce_sum,
)


class TestAllReduce:
    def test_sum(self, rng):
        shards = [rng.normal(size=(3, 4)) for _ in range(5)]
        out = all_reduce_sum(shards)
        expected = sum(shards)
        assert len(out) == 5
        for o in out:
            np.testing.assert_allclose(o, expected, rtol=1e-14)

    def test_max(self, rng):
        shards = [rng.normal(size=(6,)) for _ in range(3)]
        out = all_reduce_max(shards)
        expected = np.maximum.reduce(shards)
        for o in out:
            np.testing.assert_array_equal(o, expected)

    def test_results_are_copies(self, rng):
        shards = [rng.normal(size=(2, 2)) for _ in range(2)]
        out = all_reduce_sum(shards)
        out[0][0, 0] = 42.0
        assert out[1][0, 0] != 42.0

    def test_inputs_not_mutated(self, rng):
        shards = [rng.normal(size=(2, 2)) for _ in range(3)]
        originals = [s.copy() for s in shards]
        all_reduce_sum(shards)
        all_reduce_max(shards)
        for s, o in zip(shards, originals):
            np.testing.assert_array_equal(s, o)

    def test_single_rank_identity(self, rng):
        shard = rng.normal(size=(3,))
        np.testing.assert_array_equal(all_reduce_sum([shard])[0], shard)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            all_reduce_sum([np.zeros(3), np.zeros(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_reduce_sum([])


class TestReduceBroadcast:
    def test_reduce_sum(self, rng):
        shards = [rng.normal(size=(3,)) for _ in range(4)]
        np.testing.assert_allclose(reduce_sum(shards), sum(shards), rtol=1e-14)

    def test_reduce_root_validation(self, rng):
        with pytest.raises(ValueError):
            reduce_sum([np.zeros(2)], root=1)

    def test_broadcast_copies(self, rng):
        src = rng.normal(size=(2, 3))
        out = broadcast(src, 4)
        assert len(out) == 4
        for o in out:
            np.testing.assert_array_equal(o, src)
        out[0][0, 0] = -1.0
        assert src[0, 0] != -1.0

    def test_broadcast_world_size_validation(self, rng):
        with pytest.raises(ValueError):
            broadcast(np.zeros(2), 0)


class TestGatherScatter:
    def test_all_gather_concatenates(self, rng):
        shards = [rng.normal(size=(2, 3)) for _ in range(3)]
        out = all_gather(shards, axis=1)
        assert out[0].shape == (2, 9)
        np.testing.assert_array_equal(out[0], np.concatenate(shards, axis=1))

    def test_reduce_scatter_roundtrip_with_all_gather(self, rng):
        shards = [rng.normal(size=(8,)) for _ in range(4)]
        scattered = reduce_scatter_sum(shards, axis=0)
        assert all(s.shape == (2,) for s in scattered)
        gathered = all_gather(scattered, axis=0)[0]
        np.testing.assert_allclose(gathered, sum(shards), rtol=1e-14)

    def test_reduce_scatter_uneven_rejected(self, rng):
        with pytest.raises(ValueError):
            reduce_scatter_sum([np.zeros(7), np.zeros(7)], axis=0)


class TestCollectiveProperties:
    """Algebraic identities the vocabulary layers rely on."""

    def test_allreduce_sum_equals_reduce_plus_broadcast(self, rng):
        shards = [rng.normal(size=(4,)) for _ in range(3)]
        via_allreduce = all_reduce_sum(shards)
        via_reduce = broadcast(reduce_sum(shards), 3)
        for a, b in zip(via_allreduce, via_reduce):
            np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_max_idempotent(self, rng):
        shards = [rng.normal(size=(4,)) for _ in range(3)]
        once = all_reduce_max(shards)
        twice = all_reduce_max(once)
        for a, b in zip(once, twice):
            np.testing.assert_array_equal(a, b)
