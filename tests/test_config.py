"""Tests for the configuration dataclasses."""

import pytest

from repro.config import ModelConfig, ParallelConfig, layers_per_stage


class TestModelConfig:
    def test_default_ffn_is_4h(self):
        model = ModelConfig(
            num_layers=2, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=100,
        )
        assert model.ffn_hidden_size == 256
        assert model.head_dim == 16

    def test_parameter_count_approximation(self):
        model = ModelConfig(
            num_layers=32, hidden_size=3072, num_attention_heads=24,
            seq_length=2048, vocab_size=32768,
        )
        # Table 1 calls this setting ≈4B.
        assert 3.4e9 < model.num_parameters() < 4.5e9

    def test_tied_embeddings_count_once(self):
        base = dict(
            num_layers=2, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=1000,
        )
        untied = ModelConfig(**base)
        tied = ModelConfig(**base, tie_embeddings=True)
        assert untied.num_parameters() - tied.num_parameters() == 1000 * 64

    def test_replace(self):
        model = ModelConfig(
            num_layers=2, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=100,
        )
        bigger = model.replace(vocab_size=200)
        assert bigger.vocab_size == 200
        assert model.vocab_size == 100

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_layers", 0),
            ("hidden_size", -1),
            ("num_attention_heads", 0),
            ("seq_length", 0),
            ("vocab_size", 1),
        ],
    )
    def test_validation(self, field, value):
        kwargs = dict(
            num_layers=2, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=100,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            ModelConfig(**kwargs)

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig(
                num_layers=2, hidden_size=65, num_attention_heads=4,
                seq_length=32, vocab_size=100,
            )


class TestParallelConfig:
    def test_node_arithmetic(self):
        par = ParallelConfig(pipeline_size=16, devices_per_node=8)
        assert par.num_nodes == 2
        assert par.is_multi_node

    def test_single_node(self):
        par = ParallelConfig(pipeline_size=8, devices_per_node=8)
        assert par.num_nodes == 1
        assert not par.is_multi_node

    def test_partial_node_rounds_up(self):
        assert ParallelConfig(pipeline_size=9, devices_per_node=8).num_nodes == 2

    @pytest.mark.parametrize("field", ["pipeline_size", "num_microbatches",
                                       "microbatch_size", "devices_per_node"])
    def test_validation(self, field):
        kwargs = dict(pipeline_size=4)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)


class TestLayersPerStage:
    def test_even_split(self):
        model = ModelConfig(
            num_layers=32, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=100,
        )
        assert layers_per_stage(model, ParallelConfig(pipeline_size=8)) == 4

    def test_uneven_split_rejected(self):
        model = ModelConfig(
            num_layers=30, hidden_size=64, num_attention_heads=4,
            seq_length=32, vocab_size=100,
        )
        with pytest.raises(ValueError):
            layers_per_stage(model, ParallelConfig(pipeline_size=8))
