"""Tests for the tiny LM, its vocabulary-parallel twin, and the trainer."""

import numpy as np
import pytest

from repro.models import (
    Adam,
    TinyLM,
    TinyLMConfig,
    VocabParallelLM,
    make_corpus,
    train,
)
from repro.models.tiny_lm import init_parameters
from repro.vocab import VocabPartition


@pytest.fixture
def config():
    return TinyLMConfig(vocab_size=40, hidden_size=12, num_blocks=2, seq_length=32)


class TestTinyLM:
    def test_loss_near_uniform_at_init(self, config):
        model = TinyLM(config, seed=0)
        corpus = make_corpus(config.vocab_size, config.seq_length, 1)
        loss, _ = model.loss_and_grads(*corpus[0])
        assert abs(loss - np.log(config.vocab_size)) < 1.5

    def test_gradients_match_finite_differences(self):
        config = TinyLMConfig(vocab_size=9, hidden_size=5, num_blocks=1, seq_length=7)
        model = TinyLM(config, seed=1)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 9, size=7)
        labels = rng.integers(0, 9, size=7)
        _, grads = model.loss_and_grads(tokens, labels)
        eps = 1e-6
        for name in ("output", "embedding", "positional", "block0.w1", "block0.b2"):
            param = model.params[name]
            flat_index = (0,) * param.ndim
            param[flat_index] += eps
            up, _ = model.loss_and_grads(tokens, labels)
            param[flat_index] -= 2 * eps
            down, _ = model.loss_and_grads(tokens, labels)
            param[flat_index] += eps
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - grads[name][flat_index]) < 1e-6, name

    def test_grads_cover_all_params(self, config):
        model = TinyLM(config)
        corpus = make_corpus(config.vocab_size, config.seq_length, 1)
        _, grads = model.loss_and_grads(*corpus[0])
        assert set(grads) == set(model.params)

    def test_wrong_sequence_length_rejected(self, config):
        model = TinyLM(config)
        with pytest.raises(ValueError):
            model.embed(np.zeros(5, dtype=int))


class TestVocabParallelLM:
    @pytest.mark.parametrize("algorithm", ["naive", "alg1", "alg2"])
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_single_step_matches_reference(self, config, algorithm, ranks):
        part = VocabPartition(config.vocab_size, ranks)
        padded_config = TinyLMConfig(
            config.vocab_size, config.hidden_size, config.num_blocks,
            config.seq_length, padded_vocab_size=part.padded_size,
        )
        params = init_parameters(padded_config, seed=2)
        ref = TinyLM(padded_config, params={k: v.copy() for k, v in params.items()})
        vp = VocabParallelLM(
            config, ranks, algorithm=algorithm,
            params={k: v.copy() for k, v in params.items()},
        )
        corpus = make_corpus(config.vocab_size, config.seq_length, 1)
        ref_loss, ref_grads = ref.loss_and_grads(*corpus[0])
        vp_loss, vp_grads = vp.loss_and_grads(*corpus[0])
        assert vp_loss == pytest.approx(ref_loss, rel=1e-12)
        for name in ref_grads:
            np.testing.assert_allclose(
                vp_grads[name], ref_grads[name], rtol=1e-10, atol=1e-12,
            )

    def test_convergence_curves_match(self, config):
        """Figure 17 / Appendix E: identical loss trajectories."""
        part = VocabPartition(config.vocab_size, 4)
        padded_config = TinyLMConfig(
            config.vocab_size, config.hidden_size, config.num_blocks,
            config.seq_length, padded_vocab_size=part.padded_size,
        )
        params = init_parameters(padded_config, seed=3)
        corpus = make_corpus(config.vocab_size, config.seq_length, 4)
        ref = train(
            TinyLM(padded_config, params={k: v.copy() for k, v in params.items()}),
            corpus, steps=40,
        )
        vp = train(
            VocabParallelLM(config, 4, params={k: v.copy() for k, v in params.items()}),
            corpus, steps=40,
        )
        np.testing.assert_allclose(ref.losses, vp.losses, rtol=1e-9, atol=1e-10)

    def test_loss_decreases(self, config):
        corpus = make_corpus(config.vocab_size, config.seq_length, 4, noise=0.1)
        result = train(VocabParallelLM(config, 2), corpus, steps=150)
        assert result.final_loss < 0.6 * result.losses[0]

    def test_bad_algorithm_rejected(self, config):
        with pytest.raises(ValueError):
            VocabParallelLM(config, 2, algorithm="alg3")

    def test_params_roundtrip_through_updates(self, config):
        vp = VocabParallelLM(config, 2)
        dense = vp.params
        vp.apply_update("embedding", dense["embedding"] * 2.0)
        np.testing.assert_allclose(vp.params["embedding"], dense["embedding"] * 2.0)


class TestTrainerPieces:
    def test_adam_moves_toward_minimum(self):
        class Quadratic:
            def __init__(self):
                self.params = {"x": np.array([5.0])}

        model = Quadratic()
        opt = Adam(lr=0.1)
        for _ in range(300):
            grads = {"x": 2.0 * model.params["x"]}
            opt.step(model, grads)
        assert abs(model.params["x"][0]) < 0.05

    def test_adam_validation(self):
        with pytest.raises(ValueError):
            Adam(lr=0.0)

    def test_make_corpus_shapes_and_ranges(self):
        corpus = make_corpus(17, 23, 5)
        assert len(corpus) == 5
        for tokens, labels in corpus:
            assert tokens.shape == labels.shape == (23,)
            assert tokens.min() >= 0 and tokens.max() < 17
            assert labels.min() >= 0 and labels.max() < 17

    def test_make_corpus_noise_validation(self):
        with pytest.raises(ValueError):
            make_corpus(10, 10, 1, noise=1.5)

    def test_corpus_learnable_structure(self):
        """Zero noise → labels are a function of tokens."""
        corpus = make_corpus(11, 50, 3, noise=0.0, seed=1)
        mapping = {}
        for tokens, labels in corpus:
            for t, l in zip(tokens, labels):
                assert mapping.setdefault(t, l) == l

    def test_train_validation(self, config):
        corpus = make_corpus(config.vocab_size, config.seq_length, 1)
        with pytest.raises(ValueError):
            train(TinyLM(config), corpus, steps=0)
