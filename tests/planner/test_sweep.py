"""Tests for grid construction and the parallel planning sweep."""

import pytest

from repro.harness.settings import TABLE1_SHAPES, TABLE2_SHAPES
from repro.planner import (
    PlannerConstraints,
    SweepPoint,
    best_method_table,
    default_chunk_size,
    grid,
    model_for_devices,
    plan_point,
    plan_points,
    sweep,
)

FAST = PlannerConstraints(simulate_top_k=1)


class TestGrid:
    def test_cartesian_product_order(self):
        points = grid(
            devices=(4, 8),
            vocab_sizes=(32 * 1024, 64 * 1024),
            microbatches=(8,),
        )
        assert len(points) == 4
        assert points[0] == SweepPoint(4, 32 * 1024, 2048, 8, None)
        assert [p.devices for p in points] == [4, 4, 8, 8]

    def test_budget_axis(self):
        points = grid(
            devices=(4,), vocab_sizes=(32 * 1024,), memory_budgets_gib=(24.0, 80.0)
        )
        assert [p.memory_budget_gib for p in points] == [24.0, 80.0]


class TestModelForDevices:
    def test_paper_shapes_preferred(self):
        assert model_for_devices(8, 2048, 32 * 1024).num_layers == TABLE1_SHAPES[8][0]
        assert model_for_devices(24, 2048, 32 * 1024).num_layers == TABLE2_SHAPES[24][0]

    def test_generic_shape_keeps_both_families_feasible(self):
        model = model_for_devices(6, 2048, 32 * 1024)
        assert model.num_layers % 6 == 0
        assert model.num_layers % 12 == 0  # V-Half needs 2p


class TestSweep:
    def test_serial_sweep_matches_individual_plans(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        outcomes = sweep(points, FAST, executor="serial")
        assert [o.point for o in outcomes] == points
        for outcome in outcomes:
            alone = plan_point(outcome.point, FAST)
            assert alone.best_method == outcome.best_method

    def test_thread_sweep_matches_serial(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        serial = sweep(points, FAST, executor="serial")
        threaded = sweep(points, FAST, executor="thread", max_workers=2)
        assert [o.best_method for o in serial] == [
            o.best_method for o in threaded
        ]

    def test_budget_override_applies(self):
        point = SweepPoint(4, 256 * 1024, num_microbatches=8,
                           memory_budget_gib=1.0)
        outcome = plan_point(point, FAST)
        assert not outcome.plans.ranked
        assert outcome.plans.memory_budget_gib == 1.0

    def test_invalid_executor(self):
        with pytest.raises(ValueError, match="executor"):
            sweep([SweepPoint(4, 32 * 1024)], executor="mpi")

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            sweep([SweepPoint(4, 32 * 1024)], executor="serial", chunk_size=0)

    def test_chunked_sweep_matches_serial(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,), memory_budgets_gib=(None, 80.0))
        serial = sweep(points, FAST, executor="serial")
        for chunk_size in (1, 3, 16):
            chunked = sweep(points, FAST, executor="thread",
                            max_workers=2, chunk_size=chunk_size)
            assert [o.point for o in chunked] == points
            assert [o.best_method for o in chunked] == [
                o.best_method for o in serial
            ]

    def test_plan_points_chunk_worker(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,), microbatches=(8,))
        outcomes = plan_points(points, FAST)
        assert [o.point for o in outcomes] == points


class TestDefaultChunkSize:
    def test_targets_about_four_chunks_per_worker(self):
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(65, 4) == 5

    def test_small_sweeps_never_round_to_zero(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 8) == 1
        assert default_chunk_size(5, 0) == 2

    def test_best_method_table_renders(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,), microbatches=(8,))
        outcomes = sweep(points, FAST, executor="serial")
        text = best_method_table(outcomes)
        assert "best" in text and outcomes[0].best_method in text

    def test_infeasible_grid_point_renders_without_crashing(self):
        points = grid(devices=(4,), vocab_sizes=(256 * 1024,),
                      microbatches=(8,), memory_budgets_gib=(0.5,))
        outcomes = sweep(points, FAST, executor="serial")
        assert outcomes[0].best_method is None
        assert "(none fits)" in best_method_table(outcomes)
