"""Tests for grid construction and the parallel planning sweep."""

import pytest

from repro.harness.settings import TABLE1_SHAPES, TABLE2_SHAPES
from repro.planner import (
    PlannerConstraints,
    SweepPoint,
    best_method_table,
    default_chunk_size,
    grid,
    model_for_devices,
    plan_point,
    plan_points,
    sweep,
)

FAST = PlannerConstraints(simulate_top_k=1)


class TestGrid:
    def test_cartesian_product_order(self):
        points = grid(
            devices=(4, 8),
            vocab_sizes=(32 * 1024, 64 * 1024),
            microbatches=(8,),
        )
        assert len(points) == 4
        assert points[0] == SweepPoint(4, 32 * 1024, 2048, 8, None)
        assert [p.devices for p in points] == [4, 4, 8, 8]

    def test_budget_axis(self):
        points = grid(
            devices=(4,), vocab_sizes=(32 * 1024,), memory_budgets_gib=(24.0, 80.0)
        )
        assert [p.memory_budget_gib for p in points] == [24.0, 80.0]


class TestModelForDevices:
    def test_paper_shapes_preferred(self):
        assert model_for_devices(8, 2048, 32 * 1024).num_layers == TABLE1_SHAPES[8][0]
        assert model_for_devices(24, 2048, 32 * 1024).num_layers == TABLE2_SHAPES[24][0]

    def test_generic_shape_keeps_both_families_feasible(self):
        model = model_for_devices(6, 2048, 32 * 1024)
        assert model.num_layers % 6 == 0
        assert model.num_layers % 12 == 0  # V-Half needs 2p


class TestSweep:
    def test_serial_sweep_matches_individual_plans(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        outcomes = sweep(points, FAST, executor="serial")
        assert [o.point for o in outcomes] == points
        for outcome in outcomes:
            alone = plan_point(outcome.point, FAST)
            assert alone.best_method == outcome.best_method

    def test_thread_sweep_matches_serial(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        serial = sweep(points, FAST, executor="serial")
        threaded = sweep(points, FAST, executor="thread", max_workers=2)
        assert [o.best_method for o in serial] == [
            o.best_method for o in threaded
        ]

    def test_budget_override_applies(self):
        point = SweepPoint(4, 256 * 1024, num_microbatches=8,
                           memory_budget_gib=1.0)
        outcome = plan_point(point, FAST)
        assert not outcome.plans.ranked
        assert outcome.plans.memory_budget_gib == 1.0

    def test_invalid_executor(self):
        with pytest.raises(ValueError, match="executor"):
            sweep([SweepPoint(4, 32 * 1024)], executor="mpi")

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            sweep([SweepPoint(4, 32 * 1024)], executor="serial", chunk_size=0)

    def test_chunked_sweep_matches_serial(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,), memory_budgets_gib=(None, 80.0))
        serial = sweep(points, FAST, executor="serial")
        for chunk_size in (1, 3, 16):
            chunked = sweep(points, FAST, executor="thread",
                            max_workers=2, chunk_size=chunk_size)
            assert [o.point for o in chunked] == points
            assert [o.best_method for o in chunked] == [
                o.best_method for o in serial
            ]

    def test_plan_points_chunk_worker(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,), microbatches=(8,))
        outcomes = plan_points(points, FAST)
        assert [o.point for o in outcomes] == points


class TestDefaultChunkSize:
    def test_targets_about_four_chunks_per_worker(self):
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(65, 4) == 5

    def test_small_sweeps_never_round_to_zero(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 8) == 1
        assert default_chunk_size(5, 0) == 2

    def test_best_method_table_renders(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,), microbatches=(8,))
        outcomes = sweep(points, FAST, executor="serial")
        text = best_method_table(outcomes)
        assert "best" in text and outcomes[0].best_method in text

    def test_infeasible_grid_point_renders_without_crashing(self):
        points = grid(devices=(4,), vocab_sizes=(256 * 1024,),
                      microbatches=(8,), memory_budgets_gib=(0.5,))
        outcomes = sweep(points, FAST, executor="serial")
        assert outcomes[0].best_method is None
        assert "(none fits)" in best_method_table(outcomes)


class TestStructuralGrouping:
    def test_interleaved_structures_preserve_input_order(self):
        # Interleave two structures so grouping must reorder for
        # chunking and restore the input order afterwards.
        a = SweepPoint(4, 32 * 1024, num_microbatches=8, memory_budget_gib=80.0)
        b = SweepPoint(4, 128 * 1024, num_microbatches=8, memory_budget_gib=80.0)
        a2 = SweepPoint(4, 32 * 1024, num_microbatches=8, memory_budget_gib=40.0)
        b2 = SweepPoint(4, 128 * 1024, num_microbatches=8, memory_budget_gib=40.0)
        points = [a, b, a2, b2]
        outcomes = sweep(points, FAST, executor="serial")
        assert [o.point for o in outcomes] == points
        threaded = sweep(points, FAST, executor="thread", max_workers=2,
                         chunk_size=2)
        assert [o.point for o in threaded] == points
        assert [o.best_method for o in threaded] == [
            o.best_method for o in outcomes
        ]

    def test_structure_axes_exclude_bindings(self):
        base = SweepPoint(8, 32 * 1024)
        assert base.structure_axes() == SweepPoint(
            8, 32 * 1024, memory_budget_gib=13.0, pass_overhead=1e-3
        ).structure_axes()
        assert base.structure_axes() != SweepPoint(16, 32 * 1024).structure_axes()


class TestPassOverheadAxis:
    def test_grid_overhead_axis(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,),
                      pass_overheads=(None, 1e-3))
        assert [p.pass_overhead for p in points] == [None, 1e-3]

    def test_overhead_sweep_matches_individual_plans(self):
        from repro.planner import clear_plan_cache

        constraints = PlannerConstraints(simulate_top_k=2, refine=False)
        points = grid(devices=(4,), vocab_sizes=(64 * 1024,),
                      microbatches=(8,), pass_overheads=(1e-4, 4e-4, 8e-4))
        clear_plan_cache()
        swept = sweep(points, constraints, executor="serial")
        for point, outcome in zip(points, swept):
            clear_plan_cache()
            alone = plan_point(point, constraints)
            assert alone.best_method == outcome.best_method
            if alone.best_method is not None:
                a = alone.plans.best
                s = outcome.plans.best
                assert a.iteration_time == s.iteration_time
                assert a.peak_memory_gb == s.peak_memory_gb

    def test_overhead_sweep_matches_with_refinement(self):
        from repro.planner import clear_plan_cache

        constraints = PlannerConstraints(simulate_top_k=2, refine=True)
        points = grid(devices=(4,), vocab_sizes=(64 * 1024,),
                      microbatches=(8,), pass_overheads=(1e-4, 8e-4))
        clear_plan_cache()
        swept = sweep(points, constraints, executor="serial")
        for point, outcome in zip(points, swept):
            clear_plan_cache()
            alone = plan_point(point, constraints)
            assert alone.best_method == outcome.best_method


class TestPoolFallback:
    def test_unavailable_pool_surfaces_reason(self, monkeypatch):
        import importlib

        sweep_mod = importlib.import_module("repro.planner.sweep")
        monkeypatch.setattr(sweep_mod, "_get_pool", lambda *a: None)
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        with pytest.warns(RuntimeWarning, match="fell back to serial"):
            outcomes = sweep(points, FAST, executor="thread", chunk_size=1)
        assert [o.point for o in outcomes] == points
        for outcome in outcomes:
            assert outcome.fallback_reason is not None
            assert "pool failed" in outcome.fallback_reason

    def test_healthy_sweep_has_no_fallback_reason(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,), microbatches=(8,),
                      memory_budgets_gib=(None, 80.0))
        for outcome in sweep(points, FAST, executor="thread", max_workers=2):
            assert outcome.fallback_reason is None


class TestPersistentPools:
    def test_pool_is_reused_across_sweeps(self):
        import importlib

        sweep_mod = importlib.import_module("repro.planner.sweep")
        sweep_mod.shutdown_pools()
        points = grid(devices=(4,), vocab_sizes=(32 * 1024, 128 * 1024),
                      microbatches=(8,))
        sweep(points, FAST, executor="thread", max_workers=2)
        first = sweep_mod._POOLS.get(("thread", 2))
        assert first is not None
        sweep(points, FAST, executor="thread", max_workers=2)
        assert sweep_mod._POOLS.get(("thread", 2)) is first
        sweep_mod.shutdown_pools()
        assert ("thread", 2) not in sweep_mod._POOLS


class TestScenarioAxis:
    def test_grid_scenario_axis(self):
        points = grid(devices=(4,), vocab_sizes=(32 * 1024,),
                      scenarios=(None, "slow-node"))
        assert [p.scenario for p in points] == [None, "slow-node"]

    def test_scenario_is_a_structure_axis(self):
        nominal = SweepPoint(4, 32 * 1024)
        perturbed = SweepPoint(4, 32 * 1024, scenario="slow-node")
        assert nominal.structure_axes() != perturbed.structure_axes()

    def test_scenario_sweep_matches_individual_plans(self):
        from repro.planner import clear_plan_cache

        points = grid(devices=(4,), vocab_sizes=(32 * 1024,),
                      microbatches=(8,), scenarios=(None, "slow-node"))
        outcomes = sweep(points, FAST, executor="serial")
        assert [o.point for o in outcomes] == points
        clear_plan_cache()
        for outcome in outcomes:
            alone = plan_point(outcome.point, FAST)
            assert alone.best_method == outcome.best_method
            assert (
                alone.plans.best.iteration_time
                == outcome.plans.best.iteration_time
            )
        # The straggler must actually bite: same grid point, slower best.
        assert (
            outcomes[1].plans.best.iteration_time
            > outcomes[0].plans.best.iteration_time
        )

    def test_unknown_scenario_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            plan_point(SweepPoint(4, 32 * 1024, num_microbatches=8,
                                  scenario="nope"), FAST)
