"""Tests for the schedule planner core: ranking, constraints, caching."""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.memory import GiB, MemoryModel
from repro.harness.settings import ONE_F_ONE_B_METHODS
from repro.planner import (
    PlanCache,
    PlannerConstraints,
    config_digest,
    estimate_method,
    infeasibility_reason,
    plan,
)
from repro.sim import SimulationSetup


@pytest.fixture
def model() -> ModelConfig:
    """The paper's ≈4B Table 1 shape at a 128k vocabulary."""
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=128 * 1024,
    )


@pytest.fixture
def parallel() -> ParallelConfig:
    return ParallelConfig(pipeline_size=8, num_microbatches=16)


def ranking_of(plans):
    return [(c.method, c.source) for c in plans.ranked]


class TestEstimate:
    def test_estimate_close_to_simulation(self, model, parallel):
        from repro.harness.experiments import run_method

        setup = SimulationSetup(model, parallel)
        for method in ("baseline", "vocab-2"):
            est = estimate_method(method, setup)
            sim = run_method(method, model, parallel)
            assert est.iteration_time == pytest.approx(
                sim.iteration_time, rel=0.15
            )
            assert est.peak_bytes / GiB == pytest.approx(
                sim.peak_memory_gb, rel=0.15
            )

    def test_infeasibility_reasons(self, model, parallel):
        # 32 layers over 8 devices: everything fits.
        assert infeasibility_reason("vocab-1", model, parallel) is None
        assert infeasibility_reason("vhalf-vocab-1", model, parallel) is None
        # 24 layers over 8 devices: 1F1B fits, V-Half (2p = 16) does not.
        odd = model.replace(num_layers=24)
        assert infeasibility_reason("baseline", odd, parallel) is None
        assert "divisible by 2p" in infeasibility_reason(
            "vhalf-baseline", odd, parallel
        )
        # 20 layers over 8 devices: nothing fits.
        assert "divisible" in infeasibility_reason(
            "baseline", model.replace(num_layers=20), parallel
        )

    def test_unknown_method_rejected(self, model, parallel):
        with pytest.raises(ValueError, match="unknown method"):
            infeasibility_reason("zbh1", model, parallel)


class TestPlanRanking:
    def test_ranking_is_deterministic(self, model, parallel):
        first = plan(model, parallel, cache=PlanCache())
        second = plan(model, parallel, cache=PlanCache())
        assert first is not second
        assert ranking_of(first) == ranking_of(second)
        assert [c.iteration_time for c in first.ranked] == [
            c.iteration_time for c in second.ranked
        ]

    def test_simulated_candidates_rank_first(self, model, parallel):
        plans = plan(
            model,
            parallel,
            PlannerConstraints(simulate_top_k=2),
            cache=PlanCache(),
        )
        sources = [c.source for c in plans.ranked]
        assert sources[:2] == ["sim", "sim"]
        assert "sim" not in sources[2:]
        # Simulated block and estimate block each sorted by time.
        for block in ("sim", "estimate"):
            times = [c.iteration_time for c in plans.ranked if c.source == block]
            assert times == sorted(times)

    def test_winner_is_vocabulary_parallel(self, model, parallel):
        # The paper's headline: vocabulary-parallel schedules beat the
        # baseline and Redis at large vocabularies.
        plans = plan(model, parallel, cache=PlanCache())
        assert plans.best.method not in ("baseline", "redis", "vhalf-baseline")
        baseline = plans.candidate("baseline")
        assert plans.best.iteration_time < baseline.iteration_time

    def test_methods_restriction(self, model, parallel):
        plans = plan(
            model,
            parallel,
            PlannerConstraints(methods=("baseline", "redis")),
            cache=PlanCache(),
        )
        assert set(plans.methods_considered) == {"baseline", "redis"}

    def test_structurally_infeasible_families_are_rejected(self, parallel, model):
        odd = model.replace(num_layers=24)  # 24 % 16 != 0 → no V-Half
        plans = plan(odd, parallel, cache=PlanCache())
        rejected = {c.method: c for c in plans.rejected}
        for method in ("vhalf-baseline", "vhalf-vocab-1", "vhalf-vocab-2"):
            assert method in rejected
            assert rejected[method].source == "structural"
            assert "divisible" in rejected[method].reason
        assert all(not c.method.startswith("vhalf") for c in plans.ranked)

    def test_estimate_only_mode(self, model, parallel):
        plans = plan(
            model,
            parallel,
            PlannerConstraints(simulate_top_k=0),
            cache=PlanCache(),
        )
        assert plans.ranked
        assert all(c.source == "estimate" for c in plans.ranked)

    def test_simulate_everything_mode(self, model, parallel):
        plans = plan(
            model,
            parallel,
            PlannerConstraints(simulate_top_k=None, methods=("baseline", "vocab-2")),
            cache=PlanCache(),
        )
        assert all(c.source == "sim" for c in plans.ranked)

    def test_render_lists_every_candidate(self, model, parallel):
        plans = plan(model, parallel, cache=PlanCache())
        text = plans.render()
        for c in plans.ranked:
            assert c.method in text
        assert "budget" in text

    def test_build_best_schedule_validates(self, model, parallel):
        plans = plan(model, parallel, cache=PlanCache())
        schedule = plans.build_best_schedule()
        schedule.validate()
        assert schedule.num_microbatches == parallel.num_microbatches


class TestMemoryConstraint:
    def test_budget_filters_infeasible_plans(self, model, parallel):
        unconstrained = plan(model, parallel, cache=PlanCache())
        heaviest = max(c.peak_memory_gb for c in unconstrained.ranked)
        lightest = min(c.peak_memory_gb for c in unconstrained.ranked)
        budget = (heaviest + lightest) / 2.0
        constrained = plan(
            model,
            parallel,
            PlannerConstraints(memory_budget_gib=budget),
            cache=PlanCache(),
        )
        assert constrained.ranked, "some schedule must fit the mid budget"
        assert all(c.peak_memory_gb <= budget for c in constrained.ranked)
        over = [c for c in constrained.rejected if "budget" in c.reason]
        assert over, "the heaviest schedule must be rejected"
        ranked_methods = {c.method for c in constrained.ranked}
        assert not ranked_methods & {c.method for c in constrained.rejected}

    def test_margin_window_candidate_is_simulated_not_rejected(self):
        # A candidate estimated slightly over budget but actually
        # fitting must be settled by the simulator even when its
        # estimated time places it outside simulate_top_k.
        from repro.harness import model_for_1f1b, run_method
        from repro.harness.settings import parallel_for

        methods = ("baseline", "redis", "vocab-1", "vocab-2", "interlaced")
        big = model_for_1f1b(8, 2048, 256 * 1024)
        par = parallel_for(8, num_microbatches=16)
        est_gb = estimate_method("vocab-2", SimulationSetup(big, par)).peak_bytes / GiB
        sim_gb = run_method("vocab-2", big, par).peak_memory_gb
        if est_gb <= sim_gb:
            pytest.skip("estimate not pessimistic for this config")
        budget = (est_gb + sim_gb) / 2.0
        plans = plan(
            big,
            par,
            PlannerConstraints(
                methods=methods, simulate_top_k=1, memory_budget_gib=budget
            ),
            cache=PlanCache(),
        )
        borderline = plans.candidate("vocab-2")
        assert borderline.source == "sim"
        assert borderline.feasible

    def test_no_feasible_plan_raises_with_reasons(self, model, parallel):
        plans = plan(
            model,
            parallel,
            PlannerConstraints(memory_budget_gib=1.0),
            cache=PlanCache(),
        )
        assert not plans.ranked
        with pytest.raises(ValueError, match="no feasible schedule"):
            _ = plans.best

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="memory_budget_gib"):
            PlannerConstraints(memory_budget_gib=-4.0)
        with pytest.raises(ValueError, match="simulate_top_k"):
            PlannerConstraints(simulate_top_k=-1)
        with pytest.raises(ValueError, match="estimate_margin"):
            PlannerConstraints(estimate_margin=0.5)
        with pytest.raises(ValueError, match="unknown method"):
            PlannerConstraints(methods=("zbh1",))


class TestCache:
    def test_cache_hit_returns_identical_result(self, model, parallel):
        cache = PlanCache()
        first = plan(model, parallel, cache=cache)
        second = plan(model, parallel, cache=cache)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_different_configs_miss(self, model, parallel):
        cache = PlanCache()
        plan(model, parallel, cache=cache)
        plan(model.replace(vocab_size=64 * 1024), parallel, cache=cache)
        assert cache.misses == 2 and len(cache) == 2

    def test_constraints_are_part_of_the_key(self, model, parallel):
        cache = PlanCache()
        a = plan(model, parallel, cache=cache)
        b = plan(
            model,
            parallel,
            PlannerConstraints(memory_budget_gib=40.0),
            cache=cache,
        )
        assert a is not b and a.cache_key != b.cache_key

    def test_disk_backed_cache_shares_results(self, model, parallel, tmp_path):
        warm = plan(
            model,
            parallel,
            PlannerConstraints(methods=ONE_F_ONE_B_METHODS),
            cache=PlanCache(tmp_path),
        )
        cold_cache = PlanCache(tmp_path)
        reloaded = plan(
            model,
            parallel,
            PlannerConstraints(methods=ONE_F_ONE_B_METHODS),
            cache=cold_cache,
        )
        assert cold_cache.hits == 1
        assert ranking_of(reloaded) == ranking_of(warm)

    def test_config_digest_stability(self, model, parallel):
        constraints = PlannerConstraints()
        memory = MemoryModel()
        key = config_digest(model, parallel, constraints, memory)
        assert key == config_digest(model, parallel, constraints, memory)
        assert key != config_digest(
            model.replace(vocab_size=64 * 1024), parallel, constraints, memory
        )


class TestBudgetIndependentAuxCache:
    """Estimates and metrics are keyed without the budget: a budget
    sweep over one structure re-ranks cached prices instead of
    re-estimating and re-simulating."""

    def test_second_budget_reuses_estimates_and_metrics(self, model, parallel):
        cache = PlanCache()
        a = plan(
            model, parallel,
            PlannerConstraints(memory_budget_gib=80.0), cache=cache,
        )
        aux_misses_after_first = cache.aux_misses
        b = plan(
            model, parallel,
            PlannerConstraints(memory_budget_gib=60.0), cache=cache,
        )
        # The second budget is a whole-plan miss but every estimate and
        # every simulated-metrics entry is an aux hit: no new misses.
        assert cache.misses == 2
        assert cache.aux_misses == aux_misses_after_first
        assert cache.aux_hits > 0
        assert a.cache_key != b.cache_key

    def test_budgets_rank_identically_to_cold_plans(self, model, parallel):
        shared = PlanCache()
        budgets = (80.0, 40.0, 20.0)
        warm = [
            plan(model, parallel,
                 PlannerConstraints(memory_budget_gib=budget), cache=shared)
            for budget in budgets
        ]
        for budget, warm_plans in zip(budgets, warm):
            cold = plan(
                model, parallel,
                PlannerConstraints(memory_budget_gib=budget),
                cache=PlanCache(),
            )
            assert ranking_of(cold) == ranking_of(warm_plans)
            for method in cold.methods_considered:
                c, w = cold.candidate(method), warm_plans.candidate(method)
                assert c.iteration_time == w.iteration_time
                assert c.peak_memory_gb == w.peak_memory_gb

    def test_aux_entries_persist_to_disk(self, model, parallel, tmp_path):
        plan(
            model, parallel,
            PlannerConstraints(memory_budget_gib=80.0),
            cache=PlanCache(tmp_path),
        )
        fresh = PlanCache(tmp_path)
        plan(
            model, parallel,
            PlannerConstraints(memory_budget_gib=60.0), cache=fresh,
        )
        # A different budget in a new process(-like) cache: the plan
        # entry misses but pricing comes entirely off disk.
        assert fresh.misses == 1 and fresh.aux_misses == 0
        assert fresh.aux_hits > 0


class TestPassOverheadBinding:
    def test_overhead_changes_prices_not_structure(self, model, parallel):
        cache = PlanCache()
        base = plan(model, parallel, cache=cache)
        slow = plan(model, parallel, cache=cache, pass_overhead=5e-3)
        assert slow.cache_key != base.cache_key
        assert slow.pass_overhead == 5e-3
        best = slow.best.method
        assert slow.candidate(best).iteration_time > base.candidate(
            best
        ).iteration_time or best != base.best.method

    def test_overhead_is_part_of_aux_keys(self, model, parallel):
        cache = PlanCache()
        plan(model, parallel, cache=cache)
        misses = cache.aux_misses
        plan(model, parallel, cache=cache, pass_overhead=5e-3)
        # New binding => fresh estimates/metrics, not stale reuse.
        assert cache.aux_misses > misses


class TestNumpyOptional:
    def test_planner_stack_imports_and_plans_without_numpy(self):
        """The scheduling/sim/planner chain must not require NumPy
        (pyproject lists it as an optional extra)."""
        import subprocess
        import sys
        from pathlib import Path

        script = """
import sys
class Hider:
    # find_spec, not the pre-3.12 find_module: the import system no
    # longer consults find_module, which would make this hider inert.
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(name + " hidden")
sys.meta_path.insert(0, Hider())
try:
    import numpy
except ImportError:
    pass
else:
    raise SystemExit("hider inert: numpy imported")
from repro.config import ModelConfig, ParallelConfig
from repro.planner import PlannerConstraints, plan
model = ModelConfig(num_layers=8, hidden_size=256, num_attention_heads=4,
                    seq_length=256, vocab_size=8 * 1024)
parallel = ParallelConfig(pipeline_size=4, num_microbatches=4)
plans = plan(model, parallel, PlannerConstraints(simulate_top_k=1))
assert plans.ranked
print("OK", plans.best.method)
"""
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": ""},
            cwd=str(src.parent),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("OK")
