"""Crash-safety of the disk-backed PlanCache.

A bad byte on disk must cost a recompute — never an exception, never a
wrong plan: corrupt/truncated entries are quarantined into a sidecar
directory and reported as misses, and the format survives process
restarts.  Also the regression test for the eviction race between two
caches bounding one shared directory.
"""

import hashlib
import pickle
from pathlib import Path

import pytest

from repro import faultinject
from repro.planner import PlanCache
from repro.planner.cache import _MAGIC, QUARANTINE_DIR


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset()
    yield
    faultinject.reset()


def entry_path(cache: PlanCache, key: str):
    return cache.directory / f"{key}.plan.pkl"


class TestChecksummedFormat:
    def test_round_trip_and_header_layout(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("k1", {"plan": "value"})
        blob = entry_path(cache, "k1").read_bytes()
        assert blob.startswith(_MAGIC)
        header_len = len(_MAGIC) + 65
        payload = blob[header_len:]
        digest = blob[len(_MAGIC):header_len - 1].decode("ascii")
        assert hashlib.sha256(payload).hexdigest() == digest
        # A fresh cache (a "restarted process") reads it back verified.
        assert PlanCache(directory=tmp_path).get("k1") == {"plan": "value"}

    def test_legacy_raw_pickle_still_readable(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        entry_path(cache, "old").write_bytes(pickle.dumps({"plan": "legacy"}))
        assert cache.get("old") == {"plan": "legacy"}
        assert cache.quarantined == 0


class TestCorruptionIsQuarantined:
    def read_misses(self, tmp_path, blob: bytes):
        """Plant ``blob`` as an entry, read it with a fresh cache."""
        writer = PlanCache(directory=tmp_path)
        entry_path(writer, "bad").write_bytes(blob)
        reader = PlanCache(directory=tmp_path)
        assert reader.get("bad") is None
        assert reader.quarantined == 1
        assert reader.misses == 1
        quarantine = tmp_path / QUARANTINE_DIR
        assert (quarantine / "bad.plan.pkl").exists()
        assert not entry_path(reader, "bad").exists()
        return reader

    def test_truncated_json_like_garbage(self, tmp_path):
        self.read_misses(tmp_path, b'{"half a json entry')

    def test_pure_garbage(self, tmp_path):
        self.read_misses(tmp_path, b"\x00\xff\x17garbage")

    def test_checksum_mismatch(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("bad", {"plan": "good"})
        blob = bytearray(entry_path(cache, "bad").read_bytes())
        blob[-1] ^= 0xFF  # one flipped payload byte
        self.read_misses(tmp_path, bytes(blob))

    def test_truncated_checksummed_entry(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("bad", {"plan": "good"})
        blob = entry_path(cache, "bad").read_bytes()
        self.read_misses(tmp_path, blob[: len(blob) // 2])

    def test_recompute_after_quarantine(self, tmp_path):
        reader = self.read_misses(tmp_path, b"junk")
        reader.put("bad", {"plan": "recomputed"})
        assert PlanCache(directory=tmp_path).get("bad") == {
            "plan": "recomputed"
        }

    def test_quarantine_survives_restart(self, tmp_path):
        self.read_misses(tmp_path, b"junk")
        fresh = PlanCache(directory=tmp_path)
        assert fresh.get("bad") is None
        assert fresh.quarantined == 0  # gone, a plain miss — not re-counted


class TestInjectedWriteFaults:
    def test_torn_write_is_caught_by_reader(self, tmp_path):
        faultinject.install("torn-cache-write:rate=1,limit=1")
        writer = PlanCache(directory=tmp_path)
        writer.put("torn", {"plan": "value"})
        # The writer keeps its in-memory copy (it did the work) ...
        assert writer.get("torn") == {"plan": "value"}
        # ... but what reached disk is truncated, and a reader sharing
        # the directory quarantines it instead of unpickling junk.
        reader = PlanCache(directory=tmp_path)
        assert reader.get("torn") is None
        assert reader.quarantined == 1

    def test_corrupt_entry_is_caught_by_reader(self, tmp_path):
        faultinject.install("corrupt-cache-entry:rate=1,limit=1")
        writer = PlanCache(directory=tmp_path)
        writer.put("rot", {"plan": "value"})
        reader = PlanCache(directory=tmp_path)
        assert reader.get("rot") is None
        assert reader.quarantined == 1

    def test_aux_entries_share_the_protection(self, tmp_path):
        faultinject.install("torn-cache-write:rate=1,limit=1")
        writer = PlanCache(directory=tmp_path)
        writer.put_aux("estimate", "e1", {"cost": 1.0})
        reader = PlanCache(directory=tmp_path)
        assert reader.get_aux("estimate", "e1") is None
        assert reader.quarantined == 1


class TestSharedDirectoryEvictionRace:
    def test_two_caches_bounding_one_directory(self, tmp_path):
        """Regression: racing evictors must tolerate vanished files.

        Two bounded caches over one directory each scan-and-unlink on
        write; before the ENOENT guards a sibling's unlink (or a stat
        on a vanished path) raised out of ``put``.  Interleave writes
        heavily and require both writers to finish, the directory to
        stay bounded, and fresh entries to remain readable.
        """
        a = PlanCache(directory=tmp_path, max_entries=3)
        b = PlanCache(directory=tmp_path, max_entries=3)
        for i in range(40):
            a.put(f"ka{i:03d}", {"plan": i})
            b.put(f"kb{i:03d}", {"plan": i})
            # Force a rescan each round: the race needs both writers
            # actually walking the shared directory, not their counts.
            a._disk_counts.clear()
            b._disk_counts.clear()
        survivors = list(tmp_path.glob("*.plan.pkl"))
        assert len(survivors) <= 2 * 3
        fresh = PlanCache(directory=tmp_path)
        assert fresh.get("kb039") == {"plan": 39}

    def test_file_vanishing_mid_scan_is_skipped(self, tmp_path, monkeypatch):
        """Deterministic ENOENT: a sibling unlinks between glob and stat."""
        cache = PlanCache(directory=tmp_path, max_entries=2)
        for i in range(4):
            cache.put(f"k{i}", {"plan": i})
        real_stat = Path.stat

        def sibling_unlinked(self, *args, **kwargs):
            if self.name == "k3.plan.pkl":
                raise FileNotFoundError(self)
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", sibling_unlinked)
        cache._disk_counts.clear()
        cache.put("k9", {"plan": 9})  # scans; must skip, not raise
        monkeypatch.undo()
        assert PlanCache(directory=tmp_path).get("k9") == {"plan": 9}

    def test_eviction_tolerates_scan_failure(self, tmp_path, monkeypatch):
        """A directory that vanishes mid-scan aborts eviction, not put."""
        cache = PlanCache(directory=tmp_path, max_entries=2)
        for i in range(3):
            cache.put(f"k{i}", {"plan": i})

        def directory_vanished(self, pattern):
            raise OSError("directory removed by a sibling")

        monkeypatch.setattr(Path, "glob", directory_vanished)
        cache._disk_counts.clear()
        cache.put("k9", {"plan": 9})  # eviction scan fails; put must not
        monkeypatch.undo()
        assert PlanCache(directory=tmp_path).get("k9") == {"plan": 9}
