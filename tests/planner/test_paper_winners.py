"""The planner's top choice must agree with the simulator's fastest.

These are the acceptance checks tying the planner back to the paper:
on the Table 5 (1F1B family) and Table 6 (V-Half family) experiment
configs, :func:`repro.planner.plan` — with its default top-k pruning —
must pick exactly the schedule a brute-force simulation of every
family would pick.
"""

import pytest

from repro.harness import model_for_1f1b, model_for_vhalf, run_method
from repro.harness.settings import (
    ONE_F_ONE_B_METHODS,
    VHALF_METHODS,
    parallel_for,
)
from repro.planner import PlanCache, PlannerConstraints, plan

#: Enough microbatches for steady-state behaviour, small enough for CI.
MICROBATCHES = 32


def simulator_fastest(methods, model, parallel) -> str:
    """Brute force: simulate every family, return the fastest feasible."""
    metrics = {m: run_method(m, model, parallel) for m in methods}
    feasible = {m: r for m, r in metrics.items() if not r.oom}
    return min(feasible, key=lambda m: feasible[m].iteration_time)


@pytest.mark.parametrize("gpus", [8, 16])
@pytest.mark.parametrize("vocab", [64 * 1024, 256 * 1024])
def test_table5_planner_matches_simulator(gpus, vocab):
    model = model_for_1f1b(gpus, 2048, vocab)
    parallel = parallel_for(gpus, num_microbatches=MICROBATCHES)
    plans = plan(
        model,
        parallel,
        PlannerConstraints(methods=ONE_F_ONE_B_METHODS),
        cache=PlanCache(),
    )
    winner = simulator_fastest(ONE_F_ONE_B_METHODS, model, parallel)
    assert plans.best.method == winner
    assert plans.best.source == "sim"
    # And the paper's claim holds: a vocabulary-parallel schedule wins.
    assert plans.best.method in ("vocab-1", "vocab-2", "interlaced")


@pytest.mark.parametrize("vocab", [64 * 1024, 256 * 1024])
def test_table6_planner_matches_simulator(vocab):
    gpus = 16
    model = model_for_vhalf(gpus, 2048, vocab)
    parallel = parallel_for(gpus, num_microbatches=MICROBATCHES)
    plans = plan(
        model,
        parallel,
        PlannerConstraints(methods=VHALF_METHODS),
        cache=PlanCache(),
    )
    winner = simulator_fastest(VHALF_METHODS, model, parallel)
    assert plans.best.method == winner
    assert plans.best.method == "vhalf-vocab-1"


def test_planner_iteration_times_match_run_method():
    """Simulated candidates carry exactly run_method's numbers."""
    model = model_for_1f1b(8, 2048, 256 * 1024)
    parallel = parallel_for(8, num_microbatches=MICROBATCHES)
    plans = plan(
        model,
        parallel,
        PlannerConstraints(methods=ONE_F_ONE_B_METHODS, simulate_top_k=None),
        cache=PlanCache(),
    )
    for candidate in plans.ranked:
        metrics = run_method(candidate.method, model, parallel)
        assert candidate.iteration_time == pytest.approx(metrics.iteration_time)
        assert candidate.peak_memory_gb == pytest.approx(metrics.peak_memory_gb)
        assert candidate.mfu == pytest.approx(metrics.mfu)
