"""Trust-gated top-k verification never changes the chosen plan.

The calibrated cost model entitles :func:`repro.planner.plan` to skip
simulating candidates whose error-inflated analytic estimates provably
lose to the leader.  That is an *optimization*, not a ranking change:
the differential tests here assert the trust-gated planner picks the
same top-1 as exhaustive verification across both paper shape families,
and that every situation the gate does not understand — registered
scenarios the report does not cover, uncalibrated or stale profiles,
Monte Carlo ranking — falls back to full verification.

Also the probe-cache regression from this PR: per-(method, setup) probe
entries are keyed on the cost model's content digest, so two profiles
never share m=1 probe pricing.
"""

from __future__ import annotations

import pytest

from repro.costmodel import (
    BUILTIN_PROFILE,
    HardwareProfile,
    get_cost_model,
    register_cost_model,
)
from repro.costmodel.calibrate import _REGISTRY
from repro.harness.settings import model_for_1f1b, model_for_vhalf, parallel_for
from repro.planner import (
    PlanCache,
    PlannerConstraints,
    clear_probe_cache,
    plan,
    probe_cache_stats,
)
from repro.planner.estimate import estimate_method
from repro.sim import SimulationSetup

FULL = PlannerConstraints(simulate_top_k=None)
GATED = PlannerConstraints(simulate_top_k=None, cost_model=BUILTIN_PROFILE)

# (label, model, parallel) covering both paper shape blocks at two
# vocabulary sizes each — the configurations the committed profile's
# error bounds must generalize over.
CONFIGS = [
    (
        f"{shape}-{vocab // 1024}k",
        factory(devices, 2048, vocab),
        parallel_for(devices, num_microbatches=16),
    )
    for shape, factory, devices, vocabs in (
        ("1f1b", model_for_1f1b, 8, (64 * 1024, 256 * 1024)),
        ("vhalf", model_for_vhalf, 16, (64 * 1024, 256 * 1024)),
    )
    for vocab in vocabs
]


@pytest.fixture
def scratch_model():
    """Register a throwaway cost model; always unregister after."""

    def _register(name, profile):
        register_cost_model(name, profile)
        return name

    created = []

    def factory(name, profile):
        created.append(name)
        return _register(name, profile)

    yield factory
    for name in created:
        _REGISTRY.pop(name, None)


class TestDifferentialTop1:
    @pytest.mark.parametrize(
        "label,model,parallel", CONFIGS, ids=[c[0] for c in CONFIGS]
    )
    def test_same_winner_as_full_verification(self, label, model, parallel):
        full = plan(model, parallel, FULL, cache=PlanCache())
        gated = plan(model, parallel, GATED, cache=PlanCache())
        assert gated.best.method == full.best.method, label
        assert gated.cost_model == BUILTIN_PROFILE
        # Candidates the gate skipped keep their analytic price and are
        # marked unsimulated; everything else carries simulated metrics.
        for candidate in gated.ranked:
            if candidate.method in gated.trust_skipped:
                assert not candidate.simulated
        assert gated.best.simulated  # the winner is always verified

    def test_gate_actually_skips_somewhere(self):
        skipped = 0
        for _, model, parallel in CONFIGS:
            plans = plan(model, parallel, GATED, cache=PlanCache())
            if plans.trust_gated:
                skipped += len(plans.trust_skipped)
        assert skipped > 0, (
            "trust gating never skipped a candidate on any config — "
            "the bench speedup claim would be vacuous"
        )

    def test_gated_plan_renders_skip_line(self):
        _, model, parallel = CONFIGS[0][0], CONFIGS[0][1], CONFIGS[0][2]
        plans = plan(model, parallel, GATED, cache=PlanCache())
        if plans.trust_skipped:
            rendered = plans.render()
            assert "trust-gated" in rendered


class TestFallbacks:
    def test_scenario_plans_fall_back_to_full_verification(self):
        # The committed report only covers the nominal cluster; under a
        # registered scenario every error_bound() is None, so the gate
        # must not fire.
        _, model, parallel = CONFIGS[0]
        plans = plan(
            model, parallel, GATED, cache=PlanCache(), scenario="slow-node"
        )
        assert not plans.trust_gated
        assert plans.trust_skipped == ()

    def test_uncalibrated_profile_falls_back(self, scratch_model):
        name = scratch_model("test-uncalibrated", HardwareProfile(name="blank"))
        _, model, parallel = CONFIGS[0]
        constraints = PlannerConstraints(simulate_top_k=None, cost_model=name)
        plans = plan(model, parallel, constraints, cache=PlanCache())
        assert not plans.trust_gated
        assert plans.trust_skipped == ()
        # An uncalibrated profile prices exactly like the analytic model.
        full = plan(model, parallel, FULL, cache=PlanCache())
        assert [c.method for c in plans.ranked] == [
            c.method for c in full.ranked
        ]

    def test_stale_profile_falls_back(self, scratch_model):
        import dataclasses

        reference = get_cost_model(BUILTIN_PROFILE).profile
        stale = dataclasses.replace(
            reference, costmodel_version=reference.costmodel_version - 1
        )
        assert not stale.calibrated
        name = scratch_model("test-stale", stale)
        _, model, parallel = CONFIGS[0]
        constraints = PlannerConstraints(simulate_top_k=None, cost_model=name)
        plans = plan(model, parallel, constraints, cache=PlanCache())
        assert not plans.trust_gated

    def test_top_k_zero_and_one_never_gate(self):
        _, model, parallel = CONFIGS[0]
        for top_k in (0, 1):
            constraints = PlannerConstraints(
                simulate_top_k=top_k, cost_model=BUILTIN_PROFILE
            )
            plans = plan(model, parallel, constraints, cache=PlanCache())
            assert not plans.trust_gated


class TestCacheIdentity:
    def test_probe_cache_is_cost_model_keyed(self):
        # Regression for the pre-PR bug: probe entries ignored the cost
        # model, so a calibrated profile could read (and poison) the
        # analytic model's memoized m=1 pricing.
        model = CONFIGS[0][1]
        parallel = CONFIGS[0][2]
        setup = SimulationSetup(model, parallel)
        clear_probe_cache()
        estimate_method("baseline", setup, None, get_cost_model(None))
        analytic_entries = probe_cache_stats()["entries"]
        assert analytic_entries > 0
        estimate_method("baseline", setup, None, get_cost_model(BUILTIN_PROFILE))
        assert probe_cache_stats()["entries"] == 2 * analytic_entries
        # Same model again: a hit, not a third entry.
        estimate_method("baseline", setup, None, get_cost_model(BUILTIN_PROFILE))
        assert probe_cache_stats()["entries"] == 2 * analytic_entries

    def test_plan_cache_key_differs_by_profile_content(self, scratch_model):
        from repro.planner import plan_cache_key

        _, model, parallel = CONFIGS[0]
        analytic_key = plan_cache_key(model, parallel, FULL)
        gated_key = plan_cache_key(model, parallel, GATED)
        assert analytic_key != gated_key
        # Re-fitting under the SAME name must invalidate: key follows
        # the profile content digest, not the name.
        import dataclasses

        reference = get_cost_model(BUILTIN_PROFILE).profile
        tweaked = dataclasses.replace(reference, seed=reference.seed + 1)
        name = scratch_model("test-refit", tweaked)
        refit_key = plan_cache_key(
            model,
            parallel,
            PlannerConstraints(simulate_top_k=None, cost_model=name),
        )
        assert refit_key not in (analytic_key, gated_key)
