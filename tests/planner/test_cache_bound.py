"""Regression tests: the disk-backed PlanCache must stay bounded.

Long-running service processes write whole-plan and aux entries on
every computed request; before ``max_entries`` the cache directory
grew without limit.
"""

import os

import pytest

from repro.planner import PlanCache


def put_n(cache: PlanCache, n: int, *, start: int = 0) -> list[str]:
    keys = [f"{'k%04d' % i}" for i in range(start, start + n)]
    for key in keys:
        cache.put(key, {"plan": key})
    return keys


class TestMemoryBound:
    def test_unbounded_by_default(self):
        cache = PlanCache()
        put_n(cache, 50)
        assert len(cache) == 50
        assert cache.evictions == 0

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_oldest_entry_evicted_first(self):
        cache = PlanCache(max_entries=3)
        keys = put_n(cache, 5)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        assert cache.get(keys[4]) == {"plan": keys[4]}

    def test_aux_kinds_bounded_separately(self):
        cache = PlanCache(max_entries=2)
        for i in range(4):
            cache.put_aux("estimate", f"e{i}", i)
            cache.put_aux("metrics", f"m{i}", i)
        # Two survivors per kind, not two overall.
        assert cache.get_aux("estimate", "e3") == 3
        assert cache.get_aux("estimate", "e2") == 2
        assert cache.get_aux("metrics", "m3") == 3
        assert cache.get_aux("estimate", "e0") is None
        assert cache.get_aux("metrics", "m0") is None

    def test_plan_bound_does_not_touch_aux(self):
        cache = PlanCache(max_entries=2)
        cache.put_aux("estimate", "keepme", 1)
        put_n(cache, 5)
        assert cache.get_aux("estimate", "keepme") == 1


class TestDiskBound:
    def test_disk_directory_stays_bounded(self, tmp_path):
        cache = PlanCache(tmp_path, max_entries=3)
        for i in range(8):
            cache.put(f"k{i}", i)
            # mtime must order the writes on coarse-clock filesystems.
            os.utime(
                cache._path(f"k{i}", "plan"), ns=(i * 1_000_000, i * 1_000_000)
            )
        files = sorted(p.name for p in tmp_path.glob("*.plan.pkl"))
        assert files == ["k5.plan.pkl", "k6.plan.pkl", "k7.plan.pkl"]

    def test_unbounded_disk_unchanged(self, tmp_path):
        cache = PlanCache(tmp_path)
        put_n(cache, 10)
        assert len(list(tmp_path.glob("*.plan.pkl"))) == 10

    def test_evicted_disk_entry_is_a_miss_for_fresh_process(self, tmp_path):
        writer = PlanCache(tmp_path, max_entries=2)
        for i in range(4):
            writer.put(f"k{i}", i)
            os.utime(
                writer._path(f"k{i}", "plan"),
                ns=(i * 1_000_000, i * 1_000_000),
            )
        reader = PlanCache(tmp_path)  # a fresh process: empty memory tier
        assert reader.get("k0") is None
        assert reader.get("k3") == 3

    def test_disk_aux_kinds_bounded_separately(self, tmp_path):
        cache = PlanCache(tmp_path, max_entries=2)
        for i in range(4):
            cache.put_aux("estimate", f"e{i}", i)
            cache.put_aux("metrics", f"m{i}", i)
        assert len(list(tmp_path.glob("*.estimate.pkl"))) == 2
        assert len(list(tmp_path.glob("*.metrics.pkl"))) == 2

    def test_read_only_process_memory_stays_bounded(self, tmp_path):
        """The service's disk tier never writes — reads alone must not
        grow a bounded cache's in-memory store without limit."""
        writer = PlanCache(tmp_path)
        put_n(writer, 20)
        reader = PlanCache(tmp_path, max_entries=4)
        for i in range(20):
            assert reader.get(f"{'k%04d' % i}") == {"plan": "k%04d" % i}
        assert len(reader) <= 4

    def test_long_running_writer_stays_bounded(self, tmp_path):
        """The service-lifetime property: thousands of writes, fixed
        directory size, newest entries always retrievable."""
        cache = PlanCache(tmp_path, max_entries=16)
        for i in range(200):
            cache.put(f"{i:04d}", i)
        assert len(list(tmp_path.glob("*.plan.pkl"))) <= 16
        assert len(cache) == 16
        assert cache.get("0199") == 199
