"""Hypothesis property tests for schedule generation."""

from hypothesis import given, settings, strategies as st

from repro.scheduling import (
    PassType,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_vhalf,
    generate_interlaced,
)
from repro.sim import execute_schedule

from tests.sim.test_executor import UnitRuntime


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(1, 10),
    m=st.integers(1, 20),
    algorithm=st.sampled_from([1, 2]),
    include_input=st.booleans(),
)
def test_vocab_schedules_always_valid_and_executable(p, m, algorithm, include_input):
    schedule = generate_1f1b_vocab(
        p, m, p, algorithm=algorithm, include_input=include_input
    )
    schedule.validate()
    result = execute_schedule(schedule, UnitRuntime())
    assert result.iteration_time > 0
    # All m microbatches completed everywhere.
    assert len(result.pass_times) == sum(len(o) for o in schedule.device_orders)


@settings(max_examples=30, deadline=None)
@given(p=st.integers(1, 12), m=st.integers(1, 16))
def test_1f1b_total_pass_count(p, m):
    schedule = generate_1f1b(p, m, num_layers=p)
    for order in schedule.device_orders:
        assert len(order) == 2 * m  # one F + one B per microbatch


@settings(max_examples=25, deadline=None)
@given(p=st.integers(1, 8), m=st.integers(1, 12))
def test_vhalf_pass_count_and_chunks(p, m):
    schedule = generate_vhalf(p, m, 2 * p)
    for order in schedule.device_orders:
        assert len(order) == 6 * m  # F/B/W × 2 chunks
        for chunk in (0, 1):
            fs = [x for x in order if x.type is PassType.F and x.chunk == chunk]
            assert len(fs) == m


@settings(max_examples=25, deadline=None)
@given(p=st.integers(2, 8), m=st.integers(1, 12))
def test_interlaced_executes_with_barrier_structure(p, m):
    schedule = generate_interlaced(p, m, p)
    result = execute_schedule(schedule, UnitRuntime())
    # VF of a microbatch never precedes the last stage's F of it.
    from repro.scheduling import Pass

    for mb in range(m):
        f_end = result.pass_times[Pass(PassType.F, mb, p - 1)][1]
        for d in range(p):
            assert result.pass_times[Pass(PassType.VF, mb, d)][0] >= f_end - 1e-9


@settings(max_examples=20, deadline=None)
@given(p=st.integers(1, 8), m=st.integers(1, 10), algorithm=st.sampled_from([1, 2]))
def test_makespan_monotone_in_microbatches(p, m, algorithm):
    """Adding a microbatch never shortens the iteration."""
    shorter = generate_1f1b_vocab(p, m, p, algorithm=algorithm)
    longer = generate_1f1b_vocab(p, m + 1, p, algorithm=algorithm)
    rt = UnitRuntime()
    assert (
        execute_schedule(longer, rt).iteration_time
        >= execute_schedule(shorter, rt).iteration_time - 1e-9
    )
