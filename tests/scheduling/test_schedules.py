"""Structural tests for schedule generation and validation."""

import dataclasses

import pytest

from repro.scheduling import (
    Pass,
    PassType,
    StageLayout,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_interlaced,
    generate_vhalf,
    generate_vhalf_vocab,
    uniform_layout,
)


class TestStageLayout:
    def test_single_chunk_identity_mapping(self):
        layout = uniform_layout(4, 8)
        for d in range(4):
            assert layout.stage_of(d, 0) == d
            assert layout.holder_of_stage(d) == (d, 0)

    def test_v_shape_mapping(self):
        layout = uniform_layout(4, 16, num_chunks=2)
        assert layout.stage_of(0, 0) == 0
        assert layout.stage_of(0, 1) == 7
        assert layout.stage_of(3, 0) == 3
        assert layout.stage_of(3, 1) == 4
        for s in range(8):
            d, c = layout.holder_of_stage(s)
            assert layout.stage_of(d, c) == s

    def test_baseline_vocab_placement(self):
        layout = uniform_layout(4, 8)
        assert layout.hosts_input(0, 0)
        assert layout.hosts_output(3, 0)
        assert not layout.hosts_output(0, 0)

    def test_vhalf_baseline_puts_both_embeddings_on_device_0(self):
        """The crux of Table 6's imbalance: stage 0 AND stage 2p-1 live
        on device 0 in the V-shape."""
        layout = uniform_layout(4, 16, num_chunks=2)
        assert layout.hosts_input(0, 0)
        assert layout.hosts_output(0, 1)

    def test_vocab_parallel_hosts_nothing(self):
        layout = uniform_layout(4, 8, vocab_parallel=True)
        assert not layout.hosts_input(0, 0)
        assert not layout.hosts_output(3, 0)

    def test_uneven_layers_rejected(self):
        with pytest.raises(ValueError):
            uniform_layout(4, 10)

    def test_missing_holders_rejected(self):
        with pytest.raises(ValueError):
            StageLayout(2, ((1,), (1,)), vocab_parallel=False)

    def test_total_layers(self):
        assert uniform_layout(4, 16, num_chunks=2).total_layers == 16


@pytest.mark.parametrize(
    "factory",
    [
        lambda: generate_1f1b(4, 12, num_layers=8),
        lambda: generate_1f1b_vocab(4, 12, 8, algorithm=1),
        lambda: generate_1f1b_vocab(4, 12, 8, algorithm=2),
        lambda: generate_interlaced(4, 12, 8),
        lambda: generate_vhalf(4, 12, 16),
        lambda: generate_vhalf_vocab(4, 12, 16, algorithm=1),
        lambda: generate_vhalf_vocab(4, 12, 16, algorithm=2),
    ],
    ids=["1f1b", "vocab1", "vocab2", "interlaced", "vhalf", "vhalf-v1", "vhalf-v2"],
)
class TestGeneratedSchedules:
    def test_validates(self, factory):
        factory().validate()  # also called inside, but be explicit

    def test_every_device_has_all_microbatches(self, factory):
        schedule = factory()
        for order in schedule.device_orders:
            fs = [p for p in order if p.type is PassType.F and p.chunk == 0]
            assert len(fs) == schedule.num_microbatches

    def test_f_before_b_per_microbatch_and_chunk(self, factory):
        schedule = factory()
        for order in schedule.device_orders:
            position = {p: i for i, p in enumerate(order)}
            for p in order:
                if p.type is PassType.B:
                    f = Pass(PassType.F, p.microbatch, p.device, p.chunk)
                    assert position[f] < position[p]


class TestValidationCatchesCorruption:
    def test_duplicate_pass(self):
        schedule = generate_1f1b(2, 4, num_layers=4)
        schedule.device_orders[0].append(schedule.device_orders[0][0])
        with pytest.raises(ValueError, match="duplicate"):
            schedule.validate()

    def test_wrong_device(self):
        schedule = generate_1f1b(2, 4, num_layers=4)
        schedule.device_orders[0][0] = Pass(PassType.F, 0, 1)
        with pytest.raises(ValueError, match="listed on device"):
            schedule.validate()

    def test_missing_pass(self):
        schedule = generate_1f1b(2, 4, num_layers=4)
        schedule.device_orders[1] = schedule.device_orders[1][:-1]
        with pytest.raises(ValueError, match="passes"):
            schedule.validate()

    def test_out_of_order_stream(self):
        schedule = generate_1f1b(2, 4, num_layers=4)
        order = schedule.device_orders[0]
        f_indices = [i for i, p in enumerate(order) if p.type is PassType.F]
        i, j = f_indices[0], f_indices[1]
        order[i], order[j] = order[j], order[i]
        with pytest.raises(ValueError, match="out of order"):
            schedule.validate()

    def test_unexpected_vocab_passes(self):
        schedule = generate_1f1b_vocab(2, 4, 4, algorithm=2)
        stripped = dataclasses.replace(schedule, vocab_algorithm=None)
        with pytest.raises(ValueError):
            stripped.validate()

    def test_bad_algorithm_value(self):
        schedule = generate_1f1b(2, 4, num_layers=4)
        bad = dataclasses.replace(schedule, vocab_algorithm=3)
        with pytest.raises(ValueError, match="vocab_algorithm"):
            bad.validate()


class TestGeneratorValidation:
    def test_vocab_algorithm_range(self):
        with pytest.raises(ValueError):
            generate_1f1b_vocab(4, 8, 8, algorithm=3)

    def test_vhalf_algorithm_range(self):
        with pytest.raises(ValueError):
            generate_vhalf_vocab(4, 8, 16, algorithm=0)

    def test_1f1b_needs_layers_or_layout(self):
        with pytest.raises(ValueError):
            generate_1f1b(4, 8)

    def test_layout_device_mismatch(self):
        layout = uniform_layout(4, 8)
        with pytest.raises(ValueError):
            generate_1f1b(8, 8, layout=layout)

    def test_metadata_contains_block(self):
        schedule = generate_1f1b_vocab(4, 8, 8, algorithm=1)
        assert "building_block" in schedule.metadata
