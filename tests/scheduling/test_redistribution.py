"""Tests for the Redis layer-redistribution baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelConfig
from repro.costmodel import output_layer_flops, transformer_layer_flops
from repro.scheduling import redistribute_layers


def _model(layers=32, hidden=3072, seq=2048, vocab=131072, heads=24):
    return ModelConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        seq_length=seq,
        vocab_size=vocab,
    )


class TestPlan:
    def test_layers_conserved(self):
        plan = redistribute_layers(_model(), 8)
        assert sum(plan.layers_per_stage) == 32

    def test_small_vocab_stays_nearly_uniform(self):
        plan = redistribute_layers(_model(vocab=8192), 8)
        assert max(plan.layers_per_stage) - min(plan.layers_per_stage) <= 1

    def test_large_vocab_strips_output_stage(self):
        """At 256k the output layer outweighs a whole uniform stage."""
        plan = redistribute_layers(_model(vocab=262144), 8)
        assert plan.layers_per_stage[-1] < 4

    def test_bottleneck_not_worse_than_uniform(self):
        model = _model(vocab=262144)
        plan = redistribute_layers(model, 8)
        t = transformer_layer_flops(model).total
        out = output_layer_flops(model).total
        uniform_bottleneck = 4 * t + out
        assert plan.bottleneck <= uniform_bottleneck

    def test_bottleneck_matches_costs(self):
        plan = redistribute_layers(_model(), 8)
        assert plan.bottleneck == max(plan.stage_costs)

    def test_layout_holders(self):
        layout = redistribute_layers(_model(), 8).layout()
        assert layout.input_holder == (0, 0)
        assert layout.output_holder == (7, 0)
        assert layout.total_layers == 32

    def test_imbalance_persists_with_coarse_granularity(self):
        """§2: even optimal redistribution cannot balance when the
        output layer alone exceeds the average stage load."""
        model = _model(vocab=262144)
        plan = redistribute_layers(model, 8)
        t = transformer_layer_flops(model).total
        out = output_layer_flops(model).total
        average = (32 * t + out) / 8
        assert plan.bottleneck > 1.2 * average

    def test_rejects_bad_devices(self):
        with pytest.raises(ValueError):
            redistribute_layers(_model(), 0)


class TestTieBreaking:
    def test_extra_layers_go_to_late_stages(self):
        """Memory-preserving tie-break: stage 0 never takes the spill."""
        model = _model(layers=64, hidden=5120, seq=4096, vocab=131072, heads=40)
        plan = redistribute_layers(model, 32)
        assert plan.layers_per_stage[0] <= 2


@settings(max_examples=40, deadline=None)
@given(
    layers=st.integers(4, 64),
    devices=st.integers(2, 16),
    vocab=st.sampled_from([8192, 32768, 131072, 262144]),
)
def test_plan_always_feasible_and_optimal_bound(layers, devices, vocab):
    """Property: the plan conserves layers and its bottleneck is a
    lower bound certified by the average-load argument."""
    model = ModelConfig(
        num_layers=layers,
        hidden_size=1024,
        num_attention_heads=8,
        seq_length=1024,
        vocab_size=vocab,
    )
    plan = redistribute_layers(model, devices)
    assert sum(plan.layers_per_stage) == layers
    assert len(plan.layers_per_stage) == devices
    assert all(count >= 0 for count in plan.layers_per_stage)
    t = transformer_layer_flops(model).total
    out = output_layer_flops(model).total
    total_work = layers * t + out  # input-layer FLOPs negligible
    assert plan.bottleneck >= total_work / devices * 0.999
    # And never worse than piling everything uniformly with the output
    # stage overloaded.
    per_stage = -(-layers // devices)
    assert plan.bottleneck <= per_stage * t + out + 1e-6 * t
