"""Tests for the building-block framework (paper §5.2, Qi et al. 2024)."""

import pytest

from repro.scheduling import BuildingBlock, PassSlot, PassType
from repro.scheduling.interlaced import build_interlaced_block
from repro.scheduling.onefoneb import build_1f1b_block, build_1f1b_vocab_block
from repro.scheduling.vhalf import build_vhalf_block


class TestAnalysis:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
    def test_1f1b_holds_p_microbatches_on_device_0(self, p):
        block = build_1f1b_block(p)
        assert block.activation_microbatches_ceil(0) == p

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_1f1b_memory_decreases_down_the_pipeline(self, p):
        block = build_1f1b_block(p)
        counts = [block.activation_microbatches_ceil(d) for d in range(p)]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 1

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_vocab_alg1_adds_two_microbatches(self, p):
        """Figure 10(a): Algorithm 1 needs p + 2 microbatches."""
        block = build_1f1b_vocab_block(p, algorithm=1)
        assert block.activation_microbatches_ceil(0) == p + 2

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_vocab_alg2_adds_one_microbatch(self, p):
        """Figure 10(b): Algorithm 2 needs p + 1 microbatches."""
        block = build_1f1b_vocab_block(p, algorithm=2)
        assert block.activation_microbatches_ceil(0) == p + 1

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_interlaced_is_1_5x(self, p):
        """Appendix B.1 / Figure 15: interlaced ≈ 1.5× of 1F1B's p."""
        block = build_interlaced_block(p)
        ratio = block.activation_microbatches_ceil(0) / p
        assert ratio == pytest.approx(1.5, abs=0.51 / p * 4)

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_vhalf_memory_uniform_and_below_1f1b(self, p):
        block = build_vhalf_block(p)
        counts = [block.activation_microbatches(d) for d in range(p)]
        # Balanced across devices (the schedule's raison d'être; the
        # greedy W-slot packing leaves up to half a microbatch of
        # wiggle)...
        assert max(counts) - min(counts) <= 0.55
        # ...and well under 1F1B's p on device 0.
        assert max(counts) < 0.62 * p

    @pytest.mark.parametrize("p", [4, 8])
    @pytest.mark.parametrize("barriers", [1, 2])
    def test_vhalf_vocab_adds_barrier_count(self, p, barriers):
        """Appendix D: the backward shift adds ≈ one microbatch of
        activations per communication barrier (W-packing jitter makes
        the per-device delta approximate at the block level; the exact
        discrete claim is validated on 1F1B in this module and end to
        end in tests/sim/test_claims.py)."""
        base = build_vhalf_block(p)
        vocab = build_vhalf_block(p, vocab_barriers=barriers, t_s=0.25, t_t=0.25)
        deltas = [
            vocab.activation_microbatches(d) - base.activation_microbatches(d)
            for d in range(p)
        ]
        mean_delta = sum(deltas) / p
        assert 0.2 <= mean_delta <= barriers + 1.0
        assert all(delta > 0 for delta in deltas)

    def test_interval_equals_per_device_work_for_vocab_block(self):
        block = build_1f1b_vocab_block(4, algorithm=2, include_input=False)
        for slots in block.slots:
            assert sum(s.duration for s in slots) == pytest.approx(block.interval)


class TestUnroll:
    def test_1f1b_order_matches_classic_pattern(self):
        block = build_1f1b_block(4)
        orders = block.unroll(8)
        device0 = [str(p) for p in orders[0][:10]]
        # Warmup of p forwards, then strict 1F1B alternation.
        assert device0 == [
            "F[0]@0", "F[1]@0", "F[2]@0", "F[3]@0",
            "B[0]@0", "F[4]@0", "B[1]@0", "F[5]@0", "B[2]@0", "F[6]@0",
        ]

    def test_last_device_alternates_immediately(self):
        block = build_1f1b_block(4)
        orders = block.unroll(6)
        device3 = [str(p) for p in orders[3][:4]]
        assert device3 == ["F[0]@3", "B[0]@3", "F[1]@3", "B[1]@3"]

    def test_each_stream_monotone(self):
        block = build_1f1b_vocab_block(4, algorithm=1)
        for order in block.unroll(12):
            for type_ in PassType:
                stream = [p.microbatch for p in order if p.type is type_]
                assert stream == sorted(stream)

    def test_pass_counts(self):
        block = build_1f1b_vocab_block(4, algorithm=2, include_input=True)
        for order in block.unroll(10):
            for type_ in (PassType.F, PassType.B, PassType.S, PassType.T,
                          PassType.IF, PassType.IB):
                assert sum(1 for p in order if p.type is type_) == 10

    def test_unroll_rejects_bad_m(self):
        with pytest.raises(ValueError):
            build_1f1b_block(4).unroll(0)


class TestValidation:
    def test_duplicate_slot_lookup_fails(self):
        slots = (
            (
                PassSlot(PassType.F, 0, 0.0, 1.0),
                PassSlot(PassType.F, 0, 1.0, 1.0),
            ),
        )
        block = BuildingBlock(1, 2.0, slots)
        with pytest.raises(ValueError):
            block.device_slot(0, PassType.F)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PassSlot(PassType.F, 0, 0.0, -1.0)

    def test_wrong_device_count_rejected(self):
        with pytest.raises(ValueError):
            BuildingBlock(2, 1.0, ((PassSlot(PassType.F, 0, 0.0, 1.0),),))

    def test_lifespan_uses_w_when_present(self):
        slots = (
            (
                PassSlot(PassType.F, 0, 0.0, 1.0),
                PassSlot(PassType.B, 0, 2.0, 1.0),
                PassSlot(PassType.W, 0, 5.0, 1.0),
            ),
        )
        block = BuildingBlock(1, 3.0, slots)
        assert block.lifespan(0) == pytest.approx(6.0)
