"""SIGTERM drain contract, proven against the real serve process.

The in-process shutdown path is covered elsewhere; this is the
operator-facing version: a ``kill <pid>`` (what systemd and container
runtimes send) must let in-flight work finish, flush it to the disk
cache, refuse new compute, and exit 0 — a non-zero exit means leaked
workers.
"""

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parents[2]

SMALL_PLAN = {
    "devices": 4,
    "vocab_size": "32k",
    "microbatches": 8,
    "simulate_top_k": 1,
}


def test_sigterm_drains_in_flight_flushes_cache_and_exits_zero(tmp_path):
    cache_dir = tmp_path / "plans"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--executor", "thread", "--port", "0",
            "--cache-dir", str(cache_dir),
            # Make the in-flight request measurably slow so the
            # SIGTERM reliably lands mid-computation.
            "--faults", "slow-worker:rate=1,delay_ms=1500",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        host = port = None
        deadline = time.monotonic() + 60
        for line in process.stdout:
            if line.startswith("serving on http://"):
                host, raw_port = line.strip().rsplit("/", 1)[1].split(":")
                port = int(raw_port)
                break
            assert time.monotonic() < deadline, "server never came up"
        assert port is not None, "server exited before its serving line"

        result = {}

        def slow_request():
            conn = http.client.HTTPConnection(host, port, timeout=120.0)
            try:
                conn.request("POST", "/v1/plan", body=json.dumps(SMALL_PLAN))
                response = conn.getresponse()
                result["status"] = response.status
                result["body"] = json.loads(response.read())
            except Exception as error:  # noqa: BLE001 - recorded, asserted on
                result["error"] = error
            finally:
                conn.close()

        client = threading.Thread(target=slow_request)
        client.start()
        time.sleep(0.4)  # let the request reach the compute tier
        process.send_signal(signal.SIGTERM)

        # New compute during the drain is refused (503 + Retry-After)
        # or the listener is already gone — never a hang, never a 200.
        try:
            conn = http.client.HTTPConnection(host, port, timeout=10.0)
            conn.request(
                "POST", "/v1/plan",
                body=json.dumps(dict(SMALL_PLAN, pass_overhead=1e-9)),
            )
            assert conn.getresponse().status == 503
            conn.close()
        except OSError:
            pass

        # The in-flight request drains to a real answer.
        client.join(timeout=60)
        assert not client.is_alive(), "in-flight request never completed"
        assert result.get("status") == 200, result
        assert result["body"]["result"]["best"] is not None

        # Exit 0: drained, workers joined, nothing leaked.
        assert process.wait(timeout=60) == 0

        # The drained computation was flushed to the disk tier before
        # exit — a restarted server would serve it as a disk hit.
        assert any(cache_dir.rglob("*.pkl")), (
            "drained plan never reached the disk cache"
        )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
