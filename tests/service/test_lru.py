"""The bounded LRU tier: capacity, eviction order, counters, keying."""

import pytest

from repro.service import LRUPlanTier


class TestBounds:
    def test_capacity_is_enforced(self):
        lru = LRUPlanTier(capacity=3)
        for i in range(10):
            lru.put(f"k{i}", i)
        assert len(lru) == 3
        assert lru.evictions == 7

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUPlanTier(capacity=0)
        with pytest.raises(ValueError):
            LRUPlanTier(capacity=-5)

    def test_put_existing_does_not_evict(self):
        lru = LRUPlanTier(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 3)  # refresh, not insert
        assert len(lru) == 2
        assert lru.evictions == 0
        assert lru.get("a") == 3


class TestEvictionOrder:
    def test_least_recently_used_goes_first(self):
        lru = LRUPlanTier(capacity=3)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert lru.get("a") == 1  # refresh a: b is now least recent
        lru.put("d", 4)
        assert "b" not in lru
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.get("d") == 4

    def test_put_refreshes_recency(self):
        lru = LRUPlanTier(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # a most recent; b evicts next
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 10

    def test_keys_ordered_least_to_most_recent(self):
        lru = LRUPlanTier(capacity=4)
        for key in ("a", "b", "c"):
            lru.put(key, key)
        lru.get("a")
        assert lru.keys() == ["b", "c", "a"]


class TestCounters:
    def test_hit_miss_eviction_counters(self):
        lru = LRUPlanTier(capacity=1)
        assert lru.get("x") is None
        lru.put("x", 1)
        assert lru.get("x") == 1
        lru.put("y", 2)  # evicts x
        assert lru.get("x") is None
        stats = lru.stats()
        assert stats == {
            "capacity": 1,
            "size": 1,
            "hits": 1,
            "misses": 2,
            "evictions": 1,
        }

    def test_contains_does_not_touch_counters_or_recency(self):
        lru = LRUPlanTier(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert "a" in lru
        lru.put("c", 3)  # a is still least recent despite the `in`
        assert "a" not in lru
        assert lru.misses == 0

    def test_clear_resets_everything(self):
        lru = LRUPlanTier(capacity=2)
        lru.put("a", 1)
        lru.get("a")
        lru.get("zz")
        lru.clear()
        assert len(lru) == 0
        assert lru.stats()["hits"] == 0
        assert lru.stats()["misses"] == 0
