"""The versioned response envelope shared by every ``/v1/*`` endpoint.

Success bodies are ``{"api_version", "result", "meta"}`` with
``meta = {digest, cache, timings}``; error bodies are
``{"api_version", "error": {code, message, hint, ...}}``.  The legacy
control endpoints (``/healthz``, ``/stats``, ``/shutdown``) stay
unversioned for monitoring compatibility.
"""

import http.client
import json

import pytest

from repro.api import API_VERSION
from repro.service import PlanningService, ServiceThread

BASE = {"devices": 4, "vocab_size": "32k", "microbatches": 8}

#: (path, minimal valid payload) for every planning endpoint.
ENDPOINTS = [
    ("/v1/plan", dict(BASE, simulate_top_k=1)),
    (
        "/v1/sweep",
        {
            "devices": [4],
            "vocab_sizes": ["32k"],
            "microbatches": [8],
            "simulate_top_k": 1,
        },
    ),
    (
        "/v1/scenarios",
        dict(BASE, scenario="slow-node", method="vocab-1", samples=4),
    ),
    (
        "/v1/whatif",
        dict(BASE, method="vocab-1", device=0, factor=1.5),
    ),
    ("/v1/optimize", dict(BASE, budget=16, seed=0)),
]


def request_json(service, method, path, payload=None, timeout=240.0):
    conn = http.client.HTTPConnection(
        service.host, service.port, timeout=timeout
    )
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def live():
    service = PlanningService(port=0, executor="thread", lru_size=32)
    with ServiceThread(service) as running:
        yield running


class TestSuccessEnvelope:
    @pytest.mark.parametrize(
        "path,payload", ENDPOINTS, ids=[p for p, _ in ENDPOINTS]
    )
    def test_shape(self, live, path, payload):
        status, body = request_json(live, "POST", path, payload)
        assert status == 200
        assert set(body) == {"api_version", "result", "meta"}
        assert body["api_version"] == API_VERSION
        meta = body["meta"]
        assert set(meta) == {"digest", "cache", "timings"}
        assert isinstance(meta["digest"], str) and meta["digest"]
        assert meta["cache"] in ("computed", "lru", "disk", "coalesced")
        assert meta["timings"]["total_ms"] >= 0
        assert body["result"] is not None

    @pytest.mark.parametrize(
        "path,payload", ENDPOINTS, ids=[p for p, _ in ENDPOINTS]
    )
    def test_identity_is_digest_plus_result(self, live, path, payload):
        # meta.timings varies per request: identity checks compare
        # meta.digest + result, never raw bytes.
        _, first = request_json(live, "POST", path, payload)
        _, second = request_json(live, "POST", path, payload)
        assert first["meta"]["digest"] == second["meta"]["digest"]
        assert first["result"] == second["result"]


class TestErrorEnvelope:
    def assert_error(self, body, code):
        assert set(body) == {"api_version", "error"}
        assert body["api_version"] == API_VERSION
        error = body["error"]
        assert error["code"] == code
        assert isinstance(error["message"], str) and error["message"]
        assert "hint" in error

    @pytest.mark.parametrize("path", [p for p, _ in ENDPOINTS])
    def test_bad_request(self, live, path):
        status, body = request_json(live, "POST", path, {"bogus": 1})
        assert status == 400
        self.assert_error(body, "bad_request")

    def test_method_not_allowed(self, live):
        status, body = request_json(live, "GET", "/v1/plan")
        assert status == 405
        self.assert_error(body, "method_not_allowed")
        assert body["error"]["allowed"] == ["POST"]

    def test_not_found_lists_routes(self, live):
        status, body = request_json(live, "GET", "/nope")
        assert status == 404
        self.assert_error(body, "not_found")
        assert {"method": "POST", "path": "/v1/optimize"} in (
            body["error"]["routes"]
        )

    def test_malformed_json(self, live):
        conn = http.client.HTTPConnection(live.host, live.port, timeout=30)
        try:
            conn.request("POST", "/v1/plan", body="{not json")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            self.assert_error(body, "bad_request")
        finally:
            conn.close()


class TestLegacyEndpointsUnversioned:
    def test_healthz_and_stats_keep_their_shape(self, live):
        for path in ("/healthz", "/stats"):
            status, body = request_json(live, "GET", path)
            assert status == 200
            assert "api_version" not in body

    def test_shutdown_is_byte_compatible(self):
        service = PlanningService(port=0, executor="thread")
        with ServiceThread(service) as running:
            status, body = request_json(running, "POST", "/shutdown")
            assert status == 200
            assert body == {"status": "shutting-down"}
