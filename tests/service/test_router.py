"""Fleet router: routing keys, the hash ring, failover, hedging.

Unit tests cover the pure pieces (routing key normalization, ring
placement, the latency window).  HTTP-level tests run a real
:class:`FleetRouter` in a thread over two thread-executor
:class:`ServiceThread` shards — no subprocesses, so failures here
bisect to router logic.  The full supervisor (spawn, crash-restart,
rolling restart) is covered by ``tests/service/test_fleet.py`` and
CI's fleet-chaos-smoke job.
"""

import asyncio
import contextlib
import http.client
import json
import socket
import threading
import time

import pytest

from repro import faultinject
from repro.service import PlanningService, ServiceThread
from repro.service.router import (
    DOWN,
    DRAINING,
    UP,
    FleetRouter,
    HashRing,
    LatencyWindow,
    ShardState,
    routing_key,
)

SMALL_PLAN = {
    "devices": 4,
    "vocab_size": "32k",
    "microbatches": 8,
    "simulate_top_k": 1,
}


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset()
    yield
    faultinject.reset()


def request_raw(server, method, path, payload=None, timeout=120.0):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, json.loads(response.read()), headers
    finally:
        conn.close()


class TestRoutingKey:
    def test_semantic_payloads_share_a_key(self):
        # The routing key is the shard's own cache digest, so spelling
        # variants and the deadline knob land on the same shard (and
        # the same cache entry).
        base = routing_key("/v1/plan", json.dumps(SMALL_PLAN).encode())
        variant = dict(SMALL_PLAN, vocab_size=32768, deadline_ms=500)
        assert routing_key("/v1/plan", json.dumps(variant).encode()) == base

    def test_paths_do_not_collide(self):
        body = json.dumps(SMALL_PLAN).encode()
        assert routing_key("/v1/plan", body) != routing_key(
            "/v1/whatif", body
        )

    def test_invalid_body_is_still_deterministic(self):
        first = routing_key("/v1/plan", b"not json at all")
        assert routing_key("/v1/plan", b"not json at all") == first
        assert routing_key("/v1/plan", b"other garbage") != first


class TestHashRing:
    def test_order_is_deterministic_and_covers_all_nodes(self):
        nodes = ["shard-0", "shard-1", "shard-2"]
        ring = HashRing(nodes)
        again = HashRing(list(nodes))
        for i in range(50):
            order = ring.order(f"key-{i}")
            assert order == again.order(f"key-{i}")
            assert sorted(order) == sorted(nodes)

    def test_keys_spread_over_shards(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        homes = {ring.order(f"key-{i}")[0] for i in range(200)}
        assert homes == {"shard-0", "shard-1", "shard-2"}

    def test_removing_a_node_only_moves_its_keys(self):
        # Consistent hashing's point: keys not homed on the removed
        # node keep their home (so caches stay warm through failover).
        full = HashRing(["shard-0", "shard-1", "shard-2"])
        reduced = HashRing(["shard-0", "shard-1"])
        for i in range(200):
            key = f"key-{i}"
            home = full.order(key)[0]
            if home != "shard-2":
                assert reduced.order(key)[0] == home
            else:
                # Evicted keys land on their ring successor.
                assert reduced.order(key)[0] == full.order(key)[1]

    def test_empty_ring_is_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestLatencyWindow:
    def test_empty_window_has_no_p95(self):
        assert LatencyWindow().p95() is None

    def test_nearest_rank_p95(self):
        window = LatencyWindow(size=100)
        for ms in range(1, 101):
            window.record(ms / 1000.0)
        assert LatencyWindow(size=100).p95() is None
        assert window.p95() == pytest.approx(0.095)

    def test_window_is_bounded(self):
        window = LatencyWindow(size=4)
        for value in (10.0, 10.0, 10.0, 10.0, 0.001, 0.002, 0.003, 0.004):
            window.record(value)
        # The four old 10 s outliers have been overwritten.
        assert window.p95() == pytest.approx(0.004)


@contextlib.contextmanager
def live_fleet(**router_kwargs):
    """Two thread-executor shards behind a threaded FleetRouter.

    The default hedge window is pushed out to 30 s so plan compute
    (hundreds of ms) never trips an accidental hedge — hedging tests
    opt in with an explicit tight window.
    """
    router_kwargs.setdefault("hedge_min_ms", 30000.0)
    router_kwargs.setdefault("hedge_max_ms", 60000.0)
    with contextlib.ExitStack() as stack:
        running = [
            stack.enter_context(
                ServiceThread(
                    PlanningService(port=0, executor="thread", lru_size=32)
                )
            )
            for _ in range(2)
        ]
        shards = [
            ShardState(
                shard_id=f"shard-{i}", host=live.host, port=live.port,
                state=UP,
            )
            for i, live in enumerate(running)
        ]
        router = FleetRouter(shards, port=0, **router_kwargs)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                router.serve_async(ready=lambda _: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(10), "router never came up"
        try:
            yield router, shards, running
        finally:
            router.request_shutdown()
            thread.join(timeout=15)
            assert not thread.is_alive(), "router thread leaked"


def payload_homed_on(router, shard_id, path="/v1/plan"):
    """A small plan payload whose ring home is ``shard_id``."""
    for i in range(256):
        payload = dict(SMALL_PLAN, pass_overhead=(i + 1) * 1e-9)
        key = routing_key(path, json.dumps(payload).encode())
        if router.ring.order(key)[0] == shard_id:
            return payload
    raise AssertionError(f"no payload homed on {shard_id}")


class TestRouterOverLiveShards:
    def test_routes_to_the_home_shard_and_reuses_its_cache(self):
        with live_fleet() as (router, shards, _):
            payload = payload_homed_on(router, "shard-0")
            status, first, _ = request_raw(router, "POST", "/v1/plan", payload)
            assert status == 200
            status, second, _ = request_raw(
                router, "POST", "/v1/plan", payload
            )
            assert status == 200
            # Same home shard both times: the repeat is its LRU hit.
            assert second["meta"]["cache"] == "lru"
            assert second["meta"]["digest"] == first["meta"]["digest"]
            assert shards[0].requests == 2
            assert shards[1].requests == 0

    def test_healthz_and_stats_expose_per_shard_state(self):
        with live_fleet() as (router, shards, _):
            status, health, _ = request_raw(router, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["shards_up"] == 2
            assert health["shards"] == {"shard-0": UP, "shard-1": UP}

            request_raw(
                router, "POST", "/v1/plan",
                payload_homed_on(router, "shard-1"),
            )
            status, stats, _ = request_raw(router, "GET", "/stats")
            assert status == 200
            fleet = stats["fleet"]
            assert set(fleet["shards"]) == {"shard-0", "shard-1"}
            snap = fleet["shards"]["shard-1"]
            for field in (
                "state", "restarts", "requests", "failures", "failovers",
                "hedges_fired", "hedge_wins", "breaker", "p95_s",
            ):
                assert field in snap
            assert snap["requests"] == 1
            assert snap["breaker"]["state"] == "closed"
            assert snap["p95_s"] > 0.0
            # Shard counters are aggregated across the fleet.
            assert stats["computed"] == 1

    def test_down_home_fails_over_to_the_successor(self):
        with live_fleet() as (router, shards, _):
            payload = payload_homed_on(router, "shard-0")
            shards[0].state = DOWN
            status, body, _ = request_raw(router, "POST", "/v1/plan", payload)
            assert status == 200
            assert body["result"]["best"] is not None
            assert shards[0].failovers == 1
            assert shards[1].requests == 1
            assert router.errors == 0

    def test_draining_home_is_skipped_without_breaker_penalty(self):
        with live_fleet() as (router, shards, _):
            payload = payload_homed_on(router, "shard-1")
            shards[1].state = DRAINING
            status, _, _ = request_raw(router, "POST", "/v1/plan", payload)
            assert status == 200
            assert shards[1].failovers == 1
            assert shards[1].breaker.state == "closed"

    def test_dead_port_trips_breaker_and_fails_over(self):
        with live_fleet() as (router, shards, _):
            # Point shard-0 at a port nothing listens on: still marked
            # "up" (the supervisor has not noticed yet), so the router
            # discovers the failure on the wire.
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
            probe.close()
            shards[0].port = dead_port
            payload = payload_homed_on(router, "shard-0")
            status, _, _ = request_raw(router, "POST", "/v1/plan", payload)
            assert status == 200
            assert shards[0].failures >= 1
            assert shards[0].failovers >= 1
            assert shards[0].breaker.state == "open"
            assert router.errors == 0

    def test_all_shards_down_is_503_with_retry_after(self):
        with live_fleet() as (router, shards, _):
            for shard in shards:
                shard.state = DOWN
            status, body, headers = request_raw(
                router, "POST", "/v1/plan", SMALL_PLAN
            )
            assert status == 503
            assert body["error"]["code"] == "no_shard_available"
            assert "no shard available" in body["error"]["message"]
            assert int(headers["retry-after"]) >= 1
            assert router.unrouted == 1

    def test_slow_shard_fault_fires_a_winning_hedge(self):
        faultinject.install("slow-shard:rate=1,delay_ms=600")
        with live_fleet(hedge_min_ms=40.0, hedge_max_ms=80.0) as (
            router, shards, _,
        ):
            payload = payload_homed_on(router, "shard-0")
            started = time.monotonic()
            status, body, _ = request_raw(router, "POST", "/v1/plan", payload)
            elapsed = time.monotonic() - started
            assert status == 200
            assert body["result"]["best"] is not None
            assert shards[0].hedges_fired == 1
            assert shards[0].hedge_wins == 1
            assert shards[1].requests == 1  # the hedge ran there
            # The hedge answered well before the injected 600 ms delay
            # plus the compute would have.
            assert elapsed < 60.0

    def test_admin_restart_maps_accepted_to_200_and_busy_to_409(self):
        calls = []

        def on_restart():
            calls.append(True)
            if len(calls) == 1:
                return True, "rolling restart started"
            return False, "rolling restart already in progress"

        with live_fleet() as (router, _, __):
            router.on_restart = on_restart
            status, body, _ = request_raw(router, "POST", "/admin/restart")
            assert status == 200
            assert body["status"] == "rolling restart started"
            status, body, _ = request_raw(router, "POST", "/admin/restart")
            assert status == 409
            assert "in progress" in body["status"]

    def test_method_and_route_errors(self):
        with live_fleet() as (router, _, __):
            status, body, _ = request_raw(router, "GET", "/v1/plan")
            assert status == 405
            assert body["error"]["allowed"] == ["POST"]
            status, body, _ = request_raw(router, "GET", "/nope")
            assert status == 404
            assert {"method": "POST", "path": "/v1/plan"} in body["error"]["routes"]
            assert {"method": "POST", "path": "/admin/restart"} in (
                body["error"]["routes"]
            )
