"""Contract tests for ``POST /v1/whatif``: validation, digests, tiers.

Mirrors the ``/v1/plan`` contract: strict request validation (unknown
fields are a 400, never silently ignored), the request digest is the
planner's own what-if cache key, concurrent duplicates coalesce into
one computation with bit-identical bodies, and every tier shows up in
``GET /stats``.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.service import (
    PlanningService,
    RequestError,
    ServiceThread,
    WhatifRequest,
    execute_whatif_request,
)


def request_json(service, method, path, payload=None, timeout=120.0):
    conn = http.client.HTTPConnection(service.host, service.port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def small_whatif_payload(**overrides) -> dict:
    payload = {
        "devices": 4,
        "vocab_size": "32k",
        "microbatches": 8,
        "method": "vocab-1",
        "device": -1,
        "factor": 1.3,
    }
    payload.update(overrides)
    return payload


class TestWhatifValidation:
    def test_minimal_payload_parses(self):
        request = WhatifRequest.from_payload(small_whatif_payload())
        assert request.devices == 4
        assert request.vocab_size == 32 * 1024
        assert request.seq_length == 2048  # default
        assert request.device == -1
        assert request.factor == 1.3

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="frobnicate"):
            WhatifRequest.from_payload(small_whatif_payload(frobnicate=1))

    def test_missing_required_fields(self):
        for missing in ("devices", "vocab_size", "method", "device", "factor"):
            payload = small_whatif_payload()
            del payload[missing]
            with pytest.raises(RequestError, match=missing):
                WhatifRequest.from_payload(payload)

    def test_type_and_range_errors(self):
        with pytest.raises(RequestError, match="'device' must be int"):
            WhatifRequest.from_payload(small_whatif_payload(device="last"))
        with pytest.raises(RequestError, match="'factor' must be"):
            WhatifRequest.from_payload(small_whatif_payload(factor="slow"))
        with pytest.raises(RequestError, match="must be positive"):
            WhatifRequest.from_payload(small_whatif_payload(factor=0))
        # bool is not an int here, even though Python says it is.
        with pytest.raises(RequestError, match="'device'"):
            WhatifRequest.from_payload(small_whatif_payload(device=True))

    def test_device_out_of_range(self):
        with pytest.raises(RequestError, match=r"device must be in \[-4, 4\)"):
            WhatifRequest.from_payload(small_whatif_payload(device=4))
        with pytest.raises(RequestError, match="device"):
            WhatifRequest.from_payload(small_whatif_payload(device=-5))

    def test_unknown_method_and_scenario(self):
        with pytest.raises(RequestError, match="unknown method"):
            WhatifRequest.from_payload(small_whatif_payload(method="nope"))
        with pytest.raises(RequestError, match="unknown scenario"):
            WhatifRequest.from_payload(small_whatif_payload(scenario="nope"))

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            WhatifRequest.from_payload([1, 2, 3])


class TestWhatifDigest:
    def test_digest_matches_planner_cache_key(self):
        """The normative tiered-cache property: the request digest is
        exactly the key the planner stamps on its WhatifResult."""
        request = WhatifRequest.from_payload(small_whatif_payload())
        result = execute_whatif_request(request)
        assert request.digest() == result["cache_key"]

    def test_digest_matches_planner_cache_key_with_scenario(self):
        request = WhatifRequest.from_payload(
            small_whatif_payload(scenario="slow-node")
        )
        result = execute_whatif_request(request)
        assert request.digest() == result["cache_key"]

    def test_negative_device_normalizes(self):
        last = WhatifRequest.from_payload(small_whatif_payload(device=-1))
        explicit = WhatifRequest.from_payload(small_whatif_payload(device=3))
        assert last.digest() == explicit.digest()

    def test_digest_keyed_on_perturbation(self):
        base = WhatifRequest.from_payload(small_whatif_payload())
        device = WhatifRequest.from_payload(small_whatif_payload(device=0))
        factor = WhatifRequest.from_payload(small_whatif_payload(factor=2.0))
        method = WhatifRequest.from_payload(
            small_whatif_payload(method="baseline")
        )
        assert len(
            {base.digest(), device.digest(), factor.digest(), method.digest()}
        ) == 4

    def test_digest_keyed_on_scenario_signature(self):
        nominal = WhatifRequest.from_payload(small_whatif_payload())
        slow = WhatifRequest.from_payload(
            small_whatif_payload(scenario="slow-node")
        )
        assert nominal.digest() != slow.digest()


class TestWhatifEndpoint:
    @pytest.fixture(scope="class")
    def live(self):
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as running:
            yield running

    def test_computed_then_lru(self, live):
        payload = small_whatif_payload()
        status, first = request_json(live, "POST", "/v1/whatif", payload)
        assert status == 200
        assert first["api_version"] == 1
        assert first["meta"]["cache"] in ("computed", "lru")
        body = first["result"]
        assert body["cache_key"] == first["meta"]["digest"]
        assert body["whatif_time"] > body["baseline_time"]
        assert body["slowdown"] > 1.0
        assert body["support"] > 0
        status, second = request_json(live, "POST", "/v1/whatif", payload)
        assert status == 200
        assert second["meta"]["cache"] == "lru"
        assert second["result"] == body

    def test_unknown_field_is_400(self, live):
        status, body = request_json(
            live, "POST", "/v1/whatif", small_whatif_payload(bogus=1)
        )
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_speedup_factor_below_one(self, live):
        status, body = request_json(
            live, "POST", "/v1/whatif",
            small_whatif_payload(device=0, factor=0.5),
        )
        assert status == 200
        assert body["result"]["slowdown"] <= 1.0

    def test_stats_counters(self, live):
        request_json(live, "POST", "/v1/whatif", small_whatif_payload())
        status, stats = request_json(live, "GET", "/stats")
        assert status == 200
        assert stats["requests"]["/v1/whatif"] >= 1
        assert stats["computed"] >= 1
        assert stats["lru"]["hits"] >= 1


class TestWhatifCoalescing:
    def test_concurrent_duplicates_coalesce(self):
        """K concurrent identical what-ifs run exactly one computation
        and every caller receives a bit-identical body."""
        service = PlanningService(port=0, executor="thread")
        payload = small_whatif_payload(seq_length=1024)

        async def gather():
            return await asyncio.gather(
                *[service._post_whatif(payload) for _ in range(5)]
            )

        results = asyncio.run(gather())
        assert service.stats.computed == 1
        assert service.stats.coalesced == 4
        tiers = sorted(r["meta"]["cache"] for r in results)
        assert tiers == ["coalesced"] * 4 + ["computed"]
        bodies = {json.dumps(r["result"], sort_keys=True) for r in results}
        assert len(bodies) == 1

    def test_coalesced_over_http_burst(self):
        service = PlanningService(port=0, executor="thread")
        with ServiceThread(service) as live:
            payload = small_whatif_payload(seq_length=512)
            barrier = threading.Barrier(4)
            results = []
            lock = threading.Lock()

            def worker():
                barrier.wait()
                result = request_json(live, "POST", "/v1/whatif", payload)
                with lock:
                    results.append(result)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(status == 200 for status, _ in results)
            assert service.stats.computed == 1
            bodies = {
                json.dumps(body["result"], sort_keys=True)
                for _, body in results
            }
            assert len(bodies) == 1

    def test_distinct_requests_do_not_coalesce(self):
        service = PlanningService(port=0, executor="thread")
        a = small_whatif_payload()
        b = small_whatif_payload(factor=2.0)

        async def gather():
            return await asyncio.gather(
                service._post_whatif(a), service._post_whatif(b)
            )

        results = asyncio.run(gather())
        assert service.stats.computed == 2
        assert service.stats.coalesced == 0
        assert results[0]["meta"]["digest"] != results[1]["meta"]["digest"]


class TestWhatifDiskTier:
    def test_disk_tier_survives_restart(self, tmp_path):
        cache_dir = str(tmp_path / "plans")
        payload = small_whatif_payload()
        first = PlanningService(port=0, executor="thread", cache_dir=cache_dir)
        result = asyncio.run(first._post_whatif(payload))
        assert result["meta"]["cache"] == "computed"

        # A fresh service instance (cold LRU) finds the entry on disk.
        second = PlanningService(
            port=0, executor="thread", cache_dir=cache_dir
        )
        again = asyncio.run(second._post_whatif(payload))
        assert again["meta"]["cache"] == "disk"
        assert again["result"] == result["result"]
        assert second.stats.computed == 0
        third = asyncio.run(second._post_whatif(payload))
        assert third["meta"]["cache"] == "lru"
