"""Fleet supervisor end-to-end: crash recovery and rolling restarts.

One subprocess test walks the whole lifecycle — spawn two shards,
serve through the router, SIGKILL a shard and watch the supervisor
restart it, roll the fleet via ``POST /admin/restart``, shut down
clean — because each subprocess spawn costs seconds.  The
fault-injected variant (kill-shard/hang-shard/slow-shard under load,
oracle comparison) is CI's fleet-chaos-smoke job via
``tools/loadtest_service.py --chaos --fleet 2``.
"""

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.service.fleet import FleetSupervisor

REPO = pathlib.Path(__file__).resolve().parents[2]

SMALL_PLAN = {
    "devices": 4,
    "vocab_size": "32k",
    "microbatches": 8,
    "simulate_top_k": 1,
}


def request_json(host, port, method, path, payload=None, timeout=60.0):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def spawn_fleet(*extra_args):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_FAULTS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--fleet", "2", "--executor", "thread", "--port", "0",
            "--probe-interval", "0.2", "--restart-backoff", "0.2",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    for line in process.stdout:
        if line.startswith("serving on http://"):
            host, port = line.strip().rsplit("/", 1)[1].split(":")
            return process, host, int(port)
        if time.monotonic() > deadline:
            break
    process.kill()
    raise AssertionError("fleet never printed its serving line")


def shard_snapshots(host, port):
    status, stats = request_json(host, port, "GET", "/stats")
    assert status == 200
    return stats["fleet"]["shards"]


class TestSupervisorValidation:
    def test_fleet_size_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetSupervisor(0)

    def test_probe_and_backoff_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetSupervisor(2, probe_interval_s=0.0)
        with pytest.raises(ValueError):
            FleetSupervisor(2, restart_backoff_s=0.0)


class TestFleetLifecycle:
    def test_crash_restart_rolling_restart_and_clean_shutdown(self):
        process, host, port = spawn_fleet()
        try:
            status, health = request_json(host, port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["shards_up"] == 2

            status, body = request_json(
                host, port, "POST", "/v1/plan", SMALL_PLAN
            )
            assert status == 200
            assert body["result"]["best"] is not None

            # Kill one shard out from under the supervisor.  The
            # monitor must declare it dead and restart it; the router
            # keeps answering from the survivor meanwhile.
            shards = shard_snapshots(host, port)
            victim, snap = sorted(shards.items())[0]
            os.kill(snap["pid"], signal.SIGKILL)

            status, body = request_json(
                host, port, "POST", "/v1/plan",
                dict(SMALL_PLAN, pass_overhead=1e-9),
            )
            assert status == 200

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                shards = shard_snapshots(host, port)
                if (
                    shards[victim]["restarts"] >= 1
                    and shards[victim]["state"] == "up"
                ):
                    break
                time.sleep(0.2)
            assert shards[victim]["restarts"] >= 1, shards
            assert shards[victim]["state"] == "up", shards
            assert shards[victim]["pid"] != snap["pid"]

            # Rolling restart: every shard cycles exactly once more,
            # one at a time, and the fleet ends fully up.
            before = {
                shard_id: snap["restarts"]
                for shard_id, snap in shards.items()
            }
            status, body = request_json(host, port, "POST", "/admin/restart")
            assert status == 200

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                shards = shard_snapshots(host, port)
                if all(
                    snap["restarts"] == before[shard_id] + 1
                    and snap["state"] == "up"
                    for shard_id, snap in shards.items()
                ):
                    break
                time.sleep(0.2)
            for shard_id, snap in shards.items():
                assert snap["restarts"] == before[shard_id] + 1, shards
                assert snap["state"] == "up", shards

            # The rolled fleet still serves.
            status, body = request_json(
                host, port, "POST", "/v1/plan",
                dict(SMALL_PLAN, pass_overhead=2e-9),
            )
            assert status == 200

            status, body = request_json(host, port, "POST", "/shutdown")
            assert status == 200
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
