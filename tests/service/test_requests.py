"""Request validation and digest normalization of the service layer."""

import pytest

from repro.service import (
    MAX_SWEEP_POINTS,
    PlanRequest,
    RequestError,
    ScenarioRequest,
    SweepRequest,
    execute_plan_request,
)


def small_plan_payload(**overrides) -> dict:
    payload = {
        "devices": 4,
        "vocab_size": "32k",
        "microbatches": 8,
        "simulate_top_k": 1,
    }
    payload.update(overrides)
    return payload


class TestPlanValidation:
    def test_minimal_payload_parses(self):
        request = PlanRequest.from_payload(small_plan_payload())
        assert request.devices == 4
        assert request.vocab_size == 32 * 1024
        assert request.seq_length == 2048  # default
        assert request.simulate_top_k == 1

    def test_vocab_accepts_int_and_k_suffix(self):
        a = PlanRequest.from_payload(small_plan_payload(vocab_size=32768))
        b = PlanRequest.from_payload(small_plan_payload(vocab_size="32K"))
        assert a.vocab_size == b.vocab_size == 32768
        with pytest.raises(RequestError, match="vocabulary size"):
            PlanRequest.from_payload(small_plan_payload(vocab_size="huge"))

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="frobnicate"):
            PlanRequest.from_payload(small_plan_payload(frobnicate=1))

    def test_missing_required_fields(self):
        with pytest.raises(RequestError, match="devices"):
            PlanRequest.from_payload({"vocab_size": "32k"})

    def test_type_errors_rejected(self):
        with pytest.raises(RequestError, match="'devices' must be int"):
            PlanRequest.from_payload(small_plan_payload(devices="8"))
        # bool is not an int here, even though Python says it is.
        with pytest.raises(RequestError, match="'devices'"):
            PlanRequest.from_payload(small_plan_payload(devices=True))
        with pytest.raises(RequestError, match="must be positive"):
            PlanRequest.from_payload(small_plan_payload(devices=0))

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            PlanRequest.from_payload([1, 2, 3])

    def test_unknown_method_and_scenario(self):
        with pytest.raises(RequestError, match="unknown method"):
            PlanRequest.from_payload(small_plan_payload(methods=["nope"]))
        with pytest.raises(RequestError, match="unknown scenario"):
            PlanRequest.from_payload(small_plan_payload(scenario="nope"))

    def test_top_k_all(self):
        request = PlanRequest.from_payload(
            small_plan_payload(simulate_top_k="all")
        )
        assert request.simulate_top_k is None
        with pytest.raises(RequestError, match="simulate_top_k"):
            PlanRequest.from_payload(small_plan_payload(simulate_top_k="most"))

    def test_robustness_requires_scenario(self):
        with pytest.raises(RequestError, match="requires a 'scenario'"):
            PlanRequest.from_payload(small_plan_payload(robustness="p95"))

    def test_robustness_object_form(self):
        request = PlanRequest.from_payload(
            small_plan_payload(
                scenario="high-jitter",
                robustness={"rank_by": "p50", "samples": 16},
            )
        )
        assert request.robustness.rank_by == "p50"
        assert request.robustness.samples == 16
        with pytest.raises(RequestError, match="robustness"):
            PlanRequest.from_payload(
                small_plan_payload(
                    scenario="high-jitter", robustness={"quantile": "p95"}
                )
            )


class TestPlanDigest:
    def test_digest_matches_planner_cache_key(self):
        """The normative property of the tiered cache: the request's
        digest is exactly the key plan() stores its result under."""
        request = PlanRequest.from_payload(small_plan_payload())
        plans = execute_plan_request(request)
        assert request.digest() == plans.cache_key

    def test_digest_matches_planner_cache_key_with_scenario(self):
        request = PlanRequest.from_payload(
            small_plan_payload(scenario="slow-node")
        )
        plans = execute_plan_request(request)
        assert request.digest() == plans.cache_key

    def test_digest_is_deterministic_across_instances(self):
        a = PlanRequest.from_payload(small_plan_payload())
        b = PlanRequest.from_payload(small_plan_payload(vocab_size=32768))
        assert a.digest() == b.digest()

    def test_digest_keyed_on_scenario_signature(self):
        nominal = PlanRequest.from_payload(small_plan_payload())
        slow = PlanRequest.from_payload(small_plan_payload(scenario="slow-node"))
        jitter = PlanRequest.from_payload(
            small_plan_payload(scenario="high-jitter")
        )
        assert len({nominal.digest(), slow.digest(), jitter.digest()}) == 3

    def test_redefined_scenario_changes_digest(self):
        """Same name, different definition => different digest: the
        digest carries the full scenario signature, not the name."""
        import dataclasses

        from repro.scenarios import get_scenario
        from repro.scenarios.registry import _REGISTRY

        request = PlanRequest.from_payload(
            small_plan_payload(scenario="slow-node")
        )
        before = request.digest()
        original = get_scenario("slow-node")
        try:
            _REGISTRY["slow-node"] = dataclasses.replace(
                original, slow_node_speed=original.slow_node_speed / 2
            )
            assert request.digest() != before
        finally:
            _REGISTRY["slow-node"] = original

    def test_binding_knobs_change_digest(self):
        base = PlanRequest.from_payload(small_plan_payload())
        budget = PlanRequest.from_payload(
            small_plan_payload(memory_budget_gib=40.0)
        )
        overhead = PlanRequest.from_payload(
            small_plan_payload(pass_overhead=1e-3)
        )
        assert len({base.digest(), budget.digest(), overhead.digest()}) == 3


class TestSweepValidation:
    def test_expansion_and_defaults(self):
        request = SweepRequest.from_payload(
            {"devices": [4, 8], "vocab_sizes": ["32k", "64k"]}
        )
        assert len(request.points()) == 4
        assert request.seq_lengths == (2048,)

    def test_point_cap(self):
        with pytest.raises(RequestError, match=str(MAX_SWEEP_POINTS)):
            SweepRequest.from_payload(
                {
                    "devices": list(range(4, 4 + 40)),
                    "vocab_sizes": ["32k"] * 20,
                }
            )

    def test_bad_axis_values(self):
        with pytest.raises(RequestError, match="positive integers"):
            SweepRequest.from_payload(
                {"devices": [4, -1], "vocab_sizes": ["32k"]}
            )
        with pytest.raises(RequestError, match="non-empty"):
            SweepRequest.from_payload({"devices": [], "vocab_sizes": ["32k"]})

    def test_digest_depends_on_grid_and_constraints(self):
        a = SweepRequest.from_payload(
            {"devices": [4], "vocab_sizes": ["32k"]}
        )
        b = SweepRequest.from_payload(
            {"devices": [4], "vocab_sizes": ["64k"]}
        )
        c = SweepRequest.from_payload(
            {"devices": [4], "vocab_sizes": ["32k"], "simulate_top_k": 0}
        )
        assert len({a.digest(), b.digest(), c.digest()}) == 3


class TestCostModelField:
    def test_accepted_and_threaded_into_constraints(self):
        request = PlanRequest.from_payload(
            small_plan_payload(cost_model="a100-sim")
        )
        assert request.cost_model == "a100-sim"
        constraints = request.resolve()[2]
        assert constraints.cost_model == "a100-sim"

    def test_default_is_analytic(self):
        request = PlanRequest.from_payload(small_plan_payload())
        assert request.cost_model is None
        assert request.resolve()[2].cost_model is None
        # "analytic" is normalized to the default spelling.
        explicit = PlanRequest.from_payload(
            small_plan_payload(cost_model="analytic")
        )
        assert explicit.resolve()[2].cost_model is None

    def test_unknown_name_is_a_request_error(self):
        with pytest.raises(RequestError, match="unknown cost model"):
            PlanRequest.from_payload(small_plan_payload(cost_model="h100-???"))
        with pytest.raises(RequestError, match="unknown cost model"):
            SweepRequest.from_payload(
                {
                    "devices": [4],
                    "vocab_sizes": ["32k"],
                    "cost_model": "h100-???",
                }
            )

    def test_digest_keyed_on_cost_model(self):
        analytic = PlanRequest.from_payload(small_plan_payload())
        explicit = PlanRequest.from_payload(
            small_plan_payload(cost_model="analytic")
        )
        calibrated = PlanRequest.from_payload(
            small_plan_payload(cost_model="a100-sim")
        )
        # "analytic" and the default are the SAME model — same digest;
        # the calibrated profile's content digest separates it.
        assert analytic.digest() == explicit.digest()
        assert calibrated.digest() != analytic.digest()

    def test_sweep_accepts_cost_model(self):
        request = SweepRequest.from_payload(
            {
                "devices": [4],
                "vocab_sizes": ["32k"],
                "cost_model": "a100-sim",
            }
        )
        assert request.constraints().cost_model == "a100-sim"

    def test_plans_to_json_carries_trust_fields(self):
        from repro.service.requests import plans_to_json

        request = PlanRequest.from_payload(
            small_plan_payload(cost_model="a100-sim", simulate_top_k="all")
        )
        data = plans_to_json(execute_plan_request(request))
        assert data["cost_model"] == "a100-sim"
        assert isinstance(data["trust_gated"], bool)
        assert isinstance(data["trust_skipped"], list)
        assert data["cache_key"] == request.digest()


class TestScenarioValidation:
    def test_scenario_required(self):
        with pytest.raises(RequestError, match="scenario"):
            ScenarioRequest.from_payload({"method": "vocab-1"})

    def test_compare_is_default(self):
        request = ScenarioRequest.from_payload({"scenario": "slow-node"})
        assert request.method is None
        assert request.devices == 12

    def test_unknown_method(self):
        with pytest.raises(RequestError, match="unknown method"):
            ScenarioRequest.from_payload(
                {"scenario": "slow-node", "method": "nope"}
            )

    def test_digest_depends_on_sampling(self):
        a = ScenarioRequest.from_payload(
            {"scenario": "slow-node", "samples": 8}
        )
        b = ScenarioRequest.from_payload(
            {"scenario": "slow-node", "samples": 16}
        )
        assert a.digest() != b.digest()
