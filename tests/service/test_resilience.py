"""Resilience machinery: deadlines, admission control, the breaker.

Unit tests drive the state machines with an injected fake clock;
HTTP-level tests run thread-executor services (the process-pool
breaker cycle is covered end-to-end by CI's chaos-smoke job via
``tools/loadtest_service.py --chaos``).
"""

import http.client
import json
import math
import threading
import time

import pytest

from repro import faultinject
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    PlanningService,
    RequestError,
    ServiceThread,
    Shed,
    TokenBucket,
    pop_deadline,
)

SMALL_PLAN = {
    "devices": 4,
    "vocab_size": "32k",
    "microbatches": 8,
    "simulate_top_k": 1,
}


@pytest.fixture(autouse=True)
def disarm():
    faultinject.reset()
    yield
    faultinject.reset()


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request_raw(service, method, path, payload=None, headers=None):
    """One request returning (status, body, response headers)."""
    conn = http.client.HTTPConnection(service.host, service.port, timeout=120)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            {k.lower(): v for k, v in response.getheaders()},
        )
    finally:
        conn.close()


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)  # one token accrues
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(3600.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_inflight_budget_sheds_and_releases(self):
        admission = AdmissionController(max_inflight=2)
        admission.admit("/v1/plan")
        admission.admit("/v1/plan")
        with pytest.raises(Shed) as caught:
            admission.admit("/v1/plan")
        assert caught.value.retry_after_s > 0
        # Classes are budgeted independently.
        admission.admit("/v1/sweep")
        admission.release("/v1/plan")
        admission.admit("/v1/plan")
        snap = admission.snapshot()
        assert snap["shed_inflight"] == 1
        assert snap["shed_by_class"] == {"/v1/plan": 1}
        assert snap["inflight"] == {"/v1/plan": 2, "/v1/sweep": 1}

    def test_tenant_buckets_are_isolated(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_inflight=100, tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        admission.admit("/v1/plan", tenant="alice")
        with pytest.raises(Shed):
            admission.admit("/v1/plan", tenant="alice")
        # A different tenant has its own bucket; so does the default.
        admission.admit("/v1/plan", tenant="bob")
        admission.admit("/v1/plan")
        clock.advance(1.0)
        admission.admit("/v1/plan", tenant="alice")
        assert admission.snapshot()["shed_tenant"] == 1
        assert admission.snapshot()["tenants"] == 3

    def test_shed_carries_bucket_wait(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_inflight=100, tenant_rate=0.5, tenant_burst=1.0, clock=clock
        )
        admission.admit("/v1/plan", tenant="t")
        with pytest.raises(Shed) as caught:
            admission.admit("/v1/plan", tenant="t")
        assert caught.value.retry_after_s == pytest.approx(2.0)

    def test_tenant_bucket_count_is_bounded(self):
        from repro.service.resilience import MAX_TENANT_BUCKETS

        admission = AdmissionController(
            max_inflight=10**6, tenant_rate=10**6, tenant_burst=10**6
        )
        for i in range(MAX_TENANT_BUCKETS + 50):
            admission.admit("/v1/plan", tenant=f"t{i}")
        assert admission.snapshot()["tenants"] == MAX_TENANT_BUCKETS

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestDerivedRetryAfter:
    """In-flight sheds advertise a wait derived from observed work.

    ``Retry-After`` used to be hardcoded to one second on this path;
    these tests pin the replacement: an EWMA of completed work
    durations divided by the configured budget.
    """

    def test_before_any_work_falls_back_to_one_second(self):
        admission = AdmissionController(max_inflight=1, clock=FakeClock())
        assert admission.retry_after_s() == pytest.approx(1.0)
        admission.admit("/v1/plan")
        with pytest.raises(Shed) as caught:
            admission.admit("/v1/plan")
        assert caught.value.retry_after_s == pytest.approx(1.0)

    def test_shed_wait_is_ewma_over_budget(self):
        clock = FakeClock()
        admission = AdmissionController(max_inflight=2, clock=clock)
        admission.admit("/v1/plan")
        clock.advance(4.0)
        admission.release("/v1/plan")
        assert admission.work_ewma_s == pytest.approx(4.0)
        # 4 s of work, 2 slots: the next one frees in about 2 s.
        assert admission.retry_after_s() == pytest.approx(2.0)
        admission.admit("/v1/plan")
        admission.admit("/v1/plan")
        with pytest.raises(Shed) as caught:
            admission.admit("/v1/plan")
        assert caught.value.retry_after_s == pytest.approx(2.0)

    def test_wait_tracks_the_configured_budget(self):
        # The same observed durations advertise a shorter wait on a
        # bigger budget — the header tracks configuration, not a
        # constant.
        waits = {}
        for budget in (1, 2, 4):
            clock = FakeClock()
            admission = AdmissionController(max_inflight=budget, clock=clock)
            admission.admit("/v1/plan")
            clock.advance(4.0)
            admission.release("/v1/plan")
            waits[budget] = admission.retry_after_s()
        assert waits == {
            1: pytest.approx(4.0), 2: pytest.approx(2.0),
            4: pytest.approx(1.0),
        }

    def test_ewma_smooths_durations(self):
        clock = FakeClock()
        admission = AdmissionController(max_inflight=1, clock=clock)
        for duration in (2.0, 6.0):
            admission.admit("/v1/plan")
            clock.advance(duration)
            admission.release("/v1/plan")
        assert admission.work_ewma_s == pytest.approx(0.3 * 6.0 + 0.7 * 2.0)

    def test_snapshot_exposes_the_derivation(self):
        clock = FakeClock()
        admission = AdmissionController(max_inflight=4, clock=clock)
        admission.admit("/v1/plan")
        clock.advance(2.0)
        admission.release("/v1/plan")
        snap = admission.snapshot()
        assert snap["work_ewma_s"] == pytest.approx(2.0)
        assert snap["retry_after_s"] == pytest.approx(0.5)


class TestCircuitBreaker:
    def test_full_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(backoff_s=0.5, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

        breaker.record_failure("worker crashed")
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()  # backoff not expired
        snap = breaker.snapshot()
        assert snap["trips"] == 1
        assert snap["degraded_since"] == pytest.approx(0.0)
        assert snap["retry_in_s"] == pytest.approx(0.5)
        assert snap["last_failure"] == "worker crashed"

        clock.advance(0.6)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.snapshot()["recovery_attempts"] == 1

        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        snap = breaker.snapshot()
        assert snap["recoveries"] == 1
        assert snap["degraded_since"] is None
        assert snap["backoff_s"] == pytest.approx(0.5)  # reset to base

    def test_failed_probe_doubles_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(backoff_s=0.5, max_backoff_s=1.5, clock=clock)
        breaker.record_failure("first")
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_failure("probe failed")  # re-open, doubled wait
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["trips"] == 1  # re-opens are not trips
        assert breaker.snapshot()["retry_in_s"] == pytest.approx(1.0)
        clock.advance(0.6)
        assert not breaker.allow()  # 0.6 < 1.0: still waiting
        clock.advance(0.5)
        assert breaker.allow()
        breaker.record_failure("again")
        # Capped at max_backoff_s.
        assert breaker.snapshot()["retry_in_s"] == pytest.approx(1.5)

    def test_degraded_since_spans_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(backoff_s=0.5, clock=clock)
        breaker.record_failure("first")
        clock.advance(0.6)
        breaker.allow()
        breaker.record_failure("probe failed")
        clock.advance(1.4)
        # Degradation is measured from the *first* failure, not the
        # latest re-open — the operator-facing "how long has this been
        # broken" number.
        assert breaker.snapshot()["degraded_since"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_s=0.0)


class TestPopDeadline:
    def test_absent_uses_default(self):
        assert pop_deadline({}) is None
        assert pop_deadline({}, default_ms=250) == pytest.approx(0.25)

    def test_popped_before_validation(self):
        payload = dict(SMALL_PLAN, deadline_ms=1500)
        assert pop_deadline(payload) == pytest.approx(1.5)
        assert payload == SMALL_PLAN  # digest input unchanged

    def test_explicit_null_falls_back_to_default(self):
        payload = {"deadline_ms": None}
        assert pop_deadline(payload, default_ms=100) == pytest.approx(0.1)

    @pytest.mark.parametrize("bad", [0, -5, "fast", True])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(RequestError):
            pop_deadline({"deadline_ms": bad})


class TestDeadlinesOverHttp:
    def test_expiry_is_504_and_leader_survives(self):
        # A slow computation (the injected delay dwarfs the plan) under
        # a short deadline: the client gets 504, but the shielded
        # leader finishes and lands in the caches — the retry is an
        # LRU hit even though the first client gave up.
        faultinject.install("slow-worker:rate=1,limit=1,delay_ms=2000")
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as live:
            status, body, _ = request_raw(
                live, "POST", "/v1/plan", dict(SMALL_PLAN, deadline_ms=100)
            )
            assert status == 504
            assert "deadline" in body["error"]["message"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, body, _ = request_raw(
                    live, "POST", "/v1/plan", dict(SMALL_PLAN)
                )
                assert status == 200
                if body["meta"]["cache"] == "lru":
                    break
                time.sleep(0.05)
            assert body["meta"]["cache"] == "lru"
            stats = service.stats_payload()
            assert stats["resilience"]["deadline_timeouts"] == 1
            # One computation total: the 504'd leader's, reused.
            assert stats["computed"] == 1

    def test_deadline_does_not_change_digest(self):
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as live:
            _, patient, _ = request_raw(
                live, "POST", "/v1/plan", dict(SMALL_PLAN, deadline_ms=60000)
            )
            _, unbounded, _ = request_raw(live, "POST", "/v1/plan", SMALL_PLAN)
            assert patient["meta"]["digest"] == unbounded["meta"]["digest"]
            assert unbounded["meta"]["cache"] == "lru"

    def test_bad_deadline_is_400(self):
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as live:
            status, body, _ = request_raw(
                live, "POST", "/v1/plan", dict(SMALL_PLAN, deadline_ms=-1)
            )
            assert status == 400
            assert "deadline_ms" in body["error"]["message"]


class TestAdmissionOverHttp:
    def test_tenant_over_rate_is_429_with_retry_after(self):
        service = PlanningService(
            port=0, executor="thread", lru_size=32,
            tenant_rate=0.001, tenant_burst=1.0,
        )
        with ServiceThread(service) as live:
            fresh = dict(SMALL_PLAN, pass_overhead=1e-9)
            status, _, _ = request_raw(
                live, "POST", "/v1/plan", fresh,
                headers={"X-Tenant": "alice"},
            )
            assert status == 200
            status, body, headers = request_raw(
                live, "POST", "/v1/plan",
                dict(SMALL_PLAN, pass_overhead=2e-9),
                headers={"X-Tenant": "alice"},
            )
            assert status == 429
            assert "alice" in body["error"]["message"]
            assert int(headers["retry-after"]) >= 1
            # Another tenant is unaffected.
            status, _, _ = request_raw(
                live, "POST", "/v1/plan",
                dict(SMALL_PLAN, pass_overhead=3e-9),
                headers={"X-Tenant": "bob"},
            )
            assert status == 200
            # Cache reads are never charged: the over-budget tenant can
            # still read what is already computed.
            status, body, _ = request_raw(
                live, "POST", "/v1/plan", fresh,
                headers={"X-Tenant": "alice"},
            )
            assert status == 200
            assert body["meta"]["cache"] == "lru"
            snap = service.stats_payload()["resilience"]
            assert snap["shed"] == 1
            assert snap["admission"]["shed_tenant"] == 1

    def test_inflight_shed_retry_after_derives_from_observed_work(self):
        # Make work measurably slow, complete one request to seed the
        # EWMA, then fill the single-slot budget and observe the shed:
        # the header must reflect the ~2 s of observed work, not the
        # old hardcoded 1 s.
        faultinject.install("slow-worker:rate=1,delay_ms=1800")
        service = PlanningService(
            port=0, executor="thread", lru_size=32, max_inflight=1
        )
        with ServiceThread(service) as live:
            status, _, _ = request_raw(
                live, "POST", "/v1/plan",
                dict(SMALL_PLAN, pass_overhead=1e-9),
            )
            assert status == 200
            ewma = service.admission.work_ewma_s
            assert ewma is not None and ewma >= 1.8

            # The leader re-takes the single slot until the probe has
            # observed a shed: its first attempt can itself be shed if
            # a probe wins the slot race.  Every payload is fresh so no
            # request is answered from the LRU (cache hits bypass
            # admission and would mask the 429 forever).
            stop = threading.Event()

            def occupy_slot():
                attempt = 0
                while not stop.is_set():
                    attempt += 1
                    status, _, _ = request_raw(
                        live, "POST", "/v1/plan",
                        dict(SMALL_PLAN, pass_overhead=2e-9 * attempt),
                    )
                    if status != 200:
                        time.sleep(0.01)

            leader = threading.Thread(target=occupy_slot)
            leader.start()
            try:
                deadline = time.monotonic() + 10
                probe = 0
                status = None
                while time.monotonic() < deadline:
                    probe += 1
                    status, body, headers = request_raw(
                        live, "POST", "/v1/plan",
                        dict(SMALL_PLAN, pass_overhead=3e-9 + probe * 1e-12),
                    )
                    if status == 429:
                        break
                    time.sleep(0.02)
                assert status == 429
                assert body["error"]["retry_after_s"] >= 1.8
                # max(1, ceil(ewma / 1 slot)) with >= 1.8 s of work.
                assert int(headers["retry-after"]) >= 2
                assert int(headers["retry-after"]) == max(
                    1, math.ceil(body["error"]["retry_after_s"])
                )
            finally:
                stop.set()
                leader.join(timeout=30)
            snap = service.stats_payload()["resilience"]["admission"]
            assert snap["work_ewma_s"] is not None
            assert snap["retry_after_s"] >= 1.8


class TestObservability:
    def test_stats_and_healthz_expose_resilience(self):
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as live:
            status, health, _ = request_raw(live, "GET", "/healthz")
            assert status == 200
            assert health["breaker"] == "closed"
            status, stats, _ = request_raw(live, "GET", "/stats")
            assert status == 200
            resilience = stats["resilience"]
            assert resilience["breaker"]["state"] == "closed"
            assert resilience["breaker"]["degraded_since"] is None
            assert resilience["breaker"]["recovery_attempts"] == 0
            assert resilience["admission"]["max_inflight"] == 64
            assert resilience["faults"] == {}
            assert stats["disk"]["enabled"] is False

    def test_degradation_surfaces_in_stats(self):
        service = PlanningService(port=0, executor="thread", lru_size=32)
        service.breaker.record_failure("injected for the test")
        with ServiceThread(service) as live:
            _, health, _ = request_raw(live, "GET", "/healthz")
            assert health["breaker"] == "open"
            _, stats, _ = request_raw(live, "GET", "/stats")
            breaker = stats["resilience"]["breaker"]
            assert breaker["state"] == "open"
            assert breaker["trips"] == 1
            assert breaker["degraded_since"] >= 0.0
            assert breaker["retry_in_s"] is not None
            assert breaker["last_failure"] == "injected for the test"

    def test_armed_faults_visible_in_stats(self):
        faultinject.install("slow-worker:rate=0.5,delay_ms=10")
        service = PlanningService(port=0, executor="thread", lru_size=32)
        with ServiceThread(service) as live:
            _, stats, _ = request_raw(live, "GET", "/stats")
            assert stats["resilience"]["faults"] == {
                "slow-worker": {"rate": 0.5, "events": 0, "fires": 0}
            }
