"""End-to-end planning service: HTTP, tiers, coalescing, shutdown.

All tests run the service with the thread executor (process pools are
covered by CI's service-smoke job via ``tools/loadtest_service.py``,
and are not reliably available in restricted sandboxes).
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.service import PlanningService, ServiceThread

SMALL_PLAN = {
    "devices": 4,
    "vocab_size": "32k",
    "microbatches": 8,
    "simulate_top_k": 1,
}


def request_json(service, method, path, payload=None, timeout=120.0):
    conn = http.client.HTTPConnection(service.host, service.port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def live():
    """One shared thread-hosted service for the HTTP surface tests."""
    service = PlanningService(port=0, executor="thread", lru_size=32)
    with ServiceThread(service) as running:
        yield running


class TestHttpSurface:
    def test_healthz(self, live):
        status, body = request_json(live, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_plan_computed_then_lru(self, live):
        status, first = request_json(live, "POST", "/v1/plan", SMALL_PLAN)
        assert status == 200
        # module-shared server: either tier is legal for the opener
        assert first["api_version"] == 1
        assert first["meta"]["cache"] in ("computed", "lru")
        assert first["meta"]["timings"]["total_ms"] >= 0
        assert first["result"]["best"] is not None
        assert first["result"]["cache_key"] == first["meta"]["digest"]
        status, second = request_json(live, "POST", "/v1/plan", SMALL_PLAN)
        assert status == 200
        assert second["meta"]["cache"] == "lru"
        assert second["result"] == first["result"]

    def test_plan_rejects_bad_payload(self, live):
        status, body = request_json(
            live, "POST", "/v1/plan", dict(SMALL_PLAN, bogus=1)
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "bogus" in body["error"]["message"]

    def test_plan_rejects_malformed_json(self, live):
        conn = http.client.HTTPConnection(live.host, live.port, timeout=30)
        try:
            conn.request("POST", "/v1/plan", body="{not json")
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]["message"]
        finally:
            conn.close()

    def test_unknown_route_404_lists_routes(self, live):
        status, body = request_json(live, "GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert {"method": "POST", "path": "/v1/plan"} in body["error"]["routes"]

    def test_wrong_method_405(self, live):
        status, body = request_json(live, "GET", "/v1/plan")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert body["error"]["allowed"] == ["POST"]

    def test_sweep_endpoint(self, live):
        status, body = request_json(
            live,
            "POST",
            "/v1/sweep",
            {
                "devices": [4],
                "vocab_sizes": ["32k"],
                "microbatches": [8],
                "memory_budgets_gib": [40.0, 80.0],
                "simulate_top_k": 1,
            },
        )
        assert status == 200
        points = body["result"]["points"]
        assert len(points) == 2
        assert [p["memory_budget_gib"] for p in points] == [40.0, 80.0]
        assert all(p["best"] is not None for p in points)

    def test_scenarios_endpoint(self, live):
        status, body = request_json(
            live,
            "POST",
            "/v1/scenarios",
            {
                "scenario": "slow-node",
                "method": "vocab-1",
                "devices": 4,
                "vocab_size": "32k",
                "microbatches": 8,
                "samples": 8,
            },
        )
        assert status == 200
        ranked = body["result"]["ranked"]
        assert [r["method"] for r in ranked] == ["vocab-1"]
        assert ranked[0]["p95_time"] >= ranked[0]["p50_time"]

    def test_stats_counters(self, live):
        request_json(live, "POST", "/v1/plan", SMALL_PLAN)
        status, stats = request_json(live, "GET", "/stats")
        assert status == 200
        assert stats["requests"]["/v1/plan"] >= 1
        assert stats["computed"] >= 1
        assert stats["lru"]["hits"] >= 1
        assert stats["executor"]["kind"] == "thread"
        assert stats["disk"] == {"enabled": False}

    def test_keep_alive_connection_reuse(self, live):
        conn = http.client.HTTPConnection(live.host, live.port, timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestCoalescing:
    def run_concurrent(self, service, payload, copies):
        """Dispatch N identical requests on one event loop."""

        async def one():
            return await service._post_plan(payload)

        async def gather():
            return await asyncio.gather(*[one() for _ in range(copies)])

        return asyncio.run(gather())

    def test_k_identical_requests_one_plan(self):
        """Coalescing determinism: K concurrent identical requests
        perform exactly one plan and return bit-identical plans."""
        service = PlanningService(port=0, executor="thread")
        payload = dict(SMALL_PLAN, seq_length=1024)
        results = self.run_concurrent(service, payload, copies=5)
        assert service.stats.computed == 1
        assert service.stats.coalesced == 4
        tiers = sorted(r["meta"]["cache"] for r in results)
        assert tiers == ["coalesced"] * 4 + ["computed"]
        bodies = {json.dumps(r["result"], sort_keys=True) for r in results}
        assert len(bodies) == 1

    def test_coalesced_over_http_burst(self):
        service = PlanningService(port=0, executor="thread")
        with ServiceThread(service) as live:
            payload = dict(SMALL_PLAN, seq_length=512)
            barrier = threading.Barrier(4)
            results = []
            lock = threading.Lock()

            def worker():
                barrier.wait()
                result = request_json(live, "POST", "/v1/plan", payload)
                with lock:
                    results.append(result)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(status == 200 for status, _ in results)
            # However the burst interleaved, the plan ran exactly once.
            assert service.stats.computed == 1
            bodies = {
                json.dumps(body["result"], sort_keys=True)
                for _, body in results
            }
            assert len(bodies) == 1

    def test_distinct_requests_do_not_coalesce(self):
        service = PlanningService(port=0, executor="thread")
        a = dict(SMALL_PLAN)
        b = dict(SMALL_PLAN, memory_budget_gib=40.0)

        async def gather():
            return await asyncio.gather(
                service._post_plan(a), service._post_plan(b)
            )

        results = asyncio.run(gather())
        assert service.stats.computed == 2
        assert service.stats.coalesced == 0
        assert results[0]["meta"]["digest"] != results[1]["meta"]["digest"]


class TestDiskTier:
    def test_disk_tier_survives_restart(self, tmp_path):
        cache_dir = str(tmp_path / "plans")
        first = PlanningService(
            port=0, executor="thread", cache_dir=cache_dir
        )
        result = asyncio.run(first._post_plan(SMALL_PLAN))
        assert result["meta"]["cache"] == "computed"

        # A fresh service instance (cold LRU) finds the entry on disk.
        second = PlanningService(
            port=0, executor="thread", cache_dir=cache_dir
        )
        again = asyncio.run(second._post_plan(SMALL_PLAN))
        assert again["meta"]["cache"] == "disk"
        assert again["result"] == result["result"]
        assert second.stats.computed == 0
        # And the LRU now fronts the disk entry.
        third = asyncio.run(second._post_plan(SMALL_PLAN))
        assert third["meta"]["cache"] == "lru"


class TestShutdown:
    def test_post_shutdown_stops_server(self):
        service = PlanningService(port=0, executor="thread")
        handle = ServiceThread(service)
        live = handle.__enter__()
        try:
            status, body = request_json(live, "POST", "/shutdown")
            assert status == 200
            assert body["status"] == "shutting-down"
            handle._thread.join(timeout=30.0)
            assert not handle._thread.is_alive()
            with pytest.raises(OSError):
                request_json(live, "GET", "/healthz", timeout=5.0)
        finally:
            handle.__exit__(None, None, None)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            PlanningService(executor="carrier-pigeon")
