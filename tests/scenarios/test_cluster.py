"""ClusterScenario lowering: speeds, interconnect tiers, registry."""

import dataclasses

import pytest

from repro.collectives.timing import CommunicationModel
from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.harness.experiments import generate_method_schedule
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    ClusterScenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)
from repro.sim import RuntimeModel, SimulationSetup


def tiny_setup(p: int = 4, m: int = 8) -> SimulationSetup:
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )
    return SimulationSetup(
        model, ParallelConfig(pipeline_size=p, num_microbatches=m)
    )


class TestValidation:
    def test_rejects_nonpositive_speeds(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterScenario(name="x", device_speed_pattern=(1.0, 0.0))
        with pytest.raises(ValueError, match="positive"):
            ClusterScenario(name="x", slow_node_speed=-1.0)

    def test_rejects_bad_scales_and_jitter(self):
        with pytest.raises(ValueError, match="inter_bandwidth_scale"):
            ClusterScenario(name="x", inter_bandwidth_scale=0.0)
        with pytest.raises(ValueError, match="jitter"):
            ClusterScenario(name="x", pass_jitter=-0.1)
        with pytest.raises(ValueError, match="jitter_distribution"):
            ClusterScenario(name="x", jitter_distribution="cauchy")

    def test_nominal_flags(self):
        nominal = ClusterScenario(name="x")
        assert nominal.is_nominal
        assert not nominal.has_jitter
        jittery = ClusterScenario(name="x", pass_jitter=0.1)
        assert jittery.has_jitter and not jittery.is_nominal


class TestDeviceSpeeds:
    def test_pattern_cycles_over_devices(self):
        scenario = ClusterScenario(name="x", device_speed_pattern=(1.0, 0.5))
        parallel = ParallelConfig(pipeline_size=5, num_microbatches=8)
        assert scenario.device_speeds(parallel) == (1.0, 0.5, 1.0, 0.5, 1.0)

    def test_slow_node_maps_to_its_devices(self):
        scenario = ClusterScenario(
            name="x", slow_nodes=(-1,), slow_node_speed=0.5
        )
        parallel = ParallelConfig(pipeline_size=12, num_microbatches=8)
        speeds = scenario.device_speeds(parallel)
        # 12 devices = node 0 (0-7) + node 1 (8-11); -1 is the last node.
        assert speeds[:8] == (1.0,) * 8
        assert speeds[8:] == (0.5,) * 4

    def test_single_node_cluster_slows_uniformly(self):
        scenario = ClusterScenario(
            name="x", slow_nodes=(-1,), slow_node_speed=0.5
        )
        parallel = ParallelConfig(pipeline_size=4, num_microbatches=8)
        assert scenario.device_speeds(parallel) == (0.5,) * 4


class TestInterconnect:
    def test_hardware_for_scales_both_tiers(self):
        scenario = ClusterScenario(
            name="x",
            intra_bandwidth_scale=0.5,
            inter_bandwidth_scale=0.25,
            inter_latency_scale=3.0,
        )
        hw = scenario.hardware_for(A100_SXM_80G)
        assert hw.intra_node_bandwidth == A100_SXM_80G.intra_node_bandwidth * 0.5
        assert hw.inter_node_bandwidth == A100_SXM_80G.inter_node_bandwidth * 0.25
        assert hw.link_latency == A100_SXM_80G.link_latency
        assert hw.inter_link_latency == A100_SXM_80G.link_latency * 3.0

    def test_nominal_scenario_shares_hardware_and_setup(self):
        scenario = ClusterScenario(name="x", device_speed_pattern=(1.0, 0.5))
        setup = tiny_setup()
        assert scenario.hardware_for(setup.hardware) is setup.hardware
        assert scenario.setup_for(setup) is setup

    def test_default_inter_latency_preserves_old_timing(self):
        """inter_node_latency=None must not change any nominal number."""
        old_style = HardwareModel()
        parallel = ParallelConfig(pipeline_size=16, num_microbatches=8)
        comm = CommunicationModel(old_style, parallel)
        assert old_style.inter_link_latency == old_style.link_latency
        # Inter-node p2p uses the (identical) inter latency by default.
        explicit = CommunicationModel(
            dataclasses.replace(
                old_style, inter_node_latency=old_style.link_latency
            ),
            parallel,
        )
        assert comm.p2p_time(1024.0, 7, 8) == explicit.p2p_time(1024.0, 7, 8)
        assert comm.all_reduce_time(1 << 20) == explicit.all_reduce_time(1 << 20)

    def test_inter_latency_applies_only_across_nodes(self):
        hw = dataclasses.replace(A100_SXM_80G, inter_node_latency=1e-3)
        parallel = ParallelConfig(pipeline_size=16, num_microbatches=8)
        comm = CommunicationModel(hw, parallel)
        base = CommunicationModel(A100_SXM_80G, parallel)
        # Same-node pair: unchanged; cross-node pair: slower α.
        assert comm.p2p_time(1024.0, 0, 1) == base.p2p_time(1024.0, 0, 1)
        assert comm.p2p_time(1024.0, 7, 8) > base.p2p_time(1024.0, 7, 8)
        # The multi-node ring pays the inter-node α per step.
        assert comm.all_reduce_time(1 << 20) > base.all_reduce_time(1 << 20)


class TestScenarioRuntime:
    def test_speeds_divide_pass_durations(self):
        setup = tiny_setup()
        schedule = generate_method_schedule("baseline", setup)
        scenario = ClusterScenario(name="x", device_speed_pattern=(1.0, 0.5))
        runtime = scenario.runtime_for(setup, schedule)
        base = RuntimeModel(setup, schedule)
        for device_order in schedule.device_orders:
            p = device_order[0]
            expected = base.pass_duration(p) / (1.0 if p.device % 2 == 0 else 0.5)
            assert runtime.pass_duration(p) == expected

    def test_all_ones_pattern_returns_plain_runtime(self):
        setup = tiny_setup()
        schedule = generate_method_schedule("baseline", setup)
        scenario = ClusterScenario(name="x", device_speed_pattern=(1.0, 1.0))
        runtime = scenario.runtime_for(setup, schedule)
        assert isinstance(runtime, RuntimeModel)


class TestRegistry:
    def test_builtins_present(self):
        assert set(BUILTIN_SCENARIOS) == {
            "homogeneous",
            "mixed-sku",
            "slow-node",
            "bandwidth-asymmetric",
            "high-jitter",
            "straggler-device",
        }
        assert [s.name for s in list_scenarios()[:6]] == list(BUILTIN_SCENARIOS)
        assert get_scenario("homogeneous").is_nominal

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="slow-node"):
            get_scenario("slow-nod")

    def test_register_and_unregister(self):
        scenario = ClusterScenario(name="test-tmp", pass_jitter=0.1)
        try:
            register_scenario(scenario)
            assert get_scenario("test-tmp") is scenario
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(scenario)
            register_scenario(
                dataclasses.replace(scenario, pass_jitter=0.2), replace=True
            )
            assert get_scenario("test-tmp").pass_jitter == 0.2
        finally:
            unregister_scenario("test-tmp")

    def test_builtins_cannot_be_replaced(self):
        with pytest.raises(ValueError, match="built-in"):
            register_scenario(ClusterScenario(name="slow-node"), replace=True)
        with pytest.raises(ValueError, match="built-in"):
            unregister_scenario("homogeneous")

    def test_signature_ignores_name(self):
        a = ClusterScenario(name="a", pass_jitter=0.1)
        b = ClusterScenario(name="b", pass_jitter=0.1)
        c = ClusterScenario(name="c", pass_jitter=0.2)
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
