"""Monte Carlo perturbation: determinism, parity, nominal identity."""

import math

import pytest

import repro.scenarios.perturb as perturb
import repro.sim.compiled as compiled
from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import generate_method_schedule
from repro.scenarios import (
    ClusterScenario,
    RobustnessObjective,
    get_scenario,
    method_robustness,
    perturbation_factors,
    perturbed_rows,
    robustness_stats,
)
from repro.sim import RuntimeModel, SimulationSetup, compile_schedule


def tiny_graph(method: str = "vocab-1", p: int = 4, m: int = 8):
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=512,
        num_attention_heads=8,
        seq_length=256,
        vocab_size=4096,
    )
    setup = SimulationSetup(
        model, ParallelConfig(pipeline_size=p, num_microbatches=m)
    )
    schedule = generate_method_schedule(method, setup)
    return compile_schedule(schedule, RuntimeModel(setup, schedule))


JITTERY = ClusterScenario(name="t-jitter", pass_jitter=0.1, comm_jitter=0.2)


def as_rows(matrix):
    """Nested-list rendering of a factor matrix (NumPy or pure Python)."""
    if isinstance(matrix, list):
        return [list(row) for row in matrix]
    return matrix.tolist()


class TestSeededDeterminism:
    def test_same_seed_bit_identical(self):
        graph = tiny_graph()
        a = perturbation_factors(graph, JITTERY, samples=4, seed=9)
        b = perturbation_factors(graph, JITTERY, samples=4, seed=9)
        assert as_rows(a[0]) == as_rows(b[0])
        assert as_rows(a[1]) == as_rows(b[1])

    def test_different_seeds_differ(self):
        graph = tiny_graph()
        a = perturbation_factors(graph, JITTERY, samples=4, seed=9)
        b = perturbation_factors(graph, JITTERY, samples=4, seed=10)
        assert as_rows(a[0]) != as_rows(b[0])

    def test_scenario_seed_enters_stream(self):
        graph = tiny_graph()
        other = ClusterScenario(
            name="t2", pass_jitter=0.1, comm_jitter=0.2, seed=1
        )
        a = perturbation_factors(graph, JITTERY, samples=4, seed=9)
        b = perturbation_factors(graph, other, samples=4, seed=9)
        assert as_rows(a[0]) != as_rows(b[0])

    def test_stats_bit_identical_across_runs(self):
        graph = tiny_graph()
        assert robustness_stats(
            graph, JITTERY, samples=32, seed=5
        ) == robustness_stats(graph, JITTERY, samples=32, seed=5)

    def test_factors_center_on_one(self):
        graph = tiny_graph()
        dur, _ = perturbation_factors(graph, JITTERY, samples=16, seed=0)
        rows = as_rows(dur)
        flat = [value for row in rows for value in row]
        mean = sum(flat) / len(flat)
        assert abs(mean - 1.0) < 0.01
        assert all(value >= JITTERY.min_jitter_factor for value in flat)


class TestPurePythonParity:
    def test_factor_generation_parity(self, monkeypatch):
        graph = tiny_graph()
        with_numpy = perturbation_factors(graph, JITTERY, samples=3, seed=4)
        monkeypatch.setattr(perturb, "_np", None)
        without_numpy = perturbation_factors(graph, JITTERY, samples=3, seed=4)
        assert as_rows(with_numpy[0]) == as_rows(without_numpy[0])
        assert as_rows(with_numpy[1]) == as_rows(without_numpy[1])

    def test_perturbed_rows_parity(self, monkeypatch):
        graph = tiny_graph()
        with_numpy = perturbed_rows(graph, JITTERY, samples=3, seed=4)
        monkeypatch.setattr(perturb, "_np", None)
        without_numpy = perturbed_rows(graph, JITTERY, samples=3, seed=4)
        assert as_rows(with_numpy[0]) == as_rows(without_numpy[0])
        assert as_rows(with_numpy[1]) == as_rows(without_numpy[1])

    def test_execute_many_fallback_parity(self, monkeypatch):
        """Perturbed bindings sweep identically without NumPy."""
        graph = tiny_graph()
        durations, lags = perturbed_rows(graph, JITTERY, samples=4, seed=7)
        batched = graph.execute_many_summary(durations, lags)
        rows = as_rows(durations)
        lag_rows = as_rows(lags)
        monkeypatch.setattr(compiled, "_np", None)
        fallback = graph.execute_many_summary(rows, lag_rows)
        assert [s.iteration_time for s in batched] == [
            s.iteration_time for s in fallback
        ]
        assert [s.device_busy for s in batched] == [
            s.device_busy for s in fallback
        ]

    def test_stats_identical_without_numpy(self, monkeypatch):
        graph = tiny_graph()
        with_numpy = robustness_stats(graph, JITTERY, samples=8, seed=3)
        monkeypatch.setattr(perturb, "_np", None)
        monkeypatch.setattr(compiled, "_np", None)
        without_numpy = robustness_stats(graph, JITTERY, samples=8, seed=3)
        assert with_numpy == without_numpy


class TestNominalIdentity:
    def test_homogeneous_scenario_equals_execute(self):
        """Zero perturbation ⇒ every quantile is the nominal time, bit-for-bit."""
        graph = tiny_graph()
        nominal = graph.execute().iteration_time
        stats = robustness_stats(
            graph, get_scenario("homogeneous"), samples=16, seed=0
        )
        assert stats.nominal_time == nominal
        assert stats.p50_time == nominal
        assert stats.p95_time == nominal
        assert stats.worst_time == nominal
        assert stats.std_time == 0.0
        assert stats.p95_inflation == 0.0

    def test_zero_jitter_rows_equal_bound_durations(self):
        graph = tiny_graph()
        durations, lags = perturbed_rows(
            graph, get_scenario("homogeneous"), samples=3, seed=0
        )
        for row in as_rows(durations):
            assert row == list(graph.durations)
        for row in as_rows(lags):
            assert row == list(graph.succ_lag)

    def test_jitter_free_summary_path_matches_execute_many(self):
        """The no-jitter shortcut must agree with actually sweeping K rows."""
        graph = tiny_graph()
        durations, lags = perturbed_rows(
            graph, get_scenario("homogeneous"), samples=3, seed=0
        )
        results = graph.execute_many(durations, lags)
        nominal = graph.execute().iteration_time
        assert all(r.iteration_time == nominal for r in results)


class TestStats:
    def test_quantiles_ordered(self):
        graph = tiny_graph()
        stats = robustness_stats(graph, JITTERY, samples=64, seed=1)
        assert stats.best_time <= stats.p50_time <= stats.p95_time
        assert stats.p95_time <= stats.worst_time
        assert stats.p95_inflation > 0
        assert stats.quantile_time("p95") == stats.p95_time
        assert stats.quantile_time("mean") == stats.mean_time
        with pytest.raises(ValueError, match="unknown quantile"):
            stats.quantile_time("p99")
        assert math.isfinite(stats.std_time)

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="samples"):
            RobustnessObjective(samples=0)
        with pytest.raises(ValueError, match="rank_by"):
            RobustnessObjective(rank_by="p12")

    def test_samples_must_be_positive(self):
        graph = tiny_graph()
        with pytest.raises(ValueError, match="samples"):
            perturbed_rows(graph, JITTERY, samples=0)
        with pytest.raises(ValueError, match="samples"):
            perturbation_factors(graph, JITTERY, samples=0)


class TestMethodRobustness:
    def test_slow_node_slower_than_homogeneous(self):
        model = ModelConfig(
            num_layers=16,
            hidden_size=512,
            num_attention_heads=8,
            seq_length=256,
            vocab_size=4096,
        )
        parallel = ParallelConfig(pipeline_size=4, num_microbatches=8)
        slow = method_robustness(
            "vocab-1", model, parallel, get_scenario("slow-node"),
            samples=16, seed=0,
        )
        nominal = method_robustness(
            "vocab-1", model, parallel, get_scenario("homogeneous"),
            samples=16, seed=0,
        )
        assert slow.nominal_time > nominal.nominal_time
        assert slow.p95_time >= slow.nominal_time
