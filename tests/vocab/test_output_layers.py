"""Exactness and protocol tests for the partitioned output layers.

The central numerical claim of the paper's §4 (and the basis of the
Figure 17 convergence result): the naïve, Algorithm 1 and Algorithm 2
partitioned output layers compute *exactly* the same losses and
gradients as a single-device reference, while using 3, 2 and 1
communication barriers respectively.
"""

import numpy as np
import pytest

from repro.vocab import (
    NaiveOutputLayer,
    OutputLayerAlg1,
    OutputLayerAlg2,
    VocabPartition,
)
from repro.vocab.reference import reference_output_layer

ALL_IMPLS = [NaiveOutputLayer, OutputLayerAlg1, OutputLayerAlg2]


def _random_case(rng, n=23, h=16, v=50, p=4):
    part = VocabPartition(v, p)
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)
    return part, x, w, labels


@pytest.mark.parametrize("impl", ALL_IMPLS)
class TestExactness:
    def test_losses_match_reference(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        ref_losses, _, _ = reference_output_layer(x, part.pad_weight(w), labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-12, atol=1e-12)

    def test_grad_input_matches_reference(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        _, ref_gx, _ = reference_output_layer(x, part.pad_weight(w), labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-12, atol=1e-12)

    def test_grad_weight_matches_reference(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        _, _, ref_gw = reference_output_layer(x, part.pad_weight(w), labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        gw = np.concatenate(result.grad_weight_shards, axis=0)
        np.testing.assert_allclose(gw, ref_gw, rtol=1e-12, atol=1e-12)

    def test_grad_scale_applied(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        layer = impl.from_full_weight(part, w)
        full = layer.run(x, labels, grad_scale=1.0)
        scaled = impl.from_full_weight(part, w).run(x, labels, grad_scale=0.5)
        np.testing.assert_allclose(
            scaled.grad_input, 0.5 * full.grad_input, rtol=1e-12
        )
        np.testing.assert_allclose(scaled.losses, full.losses, rtol=1e-12)

    def test_extreme_logits_stable(self, impl, rng):
        """The online-softmax rescaling must survive huge logit ranges."""
        part, x, w, labels = _random_case(rng)
        x = x * 40.0  # logits of magnitude ~hundreds
        ref_losses, ref_gx, _ = reference_output_layer(x, part.pad_weight(w), labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        assert np.all(np.isfinite(result.losses))
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-9, atol=1e-10)

    def test_single_rank_degenerates_to_reference(self, impl, rng):
        part = VocabPartition(48, 1)
        x = rng.normal(size=(11, 8))
        w = rng.normal(size=(48, 8))
        labels = rng.integers(0, 48, size=11)
        ref_losses, ref_gx, ref_gw = reference_output_layer(x, w, labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-12)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(
            result.grad_weight_shards[0], ref_gw, rtol=1e-12, atol=1e-14
        )

    def test_many_ranks(self, impl, rng):
        part, x, w, labels = _random_case(rng, n=9, h=8, v=64, p=16)
        ref_losses, ref_gx, _ = reference_output_layer(x, part.pad_weight(w), labels)
        result = impl.from_full_weight(part, w).run(x, labels)
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-12)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-12, atol=1e-13)

    def test_rejects_out_of_range_labels(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        layer = impl.from_full_weight(part, w)
        labels[0] = part.vocab_size  # in padding but not a legal label
        with pytest.raises(ValueError):
            layer.run(x, labels)

    def test_rejects_wrong_x_width(self, impl, rng):
        part, x, w, labels = _random_case(rng)
        layer = impl.from_full_weight(part, w)
        with pytest.raises(ValueError):
            layer.run(x[:, :-1], labels)


class TestBarrierCounts:
    """Figure 7: 3 / 2 / 1 communication barriers."""

    def test_naive_has_three_barriers(self, rng):
        part, x, w, labels = _random_case(rng)
        result = NaiveOutputLayer.from_full_weight(part, w).run(x, labels)
        assert result.num_barriers == 3
        barrier_ops = [c for c in result.comm_log if not c.startswith("C0")]
        assert len(barrier_ops) == 3

    def test_alg1_has_two_barriers(self, rng):
        part, x, w, labels = _random_case(rng)
        result = OutputLayerAlg1.from_full_weight(part, w).run(x, labels)
        assert result.num_barriers == 2
        barrier_ops = [c for c in result.comm_log if not c.startswith("C0")]
        assert len(barrier_ops) == 2

    def test_alg2_has_one_barrier(self, rng):
        part, x, w, labels = _random_case(rng)
        result = OutputLayerAlg2.from_full_weight(part, w).run(x, labels)
        assert result.num_barriers == 1
        barrier_ops = [c for c in result.comm_log if not c.startswith("C0")]
        assert len(barrier_ops) == 1

    def test_all_start_with_broadcast(self, rng):
        part, x, w, labels = _random_case(rng)
        for impl in ALL_IMPLS:
            result = impl.from_full_weight(part, w).run(x, labels)
            assert result.comm_log[0] == "C0:broadcast_x"


class TestPassProtocol:
    """The pass/barrier state machine enforces the paper's dependencies."""

    def test_alg1_t_before_c1_rejected(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = OutputLayerAlg1.from_full_weight(part, w)
        state = layer.begin(x, labels)
        layer.pass_S(state, 0)
        with pytest.raises(RuntimeError):
            layer.pass_T(state, 0)

    def test_alg1_c1_requires_all_s(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = OutputLayerAlg1.from_full_weight(part, w)
        state = layer.begin(x, labels)
        for rank in range(part.num_shards - 1):
            layer.pass_S(state, rank)
        with pytest.raises(RuntimeError):
            layer.barrier_C1(state)

    def test_alg2_finish_requires_all_t(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = OutputLayerAlg2.from_full_weight(part, w)
        state = layer.begin(x, labels)
        for rank in range(part.num_shards):
            layer.pass_S(state, rank)
        layer.barrier_C1(state)
        layer.pass_T(state, 0)
        with pytest.raises(RuntimeError):
            layer.finish(state)

    def test_duplicate_pass_rejected(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = OutputLayerAlg2.from_full_weight(part, w)
        state = layer.begin(x, labels)
        layer.pass_S(state, 1)
        with pytest.raises(RuntimeError):
            layer.pass_S(state, 1)

    def test_duplicate_barrier_rejected(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = OutputLayerAlg1.from_full_weight(part, w)
        state = layer.begin(x, labels)
        for rank in range(part.num_shards):
            layer.pass_S(state, rank)
        layer.barrier_C1(state)
        with pytest.raises(RuntimeError):
            layer.barrier_C1(state)

    def test_naive_f2_requires_max_barrier(self, rng):
        part, x, w, labels = _random_case(rng)
        layer = NaiveOutputLayer.from_full_weight(part, w)
        state = layer.begin(x, labels)
        layer.pass_F1(state, 0)
        with pytest.raises(RuntimeError):
            layer.pass_F2(state, 0)

    def test_rank_order_irrelevant(self, rng):
        """Ranks may execute their passes in any order (paper §3:
        computations on each device can be scheduled independently)."""
        part, x, w, labels = _random_case(rng)
        ref = OutputLayerAlg2.from_full_weight(part, w).run(x, labels)
        layer = OutputLayerAlg2.from_full_weight(part, w)
        state = layer.begin(x, labels)
        for rank in (2, 0, 3, 1):
            layer.pass_S(state, rank)
        layer.barrier_C1(state)
        for rank in (3, 1, 0, 2):
            layer.pass_T(state, rank)
        result = layer.finish(state)
        np.testing.assert_array_equal(result.grad_input, ref.grad_input)
        np.testing.assert_array_equal(result.losses, ref.losses)


class TestConstruction:
    def test_wrong_shard_count_rejected(self, rng):
        part = VocabPartition(48, 4)
        shards = part.split_weight(rng.normal(size=(48, 8)))
        with pytest.raises(ValueError):
            OutputLayerAlg1(part, shards[:3])

    def test_wrong_shard_shape_rejected(self, rng):
        part = VocabPartition(48, 4)
        shards = part.split_weight(rng.normal(size=(48, 8)))
        shards[2] = shards[2][:-1]
        with pytest.raises(ValueError):
            OutputLayerAlg1(part, shards)

    def test_weight_shards_copied(self, rng):
        part = VocabPartition(48, 4)
        shards = part.split_weight(rng.normal(size=(48, 8)))
        layer = OutputLayerAlg2(part, shards)
        shards[0][0, 0] = 123.0
        assert layer.weight_shards[0][0, 0] != 123.0
