"""Property-based tests (hypothesis) for the partitioned output layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.vocab import (
    NaiveOutputLayer,
    OutputLayerAlg1,
    OutputLayerAlg2,
    VocabPartition,
)
from repro.vocab.reference import reference_output_layer, softmax

shapes = st.tuples(
    st.integers(min_value=1, max_value=12),   # tokens n
    st.integers(min_value=1, max_value=9),    # hidden h
    st.integers(min_value=2, max_value=40),   # vocab V
    st.integers(min_value=1, max_value=6),    # ranks p
)


def _case(seed, n, h, v, p):
    rng = np.random.default_rng(seed)
    part = VocabPartition(v, p)
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)
    return part, x, w, labels


@settings(max_examples=60, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**31 - 1),
       impl=st.sampled_from([NaiveOutputLayer, OutputLayerAlg1, OutputLayerAlg2]))
def test_partitioned_equals_reference(shape, seed, impl):
    """Any shape, any rank count: exact agreement with the reference."""
    n, h, v, p = shape
    part, x, w, labels = _case(seed, n, h, v, p)
    ref_losses, ref_gx, ref_gw = reference_output_layer(x, part.pad_weight(w), labels)
    result = impl.from_full_weight(part, w).run(x, labels)
    np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(
        np.concatenate(result.grad_weight_shards, axis=0), ref_gw,
        rtol=1e-9, atol=1e-9,
    )


@settings(max_examples=40, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**31 - 1))
def test_algorithms_agree_with_each_other(shape, seed):
    """Alg1 and Alg2 are algebraic rewrites — identical outputs."""
    n, h, v, p = shape
    part, x, w, labels = _case(seed, n, h, v, p)
    r1 = OutputLayerAlg1.from_full_weight(part, w).run(x, labels)
    r2 = OutputLayerAlg2.from_full_weight(part, w).run(x, labels)
    np.testing.assert_allclose(r1.losses, r2.losses, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(r1.grad_input, r2.grad_input, rtol=1e-9, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**31 - 1),
       shift=st.floats(min_value=-50.0, max_value=50.0))
def test_loss_invariant_to_logit_shift(shape, seed, shift):
    """Softmax shift invariance survives the distributed rescaling:
    adding a constant row vector to X·Wᵀ via a bias-like weight column
    is awkward, so shift X instead when h ≥ 1 by scaling — here we use
    the direct property: losses computed from shifted logits through
    the *reference* match the partitioned result of unshifted inputs
    only when shift = 0; instead verify the partitioned softmax
    normalizes (sums to 1) under extreme scaling."""
    n, h, v, p = shape
    part, x, w, labels = _case(seed, n, h, v, p)
    x = x * (1.0 + abs(shift))
    layer = OutputLayerAlg1.from_full_weight(part, w)
    state = layer.begin(x, labels)
    for rank in range(p):
        layer.pass_S(state, rank)
    layer.barrier_C1(state)
    # Reconstruct the corrected softmax from per-rank pieces (Eq. 5).
    pieces = []
    for rank in range(p):
        correction = (state.per_rank["scaled_sum"][rank] / state.shared["sum"])[:, None]
        pieces.append(state.per_rank["local_softmax"][rank] * correction)
    full = np.concatenate(pieces, axis=1)
    np.testing.assert_allclose(full.sum(axis=1), 1.0, rtol=1e-9)
    expected = softmax(x @ part.pad_weight(w).T)
    np.testing.assert_allclose(full, expected, rtol=1e-8, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**31 - 1))
def test_grad_weight_rows_for_unused_padding_push_down_only(shape, seed):
    """Padding rows never hold labels, so their weight gradient equals
    (softmax probability)ᵀ·X — meaning the rows receive pure
    'push-down' pressure; with one-hot mass zero the gradient must be
    softmaxᵀ X exactly."""
    n, h, v, p = shape
    part, x, w, labels = _case(seed, n, h, v, p)
    if part.padding == 0:
        return
    result = OutputLayerAlg2.from_full_weight(part, w).run(x, labels)
    gw = np.concatenate(result.grad_weight_shards, axis=0)
    probs = softmax(x @ part.pad_weight(w).T)
    expected_pad = probs[:, part.vocab_size:].T @ x
    np.testing.assert_allclose(gw[part.vocab_size:], expected_pad, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 10),
    h=st.integers(1, 8),
    v=st.integers(2, 30),
    p1=st.integers(1, 5),
    p2=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
def test_rank_count_does_not_change_results(n, h, v, p1, p2, seed):
    """Partitioning granularity is numerically irrelevant — as long as
    the padded vocabulary coincides, p1 ranks and p2 ranks agree."""
    rng = np.random.default_rng(seed)
    part1 = VocabPartition(v, p1)
    part2 = VocabPartition(v, p2)
    if part1.padded_size != part2.padded_size:
        return  # different padding → different model; not comparable
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)
    r1 = OutputLayerAlg2.from_full_weight(part1, w).run(x, labels)
    r2 = OutputLayerAlg2.from_full_weight(part2, w).run(x, labels)
    np.testing.assert_allclose(r1.losses, r2.losses, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(r1.grad_input, r2.grad_input, rtol=1e-9, atol=1e-11)
