"""Unit tests for vocabulary partitioning (paper §3, §6.1)."""

import numpy as np
import pytest

from repro.vocab import VocabPartition


class TestPadding:
    def test_pads_to_multiple_of_2p(self):
        part = VocabPartition(vocab_size=50, num_shards=4)
        assert part.padded_size == 56
        assert part.padded_size % (2 * 4) == 0

    def test_no_padding_when_aligned(self):
        part = VocabPartition(vocab_size=64, num_shards=4)
        assert part.padded_size == 64
        assert part.padding == 0

    def test_paper_example_256008_to_256032(self):
        # §6.1: on 24 devices the 256008-entry vocabulary pads to
        # 256032, a multiple of 48.
        part = VocabPartition(vocab_size=256008, num_shards=24)
        assert part.padded_size == 256032
        assert part.padded_size % 48 == 0

    def test_shard_size_even_split(self):
        part = VocabPartition(vocab_size=100, num_shards=8)
        assert part.shard_size * 8 == part.padded_size

    def test_single_shard(self):
        part = VocabPartition(vocab_size=100, num_shards=1)
        assert part.shard_size == part.padded_size == 100

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_vocab(self, bad):
        with pytest.raises(ValueError):
            VocabPartition(vocab_size=bad, num_shards=2)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive_shards(self, bad):
        with pytest.raises(ValueError):
            VocabPartition(vocab_size=16, num_shards=bad)


class TestShardRanges:
    def test_ranges_are_contiguous_and_cover(self):
        part = VocabPartition(vocab_size=50, num_shards=4)
        cursor = 0
        for rank in range(4):
            start, end = part.shard_range(rank)
            assert start == cursor
            assert end - start == part.shard_size
            cursor = end
        assert cursor == part.padded_size

    def test_shard_of_token_matches_ranges(self):
        part = VocabPartition(vocab_size=50, num_shards=4)
        for token in range(part.padded_size):
            rank = part.shard_of_token(token)
            start, end = part.shard_range(rank)
            assert start <= token < end

    def test_shard_of_token_out_of_range(self):
        part = VocabPartition(vocab_size=50, num_shards=4)
        with pytest.raises(ValueError):
            part.shard_of_token(part.padded_size)
        with pytest.raises(ValueError):
            part.shard_of_token(-1)

    def test_shard_range_bad_rank(self):
        part = VocabPartition(vocab_size=50, num_shards=4)
        with pytest.raises(ValueError):
            part.shard_range(4)


class TestWeightSplitting:
    def test_split_then_merge_roundtrip(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        weight = rng.normal(size=(50, 8))
        shards = part.split_weight(weight)
        assert len(shards) == 4
        assert all(s.shape == (part.shard_size, 8) for s in shards)
        merged = part.merge_shards(shards)
        np.testing.assert_array_equal(merged, weight)

    def test_pad_weight_zero_rows(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        weight = rng.normal(size=(50, 8))
        padded = part.pad_weight(weight)
        assert padded.shape == (56, 8)
        np.testing.assert_array_equal(padded[50:], 0.0)

    def test_pad_weight_wrong_rows(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        with pytest.raises(ValueError):
            part.pad_weight(rng.normal(size=(51, 8)))

    def test_merge_wrong_shard_count(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        shards = part.split_weight(rng.normal(size=(50, 8)))
        with pytest.raises(ValueError):
            part.merge_shards(shards[:3])

    def test_split_does_not_alias_input(self, rng):
        part = VocabPartition(vocab_size=16, num_shards=2)
        weight = rng.normal(size=(16, 4))
        shards = part.split_weight(weight)
        shards[0][0, 0] = 999.0
        assert weight[0, 0] != 999.0


class TestLabelHelpers:
    def test_local_label_mask_partitions_tokens(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        labels = rng.integers(0, 50, size=200)
        covered = np.zeros(200, dtype=int)
        for rank in range(4):
            covered += part.local_label_mask(labels, rank).astype(int)
        np.testing.assert_array_equal(covered, 1)

    def test_local_labels_shift(self):
        part = VocabPartition(vocab_size=64, num_shards=4)
        labels = np.array([0, 16, 17, 33, 63])
        local = part.local_labels(labels, 1)
        mask = part.local_label_mask(labels, 1)
        assert mask.tolist() == [False, True, True, False, False]
        assert local[1] == 0 and local[2] == 1

    def test_one_hot_shard_rows(self):
        part = VocabPartition(vocab_size=64, num_shards=4)
        labels = np.array([0, 16, 31, 63])
        shard = part.one_hot_shard(labels, 1)
        assert shard.shape == (4, 16)
        assert shard[1, 0] == 1.0 and shard[2, 15] == 1.0
        assert shard.sum() == 2.0

    def test_one_hot_shards_sum_to_full_matrix(self, rng):
        part = VocabPartition(vocab_size=50, num_shards=4)
        labels = rng.integers(0, 50, size=30)
        full = np.concatenate(
            [part.one_hot_shard(labels, r) for r in range(4)], axis=1
        )
        assert full.shape == (30, part.padded_size)
        np.testing.assert_array_equal(full.sum(axis=1), 1.0)
        np.testing.assert_array_equal(np.argmax(full, axis=1), labels)
