"""Tests for the fused streaming output layer (§7 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vocab import FusedOutputLayer, OutputLayerAlg2, VocabPartition
from repro.vocab.reference import reference_output_layer


def _case(rng, n=19, h=12, v=100, p=4):
    part = VocabPartition(v, p)
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)
    return part, x, w, labels


class TestExactness:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 25, 1024])
    def test_matches_reference_any_block_size(self, rng, block_size):
        part, x, w, labels = _case(rng)
        ref_losses, ref_gx, ref_gw = reference_output_layer(
            x, part.pad_weight(w), labels
        )
        layer = FusedOutputLayer.from_full_weight(part, w, block_size=block_size)
        result = layer.run(x, labels)
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-11, atol=1e-11)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-10, atol=1e-11)
        np.testing.assert_allclose(
            np.concatenate(result.grad_weight_shards, axis=0), ref_gw,
            rtol=1e-10, atol=1e-11,
        )

    def test_matches_alg2_exactly(self, rng):
        part, x, w, labels = _case(rng)
        fused = FusedOutputLayer.from_full_weight(part, w, block_size=5).run(x, labels)
        alg2 = OutputLayerAlg2.from_full_weight(part, w).run(x, labels)
        np.testing.assert_allclose(fused.losses, alg2.losses, rtol=1e-11)
        np.testing.assert_allclose(fused.grad_input, alg2.grad_input, rtol=1e-10,
                                   atol=1e-12)

    def test_single_barrier(self, rng):
        part, x, w, labels = _case(rng)
        result = FusedOutputLayer.from_full_weight(part, w).run(x, labels)
        assert result.num_barriers == 1
        assert len([c for c in result.comm_log if not c.startswith("C0")]) == 1

    def test_extreme_logits_stable(self, rng):
        part, x, w, labels = _case(rng)
        x = x * 60.0
        layer = FusedOutputLayer.from_full_weight(part, w, block_size=4)
        result = layer.run(x, labels)
        ref_losses, _, _ = reference_output_layer(x, part.pad_weight(w), labels)
        assert np.all(np.isfinite(result.losses))
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-9, atol=1e-9)


class TestStreaming:
    def test_peak_block_bounded(self, rng):
        part, x, w, labels = _case(rng, v=200, p=2)
        layer = FusedOutputLayer.from_full_weight(part, w, block_size=8)
        layer.run(x, labels)
        assert layer.max_block_columns <= 8

    def test_block_size_validation(self, rng):
        part, x, w, labels = _case(rng)
        with pytest.raises(ValueError):
            FusedOutputLayer.from_full_weight(part, w, block_size=0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 10),
    h=st.integers(1, 8),
    v=st.integers(2, 60),
    p=st.integers(1, 5),
    block=st.integers(1, 16),
    seed=st.integers(0, 2**31 - 1),
)
def test_fused_equals_reference_property(n, h, v, p, block, seed):
    rng = np.random.default_rng(seed)
    part = VocabPartition(v, p)
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)
    ref_losses, ref_gx, ref_gw = reference_output_layer(x, part.pad_weight(w), labels)
    result = FusedOutputLayer.from_full_weight(part, w, block_size=block).run(x, labels)
    np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-8, atol=1e-9)
    np.testing.assert_allclose(
        np.concatenate(result.grad_weight_shards, axis=0), ref_gw,
        rtol=1e-8, atol=1e-9,
    )
