"""Tests for the vocabulary-parallel input embedding (Appendix C)."""

import numpy as np
import pytest

from repro.vocab import VocabParallelEmbedding, VocabPartition
from repro.vocab.reference import reference_embedding


def _case(rng, n=31, h=12, v=50, p=4):
    part = VocabPartition(v, p)
    weight = rng.normal(size=(v, h))
    tokens = rng.integers(0, v, size=n)
    emb = VocabParallelEmbedding.from_full_weight(part, weight)
    return part, weight, tokens, emb


class TestForward:
    def test_matches_reference(self, rng):
        part, weight, tokens, emb = _case(rng)
        output, comm = emb.forward(tokens)
        expected, _ = reference_embedding(tokens, weight)
        np.testing.assert_allclose(output, expected, rtol=1e-14)
        assert comm == ["all_reduce_sum"]

    def test_local_partials_disjoint(self, rng):
        part, weight, tokens, emb = _case(rng)
        partials = [emb.forward_local(tokens, r) for r in range(4)]
        nonzero_counts = sum((p != 0).any(axis=1).astype(int) for p in partials)
        # Each token row produced by at most one rank.
        assert nonzero_counts.max() <= 1

    def test_partials_sum_to_output(self, rng):
        part, weight, tokens, emb = _case(rng)
        partials = [emb.forward_local(tokens, r) for r in range(4)]
        output, _ = emb.forward(tokens)
        np.testing.assert_allclose(sum(partials), output, rtol=1e-14)

    def test_rejects_out_of_range_tokens(self, rng):
        part, weight, tokens, emb = _case(rng)
        tokens[0] = part.vocab_size
        with pytest.raises(ValueError):
            emb.forward_local(tokens, 0)


class TestBackward:
    def test_matches_reference_scatter_add(self, rng):
        part, weight, tokens, emb = _case(rng)
        grad_out = rng.normal(size=(tokens.shape[0], 12))
        _, ref_grad = reference_embedding(tokens, part.pad_weight(weight), grad_out)
        shard_grads, comm = emb.backward(tokens, grad_out)
        merged = np.concatenate(shard_grads, axis=0)
        np.testing.assert_allclose(merged, ref_grad, rtol=1e-14)
        assert comm == ["broadcast"]

    def test_repeated_tokens_accumulate(self, rng):
        part = VocabPartition(8, 2)
        weight = rng.normal(size=(8, 4))
        emb = VocabParallelEmbedding.from_full_weight(part, weight)
        tokens = np.array([3, 3, 3])
        grad_out = np.ones((3, 4))
        shard_grads, _ = emb.backward(tokens, grad_out)
        merged = np.concatenate(shard_grads, axis=0)
        np.testing.assert_array_equal(merged[3], 3.0)
        assert np.count_nonzero(merged.sum(axis=1)) == 1

    def test_bad_grad_shape(self, rng):
        part, weight, tokens, emb = _case(rng)
        with pytest.raises(ValueError):
            emb.backward_local(tokens, np.zeros((tokens.shape[0], 5)), 0)


class TestConstruction:
    def test_wrong_shard_count(self, rng):
        part = VocabPartition(48, 4)
        shards = part.split_weight(rng.normal(size=(48, 8)))
        with pytest.raises(ValueError):
            VocabParallelEmbedding(part, shards[:2])

    def test_wrong_shard_shape(self, rng):
        part = VocabPartition(48, 4)
        shards = part.split_weight(rng.normal(size=(48, 8)))
        shards[0] = shards[0][:, :-1]
        with pytest.raises(ValueError):
            VocabParallelEmbedding(part, shards)
