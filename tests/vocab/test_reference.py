"""Tests for the single-device reference implementation."""

import numpy as np
import pytest

from repro.vocab.reference import (
    log_softmax,
    reference_embedding,
    reference_output_layer,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(7, 13))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), 1.0, rtol=1e-12)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(5, 9))
        shifted = logits + 123.0
        np.testing.assert_allclose(softmax(logits), softmax(shifted), rtol=1e-10)

    def test_stable_at_large_magnitudes(self):
        logits = np.array([[1000.0, 1000.0, -1000.0]])
        probs = softmax(logits)
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs[0, :2], 0.5, rtol=1e-12)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            np.exp(log_softmax(logits)), softmax(logits), rtol=1e-12
        )


class TestOutputLayerGradients:
    def test_finite_difference_grad_x(self, rng):
        n, h, v = 4, 5, 7
        x = rng.normal(size=(n, h))
        w = rng.normal(size=(v, h))
        labels = rng.integers(0, v, size=n)
        _, grad_x, _ = reference_output_layer(x, w, labels)
        eps = 1e-6
        for i in range(n):
            for j in range(h):
                bumped = x.copy()
                bumped[i, j] += eps
                up, _, _ = reference_output_layer(bumped, w, labels)
                bumped[i, j] -= 2 * eps
                down, _, _ = reference_output_layer(bumped, w, labels)
                numeric = (up.sum() - down.sum()) / (2 * eps)
                assert abs(numeric - grad_x[i, j]) < 1e-6

    def test_finite_difference_grad_w(self, rng):
        n, h, v = 3, 4, 6
        x = rng.normal(size=(n, h))
        w = rng.normal(size=(v, h))
        labels = rng.integers(0, v, size=n)
        _, _, grad_w = reference_output_layer(x, w, labels)
        eps = 1e-6
        for i in range(v):
            for j in range(h):
                bumped = w.copy()
                bumped[i, j] += eps
                up, _, _ = reference_output_layer(x, bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _, _ = reference_output_layer(x, bumped, labels)
                numeric = (up.sum() - down.sum()) / (2 * eps)
                assert abs(numeric - grad_w[i, j]) < 1e-6

    def test_loss_is_nll_of_label(self, rng):
        n, h, v = 6, 4, 9
        x = rng.normal(size=(n, h))
        w = rng.normal(size=(v, h))
        labels = rng.integers(0, v, size=n)
        losses, _, _ = reference_output_layer(x, w, labels)
        probs = softmax(x @ w.T)
        np.testing.assert_allclose(
            losses, -np.log(probs[np.arange(n), labels]), rtol=1e-10
        )

    def test_rejects_bad_labels(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(5, 4))
        with pytest.raises(ValueError):
            reference_output_layer(x, w, np.array([0, 1, 5]))

    def test_rejects_mismatched_width(self, rng):
        with pytest.raises(ValueError):
            reference_output_layer(
                rng.normal(size=(3, 4)), rng.normal(size=(5, 3)), np.zeros(3, int)
            )


class TestReferenceEmbedding:
    def test_gather(self, rng):
        weight = rng.normal(size=(10, 3))
        tokens = np.array([0, 9, 4])
        output, grad = reference_embedding(tokens, weight)
        np.testing.assert_array_equal(output, weight[tokens])
        assert grad is None

    def test_rejects_bad_tokens(self, rng):
        weight = rng.normal(size=(10, 3))
        with pytest.raises(ValueError):
            reference_embedding(np.array([10]), weight)
