"""Tests for tied vocabulary layers (§6.1)."""

import numpy as np
import pytest

from repro.vocab import VocabPartition
from repro.vocab.reference import reference_embedding, reference_output_layer
from repro.vocab.tied import TiedVocabLayers


@pytest.fixture
def case(rng):
    v, h, p, n = 60, 10, 4, 25
    part = VocabPartition(v, p)
    weight = rng.normal(size=(v, h))
    tokens = rng.integers(0, v, size=n)
    labels = rng.integers(0, v, size=n)
    x = rng.normal(size=(n, h))
    return part, weight, tokens, labels, x


class TestTiedLayers:
    @pytest.mark.parametrize("algorithm", [1, 2])
    def test_embed_and_output_match_references(self, case, algorithm):
        part, weight, tokens, labels, x = case
        tied = TiedVocabLayers.from_full_weight(part, weight, algorithm)
        np.testing.assert_allclose(
            tied.embed(tokens), reference_embedding(tokens, weight)[0], rtol=1e-14
        )
        result = tied.output(x, labels)
        ref_losses, ref_gx, _ = reference_output_layer(
            x, part.pad_weight(weight), labels
        )
        np.testing.assert_allclose(result.losses, ref_losses, rtol=1e-11)
        np.testing.assert_allclose(result.grad_input, ref_gx, rtol=1e-11, atol=1e-12)

    def test_combined_gradient_is_sum_of_paths(self, case, rng):
        part, weight, tokens, labels, x = case
        tied = TiedVocabLayers.from_full_weight(part, weight)
        result = tied.output(x, labels)
        embed_grad = rng.normal(size=x.shape)
        combined = tied.combined_grad_shards(tokens, embed_grad, result)
        merged = np.concatenate(combined, axis=0)
        _, _, ref_out_gw = reference_output_layer(x, part.pad_weight(weight), labels)
        _, ref_in_gw = reference_embedding(
            tokens, part.pad_weight(weight), embed_grad
        )
        np.testing.assert_allclose(merged, ref_out_gw + ref_in_gw, rtol=1e-11,
                                   atol=1e-12)

    def test_shards_actually_shared(self, case):
        part, weight, tokens, labels, x = case
        tied = TiedVocabLayers.from_full_weight(part, weight)
        assert tied.embedding.weight_shards[0] is tied.weight_shards[0]
        tied.weight_shards[0][0, 0] += 1.0
        # The embedding sees the mutation — one tensor, two layers.
        assert tied.embedding.weight_shards[0][0, 0] == tied.weight_shards[0][0, 0]

    def test_no_extra_communication(self, case, rng):
        """The tied gradient combination is rank-local: the only comm
        in the whole step is C0/C1(/C2) + the input all-reduce/bcast."""
        part, weight, tokens, labels, x = case
        tied = TiedVocabLayers.from_full_weight(part, weight, algorithm=2)
        result = tied.output(x, labels)
        assert len(result.comm_log) == 2  # C0 + C1 only

    def test_algorithm_validation(self, case):
        part, weight, *_ = case
        with pytest.raises(ValueError):
            TiedVocabLayers.from_full_weight(part, weight, algorithm=3)
