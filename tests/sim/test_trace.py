"""Tests for the ASCII timeline renderer."""

import pytest

from repro.scheduling import generate_1f1b, generate_1f1b_vocab
from repro.sim import execute_schedule, render_order, render_timeline

from tests.sim.test_executor import UnitRuntime


@pytest.fixture
def result():
    schedule = generate_1f1b(4, 6, num_layers=4)
    return execute_schedule(schedule, UnitRuntime())


class TestRenderTimeline:
    def test_one_row_per_device(self, result):
        text = render_timeline(result, width=80)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 devices
        assert all(line.startswith("device") for line in lines[1:])

    def test_width_respected(self, result):
        text = render_timeline(result, width=60)
        for line in text.splitlines()[1:]:
            body = line.split("|")[1]
            assert len(body) == 60

    def test_type_mode_characters(self, result):
        text = render_timeline(result, width=80, mode="type")
        assert "F" in text and "B" in text

    def test_microbatch_mode_digits(self, result):
        text = render_timeline(result, width=80, mode="microbatch")
        assert any(c.isdigit() for c in text)

    def test_idle_shown_as_dots(self, result):
        # Warmup leaves the later devices idle at the start.
        text = render_timeline(result, width=80)
        last_device_row = text.splitlines()[-1].split("|")[1]
        assert last_device_row.startswith(".")

    def test_vocab_passes_rendered(self):
        schedule = generate_1f1b_vocab(4, 6, 4, algorithm=1)
        result = execute_schedule(schedule, UnitRuntime())
        text = render_timeline(result, width=160, mode="type")
        assert "S" in text and "T" in text

    def test_time_range_window(self, result):
        text = render_timeline(result, width=40, time_range=(5.0, 10.0))
        assert "[5, 10]" in text.splitlines()[0]

    def test_invalid_args(self, result):
        with pytest.raises(ValueError):
            render_timeline(result, width=0)
        with pytest.raises(ValueError):
            render_timeline(result, mode="nope")
        with pytest.raises(ValueError):
            render_timeline(result, time_range=(5.0, 5.0))


class TestRenderOrder:
    def test_lists_first_microbatches(self):
        schedule = generate_1f1b(2, 8, num_layers=2)
        text = render_order(schedule, max_microbatch=2)
        assert "F[0]@0" in text
        assert "F[7]@0" not in text
