"""Tests for the analysis subpackage (bubbles, balance, block rendering)."""

import pytest

from repro.analysis import (
    bubble_breakdown,
    compute_balance,
    memory_balance,
    render_building_block,
)
from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import build_schedule
from repro.scheduling.onefoneb import build_1f1b_block, build_1f1b_vocab_block
from repro.sim import RuntimeModel, SimulationSetup, execute_schedule, memory_report


@pytest.fixture
def setups():
    model = ModelConfig(
        num_layers=16,
        hidden_size=1024,
        num_attention_heads=8,
        seq_length=1024,
        vocab_size=256 * 1024,
    )
    return SimulationSetup(model, ParallelConfig(pipeline_size=4, num_microbatches=24))


def _run(setup, method):
    schedule = build_schedule(method, setup)
    return execute_schedule(schedule, RuntimeModel(setup, schedule))


class TestBubbleBreakdown:
    def test_components_sum_to_span(self, setups):
        result = _run(setups, "baseline")
        for device in range(4):
            b = bubble_breakdown(result, device)
            assert b.busy + b.total_idle == pytest.approx(b.span, rel=1e-9)

    def test_device0_warmup_free_last_device_warmup_heavy(self, setups):
        result = _run(setups, "baseline")
        first = bubble_breakdown(result, 0)
        last = bubble_breakdown(result, 3)
        assert first.warmup == pytest.approx(0.0, abs=1e-9)
        assert last.warmup > 0.0

    def test_vocab_kills_steady_state_stalls(self, setups):
        """The paper's core effect, isolated: at 256k vocabulary the
        baseline's inner devices stall every interval; Vocab-2's don't."""
        baseline = _run(setups, "baseline")
        vocab = _run(setups, "vocab-2")
        base_stall = bubble_breakdown(baseline, 1).stall_fraction
        vocab_stall = bubble_breakdown(vocab, 1).stall_fraction
        assert vocab_stall < 0.5 * base_stall

    def test_invalid_device(self, setups):
        result = _run(setups, "baseline")
        with pytest.raises(ValueError):
            bubble_breakdown(result, 9)


class TestBalance:
    def test_compute_balance_baseline_vs_vocab(self, setups):
        base = compute_balance(_run(setups, "baseline"))
        vocab = compute_balance(_run(setups, "vocab-1"))
        assert base.imbalance > 1.3     # output stage dominates
        assert vocab.imbalance < 1.05   # balanced work

    def test_memory_balance(self, setups):
        result = _run(setups, "vhalf-vocab-1")
        report = memory_report(result, setups)
        balance = memory_balance(report)
        assert balance.imbalance < 1.1
        assert balance.spread == pytest.approx(report.spread)

    def test_mean_and_spread(self):
        from repro.analysis import BalanceReport

        report = BalanceReport(values=[1.0, 2.0, 3.0])
        assert report.mean == pytest.approx(2.0)
        assert report.imbalance == pytest.approx(1.5)
        assert report.spread == pytest.approx(2.0)


class TestBlockRendering:
    def test_1f1b_block_renders(self):
        text = render_building_block(build_1f1b_block(4))
        lines = text.splitlines()
        assert len(lines) == 5
        assert "interval=3" in lines[0]
        assert "F" in text and "B" in text

    def test_vocab_block_includes_st(self):
        text = render_building_block(build_1f1b_vocab_block(4, algorithm=1))
        assert "S" in text and "T" in text

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_building_block(build_1f1b_block(2), width_per_interval=0)
