"""End-to-end validation of the paper's headline scheduling claims.

These are the statements the whole paper hangs on, checked on executed
schedules (not just block analysis):

* 1F1B stores exactly ``p`` microbatches on device 0; Vocabulary
  Parallelism adds exactly one per communication barrier (Figure 10);
* the interlaced pipeline stores ≈1.5× (Appendix B.1);
* V-Half's activation memory is balanced and roughly half of 1F1B's;
* vocabulary-parallel schedules stay near bubble-free as vocabulary
  grows while the baseline's bubbles explode (Figures 11/13);
* removing the interlaced sync all-reduces recovers ≈10 % at 32 GPUs
  (Appendix B.2).
"""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.mfu import mfu
from repro.harness.experiments import build_schedule, run_method
from repro.harness.runner import run_interlaced_ablation
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    live_microbatch_peaks,
    memory_report,
)


def _setup(p=4, m=24, vocab=64 * 1024, seq=1024, layers_per_device=4):
    model = ModelConfig(
        num_layers=layers_per_device * p,
        hidden_size=1024,
        num_attention_heads=8,
        seq_length=seq,
        vocab_size=vocab,
    )
    parallel = ParallelConfig(pipeline_size=p, num_microbatches=m)
    return SimulationSetup(model, parallel)


def _run(method, setup, refine=True):
    schedule = build_schedule(method, setup, refine=refine)
    runtime = RuntimeModel(setup, schedule)
    return execute_schedule(schedule, runtime)


class TestLiveMicrobatchClaims:
    @pytest.mark.parametrize("p", [4, 8])
    def test_1f1b_device0_holds_p(self, p):
        setup = _setup(p=p)
        result = _run("baseline", setup)
        assert live_microbatch_peaks(result)[0] == pytest.approx(p)

    @pytest.mark.parametrize("p", [4, 8])
    def test_vocab1_holds_p_plus_2(self, p):
        setup = _setup(p=p)
        result = _run("vocab-1", setup)
        assert live_microbatch_peaks(result)[0] == pytest.approx(p + 2)

    @pytest.mark.parametrize("p", [4, 8])
    def test_vocab2_holds_p_plus_1(self, p):
        setup = _setup(p=p)
        result = _run("vocab-2", setup)
        assert live_microbatch_peaks(result)[0] == pytest.approx(p + 1)

    @pytest.mark.parametrize("p", [4, 8])
    def test_interlaced_holds_1_5p(self, p):
        setup = _setup(p=p)
        result = _run("interlaced", setup)
        assert live_microbatch_peaks(result)[0] == pytest.approx(
            p + -(-p // 2), abs=0.01
        )

    def test_vhalf_balanced_and_about_half(self):
        setup = _setup(p=4, layers_per_device=4)
        base = _run("baseline", setup)
        vhalf = _run("vhalf-baseline", setup)
        base_peaks = live_microbatch_peaks(base)
        vhalf_peaks = live_microbatch_peaks(vhalf)
        assert max(vhalf_peaks) - min(vhalf_peaks) <= 1.0
        assert max(vhalf_peaks) <= 0.75 * max(base_peaks)


class TestMemoryBalance:
    def test_vocab_parallel_removes_parameter_imbalance(self):
        setup = _setup(p=4, vocab=256 * 1024)
        base_report = memory_report(_run("baseline", setup), setup)
        vocab_report = memory_report(_run("vocab-2", setup), setup)
        base_params = base_report.per_device_params
        vocab_params = vocab_report.per_device_params
        assert max(base_params) - min(base_params) > 5 * (
            max(vocab_params) - min(vocab_params)
        )

    def test_vhalf_vocab_fully_balanced(self):
        setup = _setup(p=4, vocab=256 * 1024)
        report = memory_report(_run("vhalf-vocab-1", setup), setup)
        # Paper §6.4: balanced within a small constant (positional
        # embedding on device 0).
        assert report.spread < 0.1 * report.peak

    def test_vhalf_baseline_severely_imbalanced_at_large_vocab(self):
        setup = _setup(p=4, vocab=256 * 1024)
        report = memory_report(_run("vhalf-baseline", setup), setup)
        assert report.spread > 0.3 * report.peak

    def test_vocab_peak_grows_slower_than_baseline(self):
        small, large = _setup(p=4, vocab=32 * 1024), _setup(p=4, vocab=256 * 1024)
        base_growth = (
            memory_report(_run("baseline", large), large).peak
            - memory_report(_run("baseline", small), small).peak
        )
        vocab_growth = (
            memory_report(_run("vocab-1", large), large).peak
            - memory_report(_run("vocab-1", small), small).peak
        )
        assert vocab_growth < 0.5 * base_growth


class TestThroughputShapes:
    def test_baseline_mfu_collapses_with_vocab(self):
        small, large = _setup(vocab=32 * 1024), _setup(vocab=512 * 1024)
        mfu_small = _mfu("baseline", small)
        mfu_large = _mfu("baseline", large)
        assert mfu_large < 0.7 * mfu_small

    def test_vocab_parallel_mfu_does_not_collapse(self):
        """At this toy scale fixed overheads make MFU *rise* slightly
        with vocabulary (more useful FLOPs against the same launch
        costs); the paper-scale flatness is validated against Table 5
        in tests/harness.  The claim here: no baseline-style collapse.
        """
        small, large = _setup(vocab=32 * 1024), _setup(vocab=512 * 1024)
        for method in ("vocab-1", "vocab-2"):
            ratio = _mfu(method, large) / _mfu(method, small)
            assert 0.9 < ratio < 1.5

    def test_vocab_beats_baseline_at_large_vocab(self):
        setup = _setup(vocab=512 * 1024)
        base = _mfu("baseline", setup)
        assert _mfu("vocab-1", setup) > 1.3 * base
        assert _mfu("vocab-2", setup) > 1.3 * base

    def test_redis_between_baseline_and_vocab(self):
        setup = _setup(vocab=512 * 1024)
        base, redis, vocab = (
            _mfu("baseline", setup), _mfu("redis", setup), _mfu("vocab-1", setup)
        )
        assert base < redis < vocab

    def test_vocab_bubbles_small(self):
        setup = _setup(p=4, m=48, vocab=256 * 1024)
        result = _run("vocab-2", setup)
        assert result.mean_bubble_fraction() < 0.18


class TestInterlacedAblation:
    def test_appendix_b_shape(self):
        result = run_interlaced_ablation(num_microbatches=48)
        # B.2: removing sync all-reduces recovers ~11 % at 32 GPUs.
        assert 4.0 < result.speedup_percent < 16.0
        # B.1: 1.5× activation memory vs 1F1B.
        assert result.activation_memory_factor == pytest.approx(1.5, abs=0.2)

    def test_multi_node_interlaced_loses_to_vocab(self):
        """§6.3: Vocabulary Parallelism beats interlaced across nodes."""
        setup = _setup(p=16, m=32, vocab=256 * 1024)
        assert _mfu("vocab-1", setup) > _mfu("interlaced", setup)


def _mfu(method, setup):
    result = _run(method, setup)
    return mfu(
        setup.model, setup.parallel, setup.hardware, result.iteration_time
    )
