"""Checkpoint invariants of the resident :class:`LevelState`.

The delta path mutates the checkpointed arrays in place behind an undo
log, so the properties that keep it safe to leave resident inside the
planner's graph cache are: re-applying the same delta is idempotent,
rollback restores the baseline bit for bit, and interleaving delta
queries with full executions (``execute`` / ``execute_many`` / the
batched summary path) never corrupts either side.
"""

import random

import pytest

import repro.sim.compiled as compiled_mod
from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import build_schedule
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    compile_schedule,
)

MODEL = ModelConfig(
    num_layers=16,
    hidden_size=512,
    num_attention_heads=8,
    seq_length=512,
    vocab_size=32 * 1024,
)
PARALLEL = ParallelConfig(pipeline_size=4, num_microbatches=6, microbatch_size=1)


@pytest.fixture(scope="module")
def setup() -> SimulationSetup:
    return SimulationSetup(MODEL, PARALLEL)


def _graph(setup, method="vocab-1"):
    schedule = build_schedule(method, setup, refine=False)
    runtime = RuntimeModel(setup, schedule)
    return schedule, runtime, compile_schedule(schedule, runtime)


def _snapshot(state):
    return (
        list(state.dur),
        list(state.lag),
        list(state.ready),
        list(state.end),
        tuple(state.busy),
    )


class TestIdempotence:
    def test_same_delta_twice_is_identical(self, setup):
        _, _, graph = _graph(setup)
        perturbation = graph.device_perturbation(2, 1.4)
        first = graph.execute_delta(perturbation)
        second = graph.execute_delta(perturbation)
        assert first.pass_times == second.pass_times
        assert first.collective_times == second.collective_times
        assert first.iteration_time == second.iteration_time
        assert first.device_busy == second.device_busy
        summary_a = graph.execute_delta_summary(perturbation)
        summary_b = graph.execute_delta_summary(perturbation)
        assert summary_a == summary_b

    def test_queries_price_absolute_not_compounding(self, setup):
        """Two what-ifs with the same factor answer the same question —
        the second is not 'factor squared' on top of the first."""
        _, _, graph = _graph(setup)
        perturbation = graph.device_perturbation(1, 2.0)
        first = graph.execute_delta_summary(perturbation)
        second = graph.execute_delta_summary(perturbation)
        assert first.iteration_time == second.iteration_time


class TestRollback:
    def test_rollback_restores_baseline_exactly(self, setup):
        _, _, graph = _graph(setup)
        state = graph.checkpoint()
        baseline = _snapshot(state)
        perturbation = graph.device_perturbation(0, 3.0)
        graph.execute_delta(perturbation, rollback=False)
        assert not state.pristine
        assert _snapshot(state) != baseline
        state.rollback()
        assert state.pristine
        assert _snapshot(state) == baseline

    def test_rollback_is_idempotent(self, setup):
        _, _, graph = _graph(setup)
        state = graph.checkpoint()
        baseline = _snapshot(state)
        state.rollback()
        state.rollback()
        assert _snapshot(state) == baseline

    def test_composed_deltas_roll_back_to_baseline(self, setup):
        """rollback undoes the whole composition, not just the last
        delta — and a default (rollback=True) query after a kept one
        also returns the state to the baseline."""
        schedule, runtime, graph = _graph(setup)
        state = graph.checkpoint()
        baseline = _snapshot(state)
        first = graph.device_perturbation(0, 1.5)
        second = graph.device_perturbation(3, 0.5)
        graph.execute_delta(first, rollback=False)
        composed = graph.execute_delta(second, rollback=False)
        # Ground truth for the composition: a fresh full execution.
        fresh = compile_schedule(schedule, runtime)
        dur = list(fresh.durations)
        for i, value in first.durations:
            dur[i] = value
        for i, value in second.durations:
            dur[i] = value
        full = fresh.execute_many([dur])[0]
        assert composed.pass_times == full.pass_times
        assert composed.iteration_time == full.iteration_time
        state.rollback()
        assert _snapshot(state) == baseline
        graph.execute_delta(first, rollback=False)
        graph.execute_delta(second)  # default rollback → baseline
        assert state.pristine
        assert _snapshot(state) == baseline

    def test_graph_binding_never_mutated(self, setup):
        _, _, graph = _graph(setup)
        durations = list(graph.durations)
        lags = list(graph.succ_lag)
        graph.execute_delta(graph.device_perturbation(1, 2.0), rollback=False)
        assert graph.durations == durations
        assert graph.succ_lag == lags
        graph.checkpoint().rollback()


class TestInterleaving:
    def test_delta_full_delta_is_stable(self, setup):
        _, _, graph = _graph(setup)
        perturbation = graph.device_perturbation(2, 1.8)
        first = graph.execute_delta(perturbation)
        baseline = graph.execute()
        rows = [list(graph.durations)] * 2
        for result in graph.execute_many(rows):
            assert result.pass_times == baseline.pass_times
        again = graph.execute_delta(perturbation)
        assert first.pass_times == again.pass_times
        assert graph.execute().pass_times == baseline.pass_times

    def test_rebind_drops_stale_checkpoint(self, setup):
        """A rebound graph prices the new runtime — its checkpoint is
        rebuilt, and the original graph's state is untouched."""

        class Doubled:
            def __init__(self, inner):
                self.inner = inner

            def pass_duration(self, p):
                return 2.0 * self.inner.pass_duration(p)

            def collective_duration(self, kind):
                return 2.0 * self.inner.collective_duration(kind)

            def p2p_duration(self, src, dst):
                return 2.0 * self.inner.p2p_duration(src, dst)

        _, runtime, graph = _graph(setup)
        state = graph.checkpoint()
        rebound = graph.rebind(Doubled(runtime))
        rebound_state = rebound.checkpoint()
        assert rebound_state is not state
        assert rebound_state.dur != state.dur
        perturbation = rebound.device_perturbation(0, 1.5)
        fresh = compile_schedule(rebound.schedule, Doubled(runtime))
        dur = list(fresh.durations)
        for i, value in perturbation.durations:
            dur[i] = value
        assert (
            rebound.execute_delta(perturbation).pass_times
            == fresh.execute_many([dur])[0].pass_times
        )
        assert graph.checkpoint() is state


class TestK1FastPath:
    """execute_many's K=1 lane reuses the resident LevelState; results
    stay pinned — bit for bit — to the batched (and plain-sweep) path."""

    def _rows(self, graph, seed):
        rng = random.Random(seed)
        row = list(graph.durations)
        device = rng.randrange(len(graph.device_nodes))
        factor = rng.uniform(0.5, 2.0)
        for i in graph.device_nodes[device]:
            row[i] = factor * row[i]
        return row

    def test_k1_matches_batched_path(self, setup):
        if compiled_mod._np is None:
            pytest.skip("batched path needs NumPy")
        _, _, graph = _graph(setup, "vhalf-vocab-1")
        graph.checkpoint()
        row = self._rows(graph, "k1")
        via_delta = graph.execute_many([row])[0]
        assert graph.checkpoint().pristine  # resident state survives
        batched = graph.execute_many([row, row])  # K=2 → vectorized lane
        for result in batched:
            assert via_delta.pass_times == result.pass_times
            assert via_delta.collective_times == result.collective_times
            assert via_delta.iteration_time == result.iteration_time
            assert via_delta.device_busy == result.device_busy

    def test_k1_matches_plain_sweep_without_checkpoint(self, setup):
        schedule, runtime, graph = _graph(setup, "redis")
        row = self._rows(graph, "sweep")
        cold = compile_schedule(schedule, runtime)
        plain = cold.execute_many([row])[0]  # no resident state
        graph.checkpoint()
        via_delta = graph.execute_many([row])[0]
        assert via_delta.pass_times == plain.pass_times
        assert via_delta.iteration_time == plain.iteration_time
        assert via_delta.device_busy == plain.device_busy

    def test_k1_summary_matches(self, setup):
        _, _, graph = _graph(setup, "interlaced")
        graph.checkpoint()
        row = self._rows(graph, "summary")
        with_state = graph.execute_many_summary([row])[0]
        graph._levelstate = None
        without_state = graph.execute_many_summary([row])[0]
        assert with_state == without_state
