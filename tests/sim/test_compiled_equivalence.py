"""Compiled executor ⇔ reference executor equivalence suite.

The compiled engine (:mod:`repro.sim.compiled`) is a pure performance
refactor: for every schedule family and both execution modes it must
return **bit-identical** results to the frozen pre-refactor path
(:mod:`repro.sim.reference_executor`) — same pass times, collective
times, iteration time and busy fractions, float for float.  These
tests hold the two implementations together; any intentional semantic
change must land in both (and is probably wrong — the reference is
frozen by design).
"""

import dataclasses

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import KNOWN_METHODS, build_schedule
from repro.scheduling import Pass, PassType, generate_1f1b
from repro.sim import (
    DeadlockError,
    RuntimeModel,
    SimulationSetup,
    compile_schedule,
    execute_schedule,
    simulation_engine,
)
from repro.sim.reference_executor import (
    reference_execute_schedule,
    reference_execute_schedule_dataflow,
    reference_refine_schedule_order,
)

#: Small enough to keep the suite fast, big enough that every family
#: (incl. V-Half's 2p-divisibility) instantiates and the dataflow mode
#: actually reorders passes.
MODEL = ModelConfig(
    num_layers=16,
    hidden_size=512,
    num_attention_heads=8,
    seq_length=512,
    vocab_size=32 * 1024,
)
PARALLEL = ParallelConfig(pipeline_size=4, num_microbatches=6, microbatch_size=1)


@pytest.fixture(scope="module")
def setup() -> SimulationSetup:
    return SimulationSetup(MODEL, PARALLEL)


def _schedule_and_runtime(method, setup):
    schedule = build_schedule(method, setup, refine=False)
    return schedule, RuntimeModel(setup, schedule)


def assert_results_identical(compiled, reference):
    """Every observable of ExecutionResult, compared exactly (==)."""
    assert compiled.pass_times == reference.pass_times
    assert compiled.collective_times == reference.collective_times
    assert compiled.iteration_time == reference.iteration_time
    assert compiled.device_busy == reference.device_busy
    for device in range(len(reference.device_busy)):
        assert compiled.bubble_fraction(device) == reference.bubble_fraction(device)
        assert compiled.passes_on(device) == reference.passes_on(device)


@pytest.mark.parametrize("method", KNOWN_METHODS)
class TestEquivalence:
    def test_in_order_bit_identical(self, method, setup):
        schedule, runtime = _schedule_and_runtime(method, setup)
        compiled = compile_schedule(schedule, runtime).execute()
        reference = reference_execute_schedule(schedule, runtime)
        assert_results_identical(compiled, reference)

    @pytest.mark.parametrize("lookahead", [1, 4, 16])
    def test_dataflow_bit_identical(self, method, lookahead, setup):
        schedule, runtime = _schedule_and_runtime(method, setup)
        mode = "zero-bubble" if schedule.has_weight_passes else "strict"
        compiled = compile_schedule(schedule, runtime).execute_dataflow(
            lookahead=lookahead, mode=mode
        )
        reference = reference_execute_schedule_dataflow(
            schedule, runtime, lookahead=lookahead, mode=mode
        )
        assert_results_identical(compiled, reference)

    def test_refinement_chooses_identical_orders(self, method, setup):
        schedule, runtime = _schedule_and_runtime(method, setup)
        mode = "zero-bubble" if schedule.has_weight_passes else "strict"
        reference = reference_refine_schedule_order(schedule, runtime, mode=mode)
        refined, result, graph = compile_schedule(schedule, runtime).refine(
            mode=mode
        )
        assert refined.device_orders == reference.device_orders
        # The returned result is the in-order execution of the returned
        # schedule — what run_method previously recomputed from scratch.
        assert_results_identical(
            result, reference_execute_schedule(reference, runtime)
        )
        assert graph.schedule.device_orders == refined.device_orders


class TestDeadlockParity:
    @staticmethod
    def _corrupted():
        schedule = generate_1f1b(2, 4, num_layers=2)
        order = schedule.device_orders[1]
        f0 = order.index(Pass(PassType.F, 0, 1))
        b0 = order.index(Pass(PassType.B, 0, 1))
        order[f0], order[b0] = order[b0], order[f0]
        return dataclasses.replace(schedule, device_orders=schedule.device_orders)

    def test_both_engines_deadlock(self, setup):
        corrupted = self._corrupted()
        runtime = RuntimeModel(setup, corrupted)
        with pytest.raises(DeadlockError):
            reference_execute_schedule(corrupted, runtime)
        with pytest.raises(DeadlockError):
            compile_schedule(corrupted, runtime).execute()

    def test_both_engines_deadlock_dataflow(self, setup):
        corrupted = self._corrupted()
        runtime = RuntimeModel(setup, corrupted)
        with pytest.raises(DeadlockError):
            reference_execute_schedule_dataflow(corrupted, runtime, lookahead=1)
        with pytest.raises(DeadlockError):
            compile_schedule(corrupted, runtime).execute_dataflow(lookahead=1)

    def test_both_engines_reject_missing_pass(self, setup):
        """A hole in a stream (pass deleted) raises, never mis-simulates."""
        schedule = build_schedule("vhalf-vocab-1", setup, refine=False)
        schedule.device_orders[2] = [
            p for p in schedule.device_orders[2] if p != Pass(PassType.W, 3, 2)
        ]
        runtime = RuntimeModel(setup, schedule)
        with pytest.raises(KeyError):
            reference_execute_schedule(schedule, runtime)
        with pytest.raises(KeyError):
            compile_schedule(schedule, runtime)


class TestCompiledGraphReuse:
    def test_rebind_matches_fresh_compile(self, setup):
        """Durations re-bound without re-lowering equal a fresh lowering."""

        class Doubled:
            def __init__(self, inner):
                self.inner = inner

            def pass_duration(self, p):
                return 2.0 * self.inner.pass_duration(p)

            def collective_duration(self, kind):
                return 2.0 * self.inner.collective_duration(kind)

            def p2p_duration(self, src, dst):
                return 2.0 * self.inner.p2p_duration(src, dst)

        schedule, runtime = _schedule_and_runtime("vocab-1", setup)
        graph = compile_schedule(schedule, runtime)
        graph.execute()  # populate the topo/result caches first
        doubled = Doubled(runtime)
        rebound = graph.rebind(doubled)
        fresh = compile_schedule(schedule, doubled)
        assert_results_identical(rebound.execute(), fresh.execute())
        # The original binding is untouched by the rebind.
        assert_results_identical(
            graph.execute(), reference_execute_schedule(schedule, runtime)
        )

    def test_execute_result_is_cached(self, setup):
        schedule, runtime = _schedule_and_runtime("vhalf-vocab-1", setup)
        graph = compile_schedule(schedule, runtime)
        assert graph.execute() is graph.execute()
        assert graph.replay() is not graph.replay()


class _ScaledRuntime:
    """A runtime whose every duration is the inner one times a factor."""

    def __init__(self, inner, factor):
        self.inner = inner
        self.factor = factor

    def pass_duration(self, p):
        return self.factor * self.inner.pass_duration(p)

    def collective_duration(self, kind):
        return self.factor * self.inner.collective_duration(kind)

    def p2p_duration(self, src, dst):
        return self.factor * self.inner.p2p_duration(src, dst)


@pytest.mark.parametrize("method", KNOWN_METHODS)
class TestExecuteMany:
    """One compiled graph pricing K bindings must equal K fresh compiles."""

    FACTORS = (1.0, 1.7, 0.3, 2.5)

    def _graph_and_runtimes(self, method, setup):
        schedule, runtime = _schedule_and_runtime(method, setup)
        graph = compile_schedule(schedule, runtime)
        runtimes = [_ScaledRuntime(runtime, f) for f in self.FACTORS]
        return schedule, graph, runtimes

    def test_execute_bindings_bit_identical(self, method, setup):
        schedule, graph, runtimes = self._graph_and_runtimes(method, setup)
        batched = graph.execute_bindings(runtimes)
        for result, runtime in zip(batched, runtimes):
            fresh = compile_schedule(schedule, runtime).execute()
            assert_results_identical(result, fresh)

    def test_execute_many_reuses_bound_lags(self, method, setup):
        """durations-only rows against the graph's own lags == replay."""
        _, graph, _ = self._graph_and_runtimes(method, setup)
        rows = [list(graph.durations), list(graph.durations)]
        for result in graph.execute_many(rows):
            assert_results_identical(result, graph.execute())

    def test_pure_python_fallback_matches_numpy(self, method, setup, monkeypatch):
        import repro.sim.compiled as compiled_mod

        schedule, graph, runtimes = self._graph_and_runtimes(method, setup)
        vectorized = graph.execute_bindings(runtimes)
        monkeypatch.setattr(compiled_mod, "_np", None)
        fallback = graph.execute_bindings(runtimes)
        for a, b in zip(vectorized, fallback):
            assert_results_identical(a, b)


class TestExecuteManyValidation:
    def _graph(self, setup):
        schedule, runtime = _schedule_and_runtime("vocab-1", setup)
        return compile_schedule(schedule, runtime)

    def test_empty_batch(self, setup):
        assert self._graph(setup).execute_many([]) == []

    def test_bad_row_length(self, setup):
        graph = self._graph(setup)
        with pytest.raises(ValueError):
            graph.execute_many([[1.0, 2.0]])

    def test_mismatched_lag_rows(self, setup):
        graph = self._graph(setup)
        rows = [list(graph.durations)] * 2
        with pytest.raises(ValueError, match="lag rows"):
            graph.execute_many(rows, lags=[list(graph.succ_lag)])

    def test_bad_lag_row_length(self, setup):
        graph = self._graph(setup)
        rows = [list(graph.durations)] * 2
        with pytest.raises(ValueError):
            graph.execute_many(rows, lags=[[0.0], [0.0]])


class TestEngineSwitch:
    def test_reference_engine_selectable(self, setup, monkeypatch):
        schedule, runtime = _schedule_and_runtime("vocab-2", setup)
        compiled = execute_schedule(schedule, runtime)
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert simulation_engine() == "reference"
        assert_results_identical(compiled, execute_schedule(schedule, runtime))

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp-drive")
        with pytest.raises(ValueError, match="REPRO_SIM_ENGINE"):
            simulation_engine()
