"""Tests for the in-order and dataflow schedule executors."""

import dataclasses

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.scheduling import (
    Pass,
    PassType,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_interlaced,
    generate_vhalf,
)
from repro.sim import (
    DeadlockError,
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    execute_schedule_dataflow,
    refine_schedule_order,
)


class UnitRuntime:
    """Deterministic block-unit durations: F=1, B=2, everything small."""

    DURATIONS = {
        PassType.F: 1.0,
        PassType.B: 2.0,
        PassType.W: 1.0,
        PassType.S: 0.25,
        PassType.T: 0.25,
        PassType.IF: 0.05,
        PassType.IB: 0.05,
        PassType.VF: 0.25,
        PassType.VB: 0.25,
    }

    def pass_duration(self, p: Pass) -> float:
        return self.DURATIONS[p.type]

    def collective_duration(self, kind) -> float:
        return 0.01

    def p2p_duration(self, src, dst) -> float:
        return 0.0


@pytest.fixture
def setup(small_model, small_parallel) -> SimulationSetup:
    return SimulationSetup(small_model, small_parallel)


class TestInOrderExecution:
    def test_1f1b_makespan_formula(self):
        """Classic 1F1B with tF=1, tB=2: makespan = (p-1)·(tF+tB) + m·(tF+tB)."""
        p, m = 4, 16
        schedule = generate_1f1b(p, m, num_layers=p)
        result = execute_schedule(schedule, UnitRuntime())
        expected = (p - 1) * 3.0 + m * 3.0
        assert result.iteration_time == pytest.approx(expected)

    def test_passes_do_not_overlap_per_device(self):
        schedule = generate_1f1b_vocab(4, 8, 8, algorithm=1)
        result = execute_schedule(schedule, UnitRuntime())
        for device in range(4):
            rows = result.passes_on(device)
            for (_, _, end), (_, start, _) in zip(rows, rows[1:]):
                assert start >= end - 1e-12

    def test_dependencies_respected_f_chain(self):
        schedule = generate_1f1b(4, 6, num_layers=4)
        result = execute_schedule(schedule, UnitRuntime())
        for mb in range(6):
            for s in range(1, 4):
                up = result.pass_times[Pass(PassType.F, mb, s - 1)]
                down = result.pass_times[Pass(PassType.F, mb, s)]
                assert down[0] >= up[1] - 1e-12

    def test_b_chain_respected(self):
        schedule = generate_1f1b(4, 6, num_layers=4)
        result = execute_schedule(schedule, UnitRuntime())
        for mb in range(6):
            for s in range(3):
                later = result.pass_times[Pass(PassType.B, mb, s + 1)]
                earlier = result.pass_times[Pass(PassType.B, mb, s)]
                assert earlier[0] >= later[1] - 1e-12

    def test_vocab_s_after_last_stage_f(self):
        schedule = generate_1f1b_vocab(4, 6, 8, algorithm=2, include_input=False)
        result = execute_schedule(schedule, UnitRuntime())
        for mb in range(6):
            last_f_end = result.pass_times[Pass(PassType.F, mb, 3)][1]
            for d in range(4):
                s_start = result.pass_times[Pass(PassType.S, mb, d)][0]
                assert s_start >= last_f_end - 1e-12

    def test_alg1_last_b_after_all_t(self):
        schedule = generate_1f1b_vocab(4, 6, 8, algorithm=1, include_input=False)
        result = execute_schedule(schedule, UnitRuntime())
        for mb in range(6):
            b_start = result.pass_times[Pass(PassType.B, mb, 3)][0]
            for d in range(4):
                t_end = result.pass_times[Pass(PassType.T, mb, d)][1]
                assert b_start >= t_end - 1e-12

    def test_alg2_t_can_outlive_last_b(self):
        """Algorithm 2's weight-gradient pass is deferrable (§4.4):
        some T happens after the corresponding last-stage B."""
        schedule = generate_1f1b_vocab(4, 8, 8, algorithm=2, include_input=False)
        result = execute_schedule(schedule, UnitRuntime())
        violations = 0
        for mb in range(8):
            b_start = result.pass_times[Pass(PassType.B, mb, 3)][0]
            for d in range(4):
                if result.pass_times[Pass(PassType.T, mb, d)][1] > b_start:
                    violations += 1
        assert violations > 0

    def test_deadlock_detection(self):
        schedule = generate_1f1b(2, 4, num_layers=2)
        # Swap F[0] after B[0] on device 1: B needs its own F → cycle.
        order = schedule.device_orders[1]
        f0 = order.index(Pass(PassType.F, 0, 1))
        b0 = order.index(Pass(PassType.B, 0, 1))
        order[f0], order[b0] = order[b0], order[f0]
        corrupted = dataclasses.replace(schedule, device_orders=schedule.device_orders)
        with pytest.raises(DeadlockError):
            execute_schedule(corrupted, UnitRuntime())

    def test_busy_accounting(self):
        p, m = 4, 8
        schedule = generate_1f1b(p, m, num_layers=p)
        result = execute_schedule(schedule, UnitRuntime())
        for d in range(p):
            assert result.device_busy[d] == pytest.approx(m * 3.0)
            assert 0.0 <= result.bubble_fraction(d) < 1.0

    def test_interlaced_barrier_couplings(self):
        schedule = generate_interlaced(4, 6, 8)
        result = execute_schedule(schedule, UnitRuntime())
        for mb in range(6):
            vf_ends = [result.pass_times[Pass(PassType.VF, mb, d)][1] for d in range(4)]
            vb_starts = [result.pass_times[Pass(PassType.VB, mb, d)][0] for d in range(4)]
            # Every VB waits for every VF (softmax-stats barrier).
            assert min(vb_starts) >= max(vf_ends) - 1e-12
            b_start = result.pass_times[Pass(PassType.B, mb, 3)][0]
            vb_ends = [result.pass_times[Pass(PassType.VB, mb, d)][1] for d in range(4)]
            assert b_start >= max(vb_ends) - 1e-12


class TestDataflowExecution:
    def test_no_slower_than_in_order(self):
        schedule = generate_vhalf(4, 12, 16)
        rt = UnitRuntime()
        in_order = execute_schedule(schedule, rt)
        dataflow = execute_schedule_dataflow(
            schedule, rt, lookahead=16, mode="zero-bubble"
        )
        assert dataflow.iteration_time <= in_order.iteration_time + 1e-9

    def test_lookahead_one_equals_in_order(self):
        schedule = generate_1f1b_vocab(4, 8, 8, algorithm=1)
        rt = UnitRuntime()
        in_order = execute_schedule(schedule, rt)
        dataflow = execute_schedule_dataflow(schedule, rt, lookahead=1)
        assert dataflow.iteration_time == pytest.approx(in_order.iteration_time)

    def test_flexible_only_keeps_f_positions(self):
        schedule = generate_1f1b(4, 8, num_layers=4)
        rt = UnitRuntime()
        result = execute_schedule_dataflow(schedule, rt, lookahead=8)
        # F stream order per device unchanged → F start times monotone
        # in microbatch.
        for d in range(4):
            starts = [
                result.pass_times[Pass(PassType.F, mb, d)][0] for mb in range(8)
            ]
            assert starts == sorted(starts)

    def test_lookahead_validation(self):
        schedule = generate_1f1b(2, 2, num_layers=2)
        with pytest.raises(ValueError):
            execute_schedule_dataflow(schedule, UnitRuntime(), lookahead=0)

    def test_mode_validation(self):
        schedule = generate_1f1b(2, 2, num_layers=2)
        with pytest.raises(ValueError):
            execute_schedule_dataflow(schedule, UnitRuntime(), mode="eager")

    def test_zero_bubble_mode_respects_memory_caps(self):
        """F passes may not run further ahead than the static schedule's
        live-activation peak."""
        from repro.sim.executor import _live_f_caps

        schedule = generate_vhalf(4, 12, 16)
        rt = UnitRuntime()
        in_order = execute_schedule(schedule, rt)
        caps = _live_f_caps(schedule, in_order)
        dataflow = execute_schedule_dataflow(
            schedule, rt, lookahead=32, mode="zero-bubble"
        )
        flow_caps = _live_f_caps(schedule, dataflow)
        for device in range(4):
            for chunk, cap in caps[device].items():
                assert flow_caps[device][chunk] <= cap + 1


class TestRefinement:
    def test_refined_schedule_validates_and_not_slower(self, setup):
        schedule = generate_vhalf(4, 12, 16)
        rt = RuntimeModel(setup, schedule)
        refined = refine_schedule_order(schedule, rt, mode="zero-bubble")
        refined.validate()
        before = execute_schedule(schedule, rt).iteration_time
        after = execute_schedule(refined, rt).iteration_time
        assert after <= before * 1.001

    def test_refinement_preserves_pass_multiset(self, setup):
        schedule = generate_1f1b_vocab(4, 8, 8, algorithm=2)
        rt = RuntimeModel(setup, schedule)
        refined = refine_schedule_order(schedule, rt)
        for d in range(4):
            assert sorted(map(str, refined.device_orders[d])) == sorted(
                map(str, schedule.device_orders[d])
            )
