"""Property-based tests for the schedule executor (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling import (
    PassType,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_vhalf,
)
from repro.sim import execute_schedule, execute_schedule_dataflow

from tests.sim.test_executor import UnitRuntime


class ScaledRuntime(UnitRuntime):
    """Unit durations scaled per pass type by a drawn multiplier."""

    def __init__(self, scales):
        self.scales = scales

    def pass_duration(self, p):
        return super().pass_duration(p) * self.scales.get(p.type.value, 1.0)


schedule_strategy = st.sampled_from(
    [
        lambda p, m: generate_1f1b(p, m, num_layers=p),
        lambda p, m: generate_1f1b_vocab(p, m, p, algorithm=1),
        lambda p, m: generate_1f1b_vocab(p, m, p, algorithm=2),
        lambda p, m: generate_vhalf(p, m, 2 * p),
    ]
)


@settings(max_examples=25, deadline=None)
@given(
    factory=schedule_strategy,
    p=st.integers(2, 6),
    m=st.integers(1, 12),
    f_scale=st.floats(0.2, 5.0),
    b_scale=st.floats(0.2, 5.0),
)
def test_makespan_bounds(factory, p, m, f_scale, b_scale):
    """Makespan ≥ max(per-device work, per-microbatch critical path)
    and every pass fits inside [0, makespan]."""
    schedule = factory(p, m)
    runtime = ScaledRuntime({"F": f_scale, "B": b_scale})
    result = execute_schedule(schedule, runtime)
    for device in range(p):
        assert result.iteration_time >= result.device_busy[device] - 1e-9
    for _, (start, end) in result.pass_times.items():
        assert start >= -1e-12
        assert end <= result.iteration_time + 1e-9
        assert end >= start


@settings(max_examples=25, deadline=None)
@given(
    factory=schedule_strategy,
    p=st.integers(2, 5),
    m=st.integers(2, 10),
    lookahead=st.integers(1, 12),
)
def test_dataflow_refinement_monotone_and_deps_hold(factory, p, m, lookahead):
    """Refinement never slows in-order execution, and the dataflow
    mode's reordering still respects the F chain.

    Note the *raw* work-conserving makespan may occasionally exceed
    the in-order one — greedy list scheduling carries no optimality
    guarantee (Graham's anomalies) — which is exactly why
    ``refine_schedule_order`` keeps whichever order executes faster.
    """
    from repro.sim import refine_schedule_order

    schedule = factory(p, m)
    runtime = UnitRuntime()
    in_order = execute_schedule(schedule, runtime)
    dataflow = execute_schedule_dataflow(
        schedule, runtime, lookahead=lookahead, mode="zero-bubble"
    )
    refined = refine_schedule_order(
        schedule, runtime, lookahead=lookahead, mode="zero-bubble"
    )
    refined_time = execute_schedule(refined, runtime).iteration_time
    assert refined_time <= in_order.iteration_time + 1e-9
    # Work conservation sanity: the dataflow run executes the same pass
    # multiset (identical per-device busy time) and, while Graham
    # anomalies allow it to trail in-order slightly, a regression that
    # serialized devices would blow far past this loose bound.
    assert dataflow.device_busy == pytest.approx(in_order.device_busy)
    assert dataflow.iteration_time <= 2.0 * in_order.iteration_time + 1e-9
    # F chain still respected under reordering.
    layout = schedule.layout
    for mb in range(m):
        for s in range(1, layout.num_stages):
            up_dev, up_chunk = layout.holder_of_stage(s - 1)
            down_dev, down_chunk = layout.holder_of_stage(s)
            from repro.scheduling import Pass

            up = dataflow.pass_times[Pass(PassType.F, mb, up_dev, up_chunk)]
            down = dataflow.pass_times[Pass(PassType.F, mb, down_dev, down_chunk)]
            assert down[0] >= up[1] - 1e-9


@settings(max_examples=20, deadline=None)
@given(p=st.integers(2, 6), m=st.integers(1, 10))
def test_1f1b_memory_invariant_under_duration_scaling(p, m):
    """Device-0 live microbatches = min(m, p) for any F/B durations."""
    from repro.sim import live_microbatch_peaks

    schedule = generate_1f1b(p, m, num_layers=p)
    result = execute_schedule(schedule, ScaledRuntime({"F": 0.5, "B": 3.0}))
    assert live_microbatch_peaks(result)[0] == pytest.approx(min(m, p))


@settings(max_examples=15, deadline=None)
@given(p=st.integers(2, 5), m=st.integers(1, 8), algorithm=st.sampled_from([1, 2]))
def test_vocab_memory_invariant(p, m, algorithm):
    """Device-0 live = min(m, p + barriers) for any microbatch count."""
    from repro.sim import live_microbatch_peaks

    schedule = generate_1f1b_vocab(p, m, p, algorithm=algorithm)
    result = execute_schedule(schedule, UnitRuntime())
    barriers = 2 if algorithm == 1 else 1
    assert live_microbatch_peaks(result)[0] == pytest.approx(min(m, p + barriers))
