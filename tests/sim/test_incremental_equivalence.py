"""Differential fuzz: delta replay ⇔ fresh full execution.

:meth:`CompiledGraph.execute_delta` claims to be bit-identical to a
fresh full execution of the perturbed binding *by construction* — the
cone re-relaxation re-maxes dirty nodes over all their predecessors
(an exact, order-independent reduction) and unreached nodes keep the
checkpointed floats.  This suite fuzzes that claim with seeded random
perturbations — single device rows, multi-row stragglers, arbitrary
node/edge cones — across every schedule family and both engines
(NumPy and the pure-Python fallback), comparing every observable of
the :class:`ExecutionResult` (per-pass timing maps included) with
``==``.
"""

import random

import pytest

import repro.sim.compiled as compiled_mod
from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import KNOWN_METHODS, build_schedule
from repro.scheduling import Pass, PassType, generate_1f1b
from repro.sim import (
    DeadlockError,
    Perturbation,
    RuntimeModel,
    SimulationSetup,
    compile_schedule,
)

MODEL = ModelConfig(
    num_layers=16,
    hidden_size=512,
    num_attention_heads=8,
    seq_length=512,
    vocab_size=32 * 1024,
)
PARALLEL = ParallelConfig(pipeline_size=4, num_microbatches=6, microbatch_size=1)

#: Seeded perturbation shapes drawn per fuzz round (ISSUE 6's menu:
#: one device row, several rows, an arbitrary node/edge cone).
KINDS = ("single-row", "multi-row", "cone")


@pytest.fixture(scope="module")
def setup() -> SimulationSetup:
    return SimulationSetup(MODEL, PARALLEL)


@pytest.fixture(params=("numpy", "pure-python"))
def engine(request, monkeypatch):
    if request.param == "numpy":
        if compiled_mod._np is None:
            pytest.skip("NumPy not installed")
    else:
        monkeypatch.setattr(compiled_mod, "_np", None)
    return request.param


def _graph(method, setup):
    schedule = build_schedule(method, setup, refine=False)
    runtime = RuntimeModel(setup, schedule)
    return schedule, runtime, compile_schedule(schedule, runtime)


def _random_perturbation(rng, graph, kind) -> Perturbation:
    num_devices = len(graph.device_nodes)
    if kind == "single-row":
        return graph.device_perturbation(
            rng.randrange(num_devices), rng.uniform(0.4, 2.5)
        )
    if kind == "multi-row":
        durations: dict[int, float] = {}
        for device in rng.sample(range(num_devices), k=min(3, num_devices)):
            factor = rng.uniform(0.4, 2.5)
            for i in graph.device_nodes[device]:
                durations[i] = factor * graph.durations[i]
        return Perturbation.from_maps(durations=durations)
    # "cone": a handful of arbitrary nodes (collective barriers
    # included) plus a couple of arbitrary edge lags.
    durations = {
        i: rng.uniform(0.4, 2.5) * graph.durations[i]
        for i in rng.sample(range(graph.num_nodes), k=min(8, graph.num_nodes))
    }
    num_edges = len(graph.succ_lag)
    lags = {
        k: graph.succ_lag[k] + rng.uniform(0.0, 2e-4)
        for k in rng.sample(range(num_edges), k=min(3, num_edges))
    }
    return Perturbation.from_maps(durations=durations, lags=lags)


def _perturbed_rows(graph, perturbation):
    dur = list(graph.durations)
    for i, value in perturbation.durations:
        dur[i] = value
    lag = list(graph.succ_lag)
    for k, value in perturbation.lags:
        lag[k] = value
    return dur, lag


def _fresh_full(schedule, runtime, perturbation):
    """The ground truth: a fresh graph, fully swept with the perturbed
    binding rows (no checkpoint resident, so no delta path)."""
    fresh = compile_schedule(schedule, runtime)
    dur, lag = _perturbed_rows(fresh, perturbation)
    return fresh.execute_many([dur], lags=[lag])[0]


def assert_results_identical(delta, full):
    assert delta.pass_times == full.pass_times
    assert delta.collective_times == full.collective_times
    assert delta.iteration_time == full.iteration_time
    assert delta.device_busy == full.device_busy
    for device in range(len(full.device_busy)):
        assert delta.bubble_fraction(device) == full.bubble_fraction(device)
        assert delta.passes_on(device) == full.passes_on(device)


@pytest.mark.parametrize("method", KNOWN_METHODS)
class TestDifferentialFuzz:
    ROUNDS = 6

    def test_delta_bit_identical_to_full(self, method, setup, engine):
        schedule, runtime, graph = _graph(method, setup)
        rng = random.Random(f"{method}/{engine}")
        for round_no in range(self.ROUNDS):
            kind = KINDS[round_no % len(KINDS)]
            perturbation = _random_perturbation(rng, graph, kind)
            full = _fresh_full(schedule, runtime, perturbation)
            assert_results_identical(graph.execute_delta(perturbation), full)
            summary = graph.execute_delta_summary(perturbation)
            assert summary.iteration_time == full.iteration_time
            assert list(summary.device_busy) == list(full.device_busy)
            # Every query rolled back: the resident state is pristine
            # and the unperturbed result is still the baseline.
            assert graph.checkpoint().pristine
        baseline = _fresh_full(schedule, runtime, Perturbation())
        assert_results_identical(graph.execute(), baseline)

    def test_from_rows_diff_matches_explicit_support(self, method, setup, engine):
        """A whole perturbed row round-trips through the sparse diff."""
        schedule, runtime, graph = _graph(method, setup)
        rng = random.Random(f"rows/{method}/{engine}")
        perturbation = _random_perturbation(rng, graph, "multi-row")
        dur, lag = _perturbed_rows(graph, perturbation)
        rediffed = Perturbation.from_rows(graph, dur, lag)
        assert dict(rediffed.durations) == dict(perturbation.durations)
        assert rediffed.lags == ()
        assert_results_identical(
            graph.execute_delta(rediffed),
            _fresh_full(schedule, runtime, perturbation),
        )


class TestDeadlockParity:
    @staticmethod
    def _corrupted():
        schedule = generate_1f1b(2, 4, num_layers=2)
        order = schedule.device_orders[1]
        f0 = order.index(Pass(PassType.F, 0, 1))
        b0 = order.index(Pass(PassType.B, 0, 1))
        order[f0], order[b0] = order[b0], order[f0]
        return schedule

    def test_delta_path_raises_like_execute(self, setup, engine):
        corrupted = self._corrupted()
        runtime = RuntimeModel(setup, corrupted)
        graph = compile_schedule(corrupted, runtime)
        with pytest.raises(DeadlockError):
            graph.execute()
        perturbation = graph.device_perturbation(0, 1.5)
        with pytest.raises(DeadlockError):
            graph.execute_delta(perturbation)
        with pytest.raises(DeadlockError):
            graph.execute_delta_summary(perturbation)
        with pytest.raises(DeadlockError):
            graph.checkpoint()


class TestPerturbationValidation:
    def test_unknown_device_rejected(self, setup):
        _, _, graph = _graph("baseline", setup)
        with pytest.raises(ValueError, match="device"):
            graph.device_perturbation(99, 1.5)

    def test_empty_perturbation_is_baseline(self, setup):
        schedule, runtime, graph = _graph("vocab-1", setup)
        assert_results_identical(
            graph.execute_delta(Perturbation()), graph.execute()
        )

    def test_support_counts_slots(self):
        perturbation = Perturbation.from_maps(
            durations={3: 1.0, 5: 2.0}, lags={0: 0.5}
        )
        assert perturbation.support == 3
