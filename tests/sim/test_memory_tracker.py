"""Tests for per-device memory accounting."""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.memory import GiB, MemoryModel
from repro.scheduling import generate_1f1b, generate_1f1b_vocab
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    memory_report,
)


@pytest.fixture
def setup():
    model = ModelConfig(
        num_layers=16,
        hidden_size=1024,
        num_attention_heads=8,
        seq_length=1024,
        vocab_size=128 * 1024,
    )
    return SimulationSetup(model, ParallelConfig(pipeline_size=4, num_microbatches=16))


def _report(setup, schedule, memory_model=None):
    result = execute_schedule(schedule, RuntimeModel(setup, schedule))
    return memory_report(result, setup, memory_model)


class TestParameterAccounting:
    def test_baseline_embedding_on_end_devices(self, setup):
        schedule = generate_1f1b(4, 16, num_layers=16)
        report = _report(setup, schedule)
        params = report.per_device_params
        # Devices 1 and 2 hold only transformer layers.
        assert params[0] > params[1]
        assert params[3] > params[2]
        emb_state = (
            MemoryModel().input_layer_state_bytes(setup.model, setup.padded_vocab_single)
        )
        assert params[3] - params[2] == pytest.approx(emb_state, rel=1e-6)

    def test_vocab_parallel_params_near_uniform(self, setup):
        schedule = generate_1f1b_vocab(4, 16, 16, algorithm=1)
        report = _report(setup, schedule)
        params = report.per_device_params
        # Only the positional embedding distinguishes device 0.
        pos = 2.0 * setup.model.seq_length * setup.model.hidden_size * 7.0
        assert max(params) - min(params) == pytest.approx(pos, rel=1e-6)

    def test_peak_includes_overhead(self, setup):
        schedule = generate_1f1b(4, 16, num_layers=16)
        small = _report(setup, schedule, MemoryModel(overhead_bytes=0.0))
        big = _report(setup, schedule, MemoryModel(overhead_bytes=2.0 * GiB))
        assert big.peak - small.peak == pytest.approx(2.0 * GiB)


class TestActivationAccounting:
    def test_device0_peak_activation_scales_with_p_microbatches(self, setup):
        schedule = generate_1f1b(4, 16, num_layers=16)
        report = _report(setup, schedule)
        mm = MemoryModel()
        one_mb = mm.activation_bytes(setup.model, 1, 4)
        assert report.per_device_peak_activation[0] == pytest.approx(
            4 * one_mb, rel=0.05
        )

    def test_vocab_schedule_adds_softmax_shards(self, setup):
        base = _report(setup, generate_1f1b(4, 16, num_layers=16))
        vocab = _report(setup, generate_1f1b_vocab(4, 16, 16, algorithm=1))
        mm = MemoryModel()
        one_mb = mm.activation_bytes(setup.model, 1, 4)
        delta = vocab.per_device_peak_activation[0] - base.per_device_peak_activation[0]
        # Two extra transformer microbatches plus shard buffers.
        assert delta > 1.9 * one_mb

    def test_output_holder_carries_logits_buffer(self, setup):
        report = _report(setup, generate_1f1b(4, 16, num_layers=16))
        acts = report.per_device_peak_activation
        logits_bytes = setup.tokens * setup.padded_vocab_single * 4.0
        # Device 3 holds 1 microbatch of activations + the fp32 softmax.
        assert acts[3] > logits_bytes

    def test_fits_capacity_check(self, setup):
        report = _report(setup, generate_1f1b(4, 16, num_layers=16))
        assert report.fits(report.peak)
        assert not report.fits(report.peak - 1.0)

    def test_spread_nonnegative(self, setup):
        report = _report(setup, generate_1f1b(4, 16, num_layers=16))
        assert report.spread >= 0.0
