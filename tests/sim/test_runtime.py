"""Tests for the pass-duration runtime model."""

import pytest

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import vocab_scaling_factor
from repro.scheduling import Pass, PassType, generate_1f1b, generate_1f1b_vocab
from repro.sim import PassTimings, RuntimeModel, SimulationSetup


@pytest.fixture
def setup(paper_4b_model):
    return SimulationSetup(paper_4b_model, ParallelConfig(pipeline_size=8))


class TestPassTimings:
    def test_forward_scales_with_layers(self, setup):
        t = PassTimings(setup)
        assert t.transformer_forward_time(4) > 3.5 * t.transformer_forward_time(1)

    def test_backward_double_unless_split(self, setup):
        t = PassTimings(setup)
        fwd = t.transformer_forward_time(2)
        assert t.transformer_backward_time(2, split_weight=False) == pytest.approx(
            2 * fwd
        )
        assert t.transformer_backward_time(2, split_weight=True) == pytest.approx(fwd)

    def test_zero_layers_free(self, setup):
        t = PassTimings(setup)
        assert t.transformer_forward_time(0) == 0.0

    def test_output_layer_ratio_matches_flops_model(self, setup):
        """Full output layer ≈ its FLOPs ratio of a transformer layer
        (Figure 2 cross-check, within kernel-efficiency wiggle)."""
        from repro.costmodel import vocab_to_transformer_compute_ratio

        t = PassTimings(setup)
        time_ratio = (
            t.full_output_forward_time() + t.full_output_backward_time()
        ) / (t.transformer_forward_time(1) * 3)
        _, flops_ratio = vocab_to_transformer_compute_ratio(setup.model)
        assert time_ratio == pytest.approx(flops_ratio, rel=0.35)

    def test_s_t_passes_shrink_with_more_ranks(self, paper_4b_model):
        t8 = PassTimings(
            SimulationSetup(paper_4b_model, ParallelConfig(pipeline_size=8))
        )
        t32 = PassTimings(
            SimulationSetup(paper_4b_model, ParallelConfig(pipeline_size=32))
        )
        for alg in (1, 2):
            assert t32.s_pass_time(alg) < t8.s_pass_time(alg)
            assert t32.t_pass_time(alg) < t8.t_pass_time(alg)

    def test_alg2_s_pass_does_more_work(self, setup):
        t = PassTimings(setup)
        assert t.s_pass_time(2) > t.s_pass_time(1)
        assert t.t_pass_time(2) < t.t_pass_time(1)

    def test_interlaced_sync_knob(self, paper_4b_model):
        parallel = ParallelConfig(pipeline_size=16)  # multi-node
        with_sync = PassTimings(SimulationSetup(paper_4b_model, parallel))
        without = PassTimings(
            SimulationSetup(paper_4b_model, parallel, interlaced_sync_allreduce=False)
        )
        assert with_sync.interlaced_vf_time() > without.interlaced_vf_time()
        assert with_sync.interlaced_vb_time() > without.interlaced_vb_time()


class TestRuntimeModel:
    def test_baseline_last_stage_f_longer(self, setup):
        schedule = generate_1f1b(8, 8, num_layers=32)
        rt = RuntimeModel(setup, schedule)
        inner = rt.pass_duration(Pass(PassType.F, 0, 3))
        last = rt.pass_duration(Pass(PassType.F, 0, 7))
        first = rt.pass_duration(Pass(PassType.F, 0, 0))
        assert last > inner
        assert first > inner       # input layer on stage 0
        assert last - inner > first - inner  # output ≫ input

    def test_vocab_parallel_f_uniform(self, setup):
        schedule = generate_1f1b_vocab(8, 8, 32, algorithm=1)
        rt = RuntimeModel(setup, schedule)
        durations = {rt.pass_duration(Pass(PassType.F, 0, d)) for d in range(8)}
        assert len(durations) == 1

    def test_collective_durations_positive(self, setup):
        from repro.scheduling.passes import CollectiveKind

        schedule = generate_1f1b_vocab(8, 8, 32, algorithm=2)
        rt = RuntimeModel(setup, schedule)
        for kind in (
            CollectiveKind.C0_BROADCAST,
            CollectiveKind.C1_STATS,
            CollectiveKind.INPUT_ALLREDUCE,
            CollectiveKind.INPUT_BROADCAST,
        ):
            assert rt.collective_duration(kind) > 0.0

    def test_alg2_c1_includes_grad_reduce(self, setup):
        from repro.scheduling.passes import CollectiveKind

        s1 = generate_1f1b_vocab(8, 8, 32, algorithm=1)
        s2 = generate_1f1b_vocab(8, 8, 32, algorithm=2)
        c1_alg1 = RuntimeModel(setup, s1).collective_duration(CollectiveKind.C1_STATS)
        c1_alg2 = RuntimeModel(setup, s2).collective_duration(CollectiveKind.C1_STATS)
        assert c1_alg2 > c1_alg1

    def test_durations_cached(self, setup):
        schedule = generate_1f1b(8, 8, num_layers=32)
        rt = RuntimeModel(setup, schedule)
        a = rt.pass_duration(Pass(PassType.F, 0, 2))
        b = rt.pass_duration(Pass(PassType.F, 5, 2))
        assert a == b


class TestTable3ScalingFactors:
    """§6.5: shape of the Table 3 scaling factors."""

    @pytest.mark.parametrize("alg", [1, 2])
    def test_output_scaling_declines_with_p(self, paper_4b_model, alg):
        model = paper_4b_model
        factors = [
            vocab_scaling_factor(model, p, "output", alg) for p in (8, 16, 32)
        ]
        assert factors[0] > factors[1] > factors[2]
        assert 0.6 < factors[2] < factors[0] < 1.0

    def test_alg2_scales_worse_than_alg1(self, paper_4b_model):
        for p in (8, 16, 32):
            assert vocab_scaling_factor(paper_4b_model, p, "output", 2) < (
                vocab_scaling_factor(paper_4b_model, p, "output", 1)
            )

    def test_input_scaling_much_worse_than_output(self, paper_4b_model):
        for p in (8, 16, 32):
            assert vocab_scaling_factor(paper_4b_model, p, "input") < 0.6 * (
                vocab_scaling_factor(paper_4b_model, p, "output", 1)
            )

    def test_input_scaling_roughly_inverse_p(self, paper_4b_model):
        f8 = vocab_scaling_factor(paper_4b_model, 8, "input")
        f32 = vocab_scaling_factor(paper_4b_model, 32, "input")
        assert 2.0 < f8 / f32 < 5.0

    def test_validation(self, paper_4b_model):
        with pytest.raises(ValueError):
            vocab_scaling_factor(paper_4b_model, 8, "output")
        with pytest.raises(ValueError):
            vocab_scaling_factor(paper_4b_model, 8, "weights")
