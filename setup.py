"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517`` uses the legacy ``setup.py
develop`` path, which works offline with the stock setuptools.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
