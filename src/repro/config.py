"""Experiment configuration objects shared across the library.

The paper evaluates GPT-like models whose shape is fully described by a
handful of integers (Tables 1 and 2 of the paper).  All cost-model,
scheduling and simulation code consumes these frozen dataclasses rather
than loose keyword arguments so that a configuration can be hashed,
compared and printed consistently.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Shape of a GPT-like transformer language model.

    Parameters mirror the notation of the paper's Appendix A: microbatch
    size ``b``, sequence length ``s``, hidden dimension ``h`` and
    vocabulary size ``V``.

    Attributes
    ----------
    num_layers:
        Number of transformer layers ``L`` (input/output vocabulary
        layers are counted separately).
    hidden_size:
        Model width ``h``.
    num_attention_heads:
        Attention head count ``a`` (enters the activation-memory
        formula).
    seq_length:
        Tokens per sequence ``s``.
    vocab_size:
        Unpadded vocabulary size ``V``.
    ffn_hidden_size:
        MLP inner width; defaults to ``4 h`` as in GPT.
    tie_embeddings:
        Whether input and output embeddings share one weight tensor.
        The paper's experiments untie them (harder setting, Llama-3
        style), which is also our default.
    """

    num_layers: int
    hidden_size: int
    num_attention_heads: int
    seq_length: int
    vocab_size: int
    ffn_hidden_size: int | None = None
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.num_attention_heads <= 0:
            raise ValueError(
                f"num_attention_heads must be positive, got {self.num_attention_heads}"
            )
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError(
                "hidden_size must be divisible by num_attention_heads "
                f"({self.hidden_size} % {self.num_attention_heads} != 0)"
            )
        if self.seq_length <= 0:
            raise ValueError(f"seq_length must be positive, got {self.seq_length}")
        if self.vocab_size <= 1:
            raise ValueError(f"vocab_size must be > 1, got {self.vocab_size}")
        if self.ffn_hidden_size is None:
            object.__setattr__(self, "ffn_hidden_size", 4 * self.hidden_size)

    @property
    def head_dim(self) -> int:
        """Per-head width ``h / a``."""
        return self.hidden_size // self.num_attention_heads

    def num_parameters(self) -> int:
        """Total parameter count (transformer + embeddings).

        Uses the standard GPT accounting: each transformer layer has
        ``12 h^2`` weights (4h^2 attention + 8h^2 MLP) plus biases and
        layer norms which we fold into the dominant term, and each
        untied vocabulary layer has ``V h`` weights.
        """
        transformer = self.num_layers * 12 * self.hidden_size * self.hidden_size
        embeddings = (1 if self.tie_embeddings else 2) * self.vocab_size * self.hidden_size
        return transformer + embeddings

    def replace(self, **changes: object) -> "ModelConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict rendering (stable field order) for hashing/logging.

        The planner's result cache keys on this via
        :func:`repro.planner.config_digest`.
        """
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ParallelConfig:
    """Pipeline-parallel run configuration.

    Attributes
    ----------
    pipeline_size:
        Number of pipeline devices ``p``.
    num_microbatches:
        Microbatches per iteration ``m`` (paper uses 128).
    microbatch_size:
        Sequences per microbatch ``b`` (paper uses 1).
    devices_per_node:
        GPUs per server; collectives crossing node boundaries use the
        slower interconnect.
    """

    pipeline_size: int
    num_microbatches: int = 128
    microbatch_size: int = 1
    devices_per_node: int = 8

    def __post_init__(self) -> None:
        if self.pipeline_size <= 0:
            raise ValueError(f"pipeline_size must be positive, got {self.pipeline_size}")
        if self.num_microbatches <= 0:
            raise ValueError(
                f"num_microbatches must be positive, got {self.num_microbatches}"
            )
        if self.microbatch_size <= 0:
            raise ValueError(
                f"microbatch_size must be positive, got {self.microbatch_size}"
            )
        if self.devices_per_node <= 0:
            raise ValueError(
                f"devices_per_node must be positive, got {self.devices_per_node}"
            )

    @property
    def num_nodes(self) -> int:
        """Number of servers occupied (ceiling division)."""
        return -(-self.pipeline_size // self.devices_per_node)

    @property
    def is_multi_node(self) -> bool:
        return self.pipeline_size > self.devices_per_node

    def replace(self, **changes: object) -> "ParallelConfig":
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict rendering (stable field order) for hashing/logging."""
        return dataclasses.asdict(self)


def layers_per_stage(model: ModelConfig, parallel: ParallelConfig) -> int:
    """Transformer layers per pipeline stage for the uniform baseline.

    Raises if the model does not divide evenly — the paper's settings
    always do (e.g. 32 layers over 8 devices).
    """
    if model.num_layers % parallel.pipeline_size != 0:
        raise ValueError(
            f"num_layers={model.num_layers} not divisible by "
            f"pipeline_size={parallel.pipeline_size}"
        )
    return model.num_layers // parallel.pipeline_size
