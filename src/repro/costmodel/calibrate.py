"""Calibrated, pluggable cost models for the schedule planner.

The planner prices every candidate with an analytic model before it
simulates any of them (:mod:`repro.planner.estimate`).  That model uses
fixed hardware constants, so its estimates are trusted enough to *rank*
candidates but never to *skip* the expensive top-k simulation verify
step.  This module closes the loop the way profiled cost models do
(MATCH/ZigZag's extensible cost-model classes, fitted overhead factors
regressed from measured vs theoretical cycles):

* :class:`CostModel` — the pluggable ABC.  :class:`AnalyticCostModel`
  is the default subclass and reproduces today's estimate bit for bit;
  :class:`CalibratedCostModel` applies a fitted
  :class:`HardwareProfile`.
* :class:`HardwareProfile` — per-SKU fitted parameters, serialized as
  versioned JSON and digest-keyed into every planner cache.
* :func:`fit_profile` — the fitting loop: regress per-phase parameters
  (steady-state compute, ramp, per-pass overhead, collective α/β,
  stage-to-stage latency, fixed cost) against simulator ground truth
  over a seeded config grid.  The least-squares solve is deterministic
  pure Python; an optional NumPy engine vectorizes feature assembly and
  returns **bit-identical** parameters (every reduction goes through
  :func:`math.fsum`, which is exactly rounded and therefore
  order-independent — the same engine-parity discipline the compiled
  simulator uses).
* :class:`CalibrationReport` — predicted-vs-simulated error per
  schedule family, embedded in the profile; the planner's trust-gated
  verification reads these bounds (``repro-experiments calibrate
  fit|report|show`` surfaces them).

The fit minimizes **relative** residuals (rows are scaled by the
simulated time) with a tiny ridge term pulling toward the analytic
identity, so the fitted parameters can never be worse than the
uncalibrated model in summed squared relative error on the training
grid, and an uncalibrated profile *is* the analytic model exactly.
Profiles calibrate iteration time only; the memory model is untouched.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.costmodel.hardware import A100_SXM_80G, HardwareModel

#: Bumped whenever the estimator's feature extraction or the simulator's
#: pricing semantics change: a profile fitted under another version is
#: *stale* — the planner falls back to full top-k verification and
#: ``calibrate report --check`` fails until the profile is re-fitted.
COSTMODEL_VERSION = 1

#: Schema version of the profile JSON files.
PROFILE_SCHEMA_VERSION = 1

#: Feature order of every fitted parameter vector (see
#: :class:`PhaseFeatures`); profiles record it so a file fitted against
#: a different feature set is detected instead of misapplied.
FEATURE_NAMES: tuple[str, ...] = (
    "steady", "ramp", "overhead", "coll_alpha", "coll_beta", "p2p", "fixed",
)

#: Ridge weight pulling the fit toward the analytic identity — small
#: enough not to bias well-conditioned fits, large enough to pin the
#: collinear directions a single family's grid cannot identify.
RIDGE_LAMBDA = 1e-6

#: Name of the committed reference profile shipped with the package.
BUILTIN_PROFILE = "a100-sim"


@dataclass(frozen=True)
class PhaseFeatures:
    """Per-phase analytic components of one (method, config) estimate.

    Extracted by :func:`repro.planner.estimate.phase_features` from the
    memoized m=1 probe schedule.  The analytic model is the fixed
    combination ``steady + ramp``; a calibrated model reweights all
    seven components.  All values are seconds except ``fixed`` (the
    intercept, always 1).
    """

    method: str
    steady: float        #: m · max_d C_d — the pipeline steady-state bound
    ramp: float          #: (p − 1) · mean_d C_d — warmup/cooldown traversal
    overhead: float      #: m · (passes on the bottleneck device) · pass_overhead
    coll_alpha: float    #: m · per-microbatch collective latency (α) seconds
    coll_beta: float     #: m · per-microbatch collective bandwidth (β) seconds
    p2p: float           #: one forward+backward stage-to-stage P2P traversal
    fixed: float = 1.0   #: intercept

    def vector(self) -> tuple[float, ...]:
        """The values in :data:`FEATURE_NAMES` order."""
        return (
            self.steady, self.ramp, self.overhead, self.coll_alpha,
            self.coll_beta, self.p2p, self.fixed,
        )

    def analytic_time(self) -> float:
        """The uncalibrated combination — bit-identical to the planner's
        historical ``m · bottleneck + ramp`` estimate."""
        return self.steady + self.ramp


@dataclass(frozen=True)
class FamilyFit:
    """Fitted parameters and training-grid accuracy for one family."""

    method: str
    params: tuple[float, ...]
    samples: int
    mean_abs_rel_error: float
    max_abs_rel_error: float

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "params": list(self.params),
            "samples": self.samples,
            "mean_abs_rel_error": self.mean_abs_rel_error,
            "max_abs_rel_error": self.max_abs_rel_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FamilyFit:
        return cls(
            method=data["method"],
            params=tuple(float(v) for v in data["params"]),
            samples=int(data["samples"]),
            mean_abs_rel_error=float(data["mean_abs_rel_error"]),
            max_abs_rel_error=float(data["max_abs_rel_error"]),
        )


@dataclass(frozen=True)
class FamilyAccuracy:
    """Predicted-vs-simulated error of one family on one scenario."""

    method: str
    scenario: str  # "nominal" or a registered scenario name
    samples: int
    mean_abs_rel_error: float
    max_abs_rel_error: float
    baseline_mean_abs_rel_error: float  # the uncalibrated analytic model
    baseline_max_abs_rel_error: float

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "scenario": self.scenario,
            "samples": self.samples,
            "mean_abs_rel_error": self.mean_abs_rel_error,
            "max_abs_rel_error": self.max_abs_rel_error,
            "baseline_mean_abs_rel_error": self.baseline_mean_abs_rel_error,
            "baseline_max_abs_rel_error": self.baseline_max_abs_rel_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FamilyAccuracy:
        return cls(
            method=data["method"],
            scenario=data["scenario"],
            samples=int(data["samples"]),
            mean_abs_rel_error=float(data["mean_abs_rel_error"]),
            max_abs_rel_error=float(data["max_abs_rel_error"]),
            baseline_mean_abs_rel_error=float(data["baseline_mean_abs_rel_error"]),
            baseline_max_abs_rel_error=float(data["baseline_max_abs_rel_error"]),
        )


@dataclass(frozen=True)
class CalibrationReport:
    """Accuracy of a profile: per-family predicted-vs-simulated error.

    ``baseline_*`` columns price the same grid with the uncalibrated
    analytic model, so the report is simultaneously the fit's
    improvement statement and the planner's trust-gating input
    (family-level ``max_abs_rel_error`` bounds).
    """

    grid: str  # "full" / "quick" — which seeded grid produced it
    seed: int
    points: int
    families: tuple[FamilyAccuracy, ...]

    def family(self, method: str, scenario: str = "nominal") -> FamilyAccuracy | None:
        for row in self.families:
            if row.method == method and row.scenario == scenario:
                return row
        return None

    @property
    def mean_abs_rel_error(self) -> float:
        """Grid-wide mean absolute relative error (sample-weighted)."""
        total = math.fsum(f.mean_abs_rel_error * f.samples for f in self.families)
        count = sum(f.samples for f in self.families)
        return total / count if count else 0.0

    @property
    def baseline_mean_abs_rel_error(self) -> float:
        total = math.fsum(
            f.baseline_mean_abs_rel_error * f.samples for f in self.families
        )
        count = sum(f.samples for f in self.families)
        return total / count if count else 0.0

    def as_dict(self) -> dict:
        return {
            "grid": self.grid,
            "seed": self.seed,
            "points": self.points,
            "families": [f.as_dict() for f in self.families],
        }

    @classmethod
    def from_dict(cls, data: dict) -> CalibrationReport:
        return cls(
            grid=data["grid"],
            seed=int(data["seed"]),
            points=int(data["points"]),
            families=tuple(
                FamilyAccuracy.from_dict(f) for f in data["families"]
            ),
        )

    def render(self) -> str:
        """ASCII table in the style of the paper-table runners."""
        from repro.harness.tables import format_table

        rows = [
            [
                f.method,
                f.scenario,
                f.samples,
                f"{100.0 * f.mean_abs_rel_error:.2f}",
                f"{100.0 * f.max_abs_rel_error:.2f}",
                f"{100.0 * f.baseline_mean_abs_rel_error:.2f}",
                f"{100.0 * f.baseline_max_abs_rel_error:.2f}",
            ]
            for f in self.families
        ]
        title = (
            f"Calibration accuracy — grid {self.grid} (seed {self.seed}, "
            f"{self.points} points): fitted MARE "
            f"{100.0 * self.mean_abs_rel_error:.2f}% vs analytic "
            f"{100.0 * self.baseline_mean_abs_rel_error:.2f}%"
        )
        return format_table(
            [
                "method", "scenario", "n", "MARE%", "max|e|%",
                "analytic MARE%", "analytic max%",
            ],
            rows,
            title=title,
        )


@dataclass(frozen=True)
class HardwareProfile:
    """Per-SKU fitted cost-model parameters, serialized as versioned JSON.

    A profile with no fits is the analytic model; ``digest()`` keys the
    profile *content* into every planner cache, so two profiles — even
    two fits of the same SKU — never share estimate or probe entries.
    """

    name: str
    sku: str = A100_SXM_80G.name
    schema_version: int = PROFILE_SCHEMA_VERSION
    costmodel_version: int = COSTMODEL_VERSION
    seed: int = 0
    feature_names: tuple[str, ...] = FEATURE_NAMES
    fits: tuple[FamilyFit, ...] = ()
    report: CalibrationReport | None = None

    @property
    def calibrated(self) -> bool:
        """Whether the planner may trust this profile's error bounds.

        Requires fitted parameters, an embedded accuracy report, a
        matching feature set, and a current :data:`COSTMODEL_VERSION` —
        a profile fitted under older estimator semantics is stale and
        must not gate verification.
        """
        return (
            bool(self.fits)
            and self.report is not None
            and self.feature_names == FEATURE_NAMES
            and self.costmodel_version == COSTMODEL_VERSION
            and self.schema_version == PROFILE_SCHEMA_VERSION
        )

    def fit_for(self, method: str) -> FamilyFit | None:
        for fit in self.fits:
            if fit.method == method:
                return fit
        return None

    def error_bound(self, method: str, scenario: str | None = None) -> float | None:
        """Family-level |relative error| bound, or ``None`` if untrusted.

        ``None`` means the planner must fall back to full verification
        for this family: the profile is uncalibrated/stale, the family
        was never fitted, or the report does not cover ``scenario``.
        """
        if not self.calibrated:
            return None
        if self.fit_for(method) is None:
            return None
        row = self.report.family(method, scenario or "nominal")
        return None if row is None else row.max_abs_rel_error

    def digest(self) -> str:
        """SHA-256 over the canonical JSON rendering of the profile."""
        payload = json.dumps(self.as_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sku": self.sku,
            "schema_version": self.schema_version,
            "costmodel_version": self.costmodel_version,
            "seed": self.seed,
            "feature_names": list(self.feature_names),
            "fits": [f.as_dict() for f in self.fits],
            "report": None if self.report is None else self.report.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> HardwareProfile:
        return cls(
            name=data["name"],
            sku=data["sku"],
            schema_version=int(data["schema_version"]),
            costmodel_version=int(data["costmodel_version"]),
            seed=int(data["seed"]),
            feature_names=tuple(data["feature_names"]),
            fits=tuple(FamilyFit.from_dict(f) for f in data["fits"]),
            report=(
                None
                if data.get("report") is None
                else CalibrationReport.from_dict(data["report"])
            ),
        )

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys; ``repr`` floats round-trip)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> HardwareProfile:
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot load hardware profile {path}: {error}") from None
        return cls.from_dict(data)


class CostModel:
    """Pluggable iteration-time predictor for planner candidates.

    Subclasses override :meth:`predict` (seconds from a
    :class:`PhaseFeatures`) and may report per-family
    :meth:`error_bound`\\ s, which is what entitles the planner to
    shrink its top-k verification.  The ``profile`` ties the model to a
    content digest, keying every planner cache.
    """

    @property
    def profile(self) -> HardwareProfile:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def calibrated(self) -> bool:
        return False

    def digest(self) -> str:
        return self.profile.digest()

    def predict(self, features: PhaseFeatures) -> float:
        raise NotImplementedError

    def error_bound(self, method: str, scenario: str | None = None) -> float | None:
        """|relative error| bound for ``method``, or ``None`` = untrusted."""
        return None


class AnalyticCostModel(CostModel):
    """The default model: the paper's fixed analytic combination.

    ``predict`` returns ``steady + ramp`` — the exact float operations
    the planner has always used, so plans priced through the default
    model are bit-identical to the pre-calibration planner.
    """

    _PROFILE = HardwareProfile(name="analytic")

    @property
    def profile(self) -> HardwareProfile:
        return self._PROFILE

    def predict(self, features: PhaseFeatures) -> float:
        return features.analytic_time()


class CalibratedCostModel(CostModel):
    """A fitted :class:`HardwareProfile` applied per schedule family.

    Families without a fit (or a stale/feature-mismatched profile) fall
    back to the analytic combination, so a partially fitted profile
    degrades gracefully rather than mispricing unknown families.
    """

    def __init__(self, profile: HardwareProfile):
        self._profile = profile

    @property
    def profile(self) -> HardwareProfile:
        return self._profile

    @property
    def calibrated(self) -> bool:
        return self._profile.calibrated

    def predict(self, features: PhaseFeatures) -> float:
        if not self._profile.calibrated:
            return features.analytic_time()
        fit = self._profile.fit_for(features.method)
        if fit is None:
            return features.analytic_time()
        return predict_time(fit.params, features.vector())

    def error_bound(self, method: str, scenario: str | None = None) -> float | None:
        return self._profile.error_bound(method, scenario)


def predict_time(params: Sequence[float], vector: Sequence[float]) -> float:
    """θ · x with an exactly-rounded (order-independent) reduction."""
    return math.fsum(p * x for p, x in zip(params, vector))


# ---------------------------------------------------------------------------
# Cost-model registry
# ---------------------------------------------------------------------------

_ANALYTIC = AnalyticCostModel()
_REGISTRY: dict[str, CostModel] = {}


def builtin_profiles_dir() -> Path:
    """Directory of the profiles shipped inside the package."""
    return Path(__file__).resolve().parent / "profiles"


def register_cost_model(name: str, model: CostModel | HardwareProfile) -> None:
    """Register a model under ``name`` for lookup by the planner/CLI.

    Registration is process-local: sweep *process* pools resolve only
    built-in names ("analytic", shipped profiles) in their workers.
    """
    if name == "analytic":
        raise ValueError("'analytic' is reserved for the default model")
    if isinstance(model, HardwareProfile):
        model = CalibratedCostModel(model)
    _REGISTRY[name] = model


def get_cost_model(name: str | None = None) -> CostModel:
    """Resolve a cost model by name.

    ``None`` or ``"analytic"`` is the default analytic model; other
    names look up runtime registrations first, then the profile JSONs
    shipped in :func:`builtin_profiles_dir`.
    """
    if name is None or name == "analytic":
        return _ANALYTIC
    model = _REGISTRY.get(name)
    if model is not None:
        return model
    path = builtin_profiles_dir() / f"{name}.json"
    if path.exists():
        model = CalibratedCostModel(HardwareProfile.load(path))
        _REGISTRY[name] = model
        return model
    raise KeyError(
        f"unknown cost model {name!r}; expected 'analytic', a registered "
        f"name or a built-in profile ({', '.join(sorted(list_cost_models()))})"
    )


def resolve_cost_model(spec: CostModel | HardwareProfile | str | None) -> CostModel:
    """Normalize any cost-model spec (name, profile, model) to a model."""
    if spec is None or isinstance(spec, str):
        return get_cost_model(spec)
    if isinstance(spec, HardwareProfile):
        return CalibratedCostModel(spec)
    return spec


def list_cost_models() -> tuple[str, ...]:
    """Every resolvable name: analytic, registered, and built-in profiles."""
    names = {"analytic", *_REGISTRY}
    directory = builtin_profiles_dir()
    if directory.is_dir():
        names.update(p.stem for p in directory.glob("*.json"))
    return tuple(sorted(names))


# ---------------------------------------------------------------------------
# The seeded calibration grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationConfig:
    """One (family, config) cell of the calibration grid.

    ``shape`` picks the model factory: ``"1f1b"`` (Table 1 shapes) or
    ``"vhalf"`` (Table 2 shapes).  ``"auto"`` infers it from the method
    prefix, the historical behaviour.  The grid crosses every family
    with *both* shape blocks: a plan prices all 8 families on one model
    config, so the fitted error bounds must hold for e.g. ``vocab-2``
    on a Table 2 shape too, not just on the shapes its own table uses.
    """

    method: str
    devices: int
    vocab_size: int
    seq_length: int
    microbatches: int
    shape: str = "auto"


@dataclass(frozen=True)
class CalibrationPoint:
    """One grid cell with its extracted features and simulated truth."""

    config: CalibrationConfig
    features: PhaseFeatures
    simulated: float

    @property
    def analytic(self) -> float:
        return self.features.analytic_time()


#: Microbatch counts of the fitting grid.  They bracket the planner's
#: interactive range and extend high enough that the (near-linear in m)
#: fit extrapolates to the paper's m=128 without leaving its support.
_FULL_MICROBATCHES = (8, 16, 32, 64)

#: (shape block, device counts, vocabulary sizes) of the grid — the
#: Table 5/6 model shapes the evaluation itself sweeps.
_SHAPE_BLOCKS = (
    ("1f1b", (8, 16), (64 * 1024, 256 * 1024)),
    ("vhalf", (16,), (64 * 1024, 128 * 1024, 256 * 1024)),
)


def calibration_grid(
    quick: bool = False, seed: int = 0
) -> tuple[CalibrationConfig, ...]:
    """The seeded config grid the fitting loop regresses over.

    Table 5/6 model shapes (the evaluation's own configs) on 8/16
    GPUs, vocabularies 64k–256k, microbatches
    :data:`_FULL_MICROBATCHES` — and, on every config, **every**
    schedule family that is structurally feasible there, not just the
    families of the config's own table.  A single :func:`plan` call
    prices all families on one model shape, so a family's stored error
    bound is only sound for trust gating if its fit saw that family on
    every shape block the planner can pair it with.  ``quick``
    subsamples deterministically under ``seed`` (same seed → same grid
    → bit-identical fit), keeping at least :data:`FEATURE_NAMES` + 1
    points per family so the quick fit stays well-posed.
    """
    from repro.config import ParallelConfig
    from repro.harness.experiments import KNOWN_METHODS
    from repro.planner.estimate import infeasibility_reason

    configs: list[CalibrationConfig] = []
    for shape, device_counts, vocabs in _SHAPE_BLOCKS:
        for devices in device_counts:
            for vocab in vocabs:
                for m in _FULL_MICROBATCHES:
                    for method in KNOWN_METHODS:
                        config = CalibrationConfig(
                            method, devices, vocab, 2048, m, shape
                        )
                        parallel = ParallelConfig(
                            pipeline_size=devices,
                            num_microbatches=m,
                            microbatch_size=1,
                        )
                        if (
                            infeasibility_reason(
                                method, _model_for(config), parallel
                            )
                            is None
                        ):
                            configs.append(config)
    if not quick:
        return tuple(configs)
    rng = random.Random(seed)
    keep = max(len(FEATURE_NAMES) + 1, 8)
    quick_configs: list[CalibrationConfig] = []
    for method in KNOWN_METHODS:
        family = [c for c in configs if c.method == method]
        # Stratified across shape blocks: half the budget per block, so
        # a quick fit never extrapolates to a shape it has not seen.
        sampled: list[CalibrationConfig] = []
        for shape, _, _ in _SHAPE_BLOCKS:
            block = [c for c in family if c.shape == shape]
            sampled.extend(rng.sample(block, min(keep // 2, len(block))))
        if len(sampled) < keep:
            rest = [c for c in family if c not in sampled]
            sampled.extend(rng.sample(rest, min(keep - len(sampled), len(rest))))
        quick_configs.extend(
            sorted(
                sampled,
                key=lambda c: (c.shape, c.devices, c.vocab_size, c.microbatches),
            )
        )
    return tuple(quick_configs)


def _model_for(config: CalibrationConfig):
    from repro.harness.settings import model_for_1f1b, model_for_vhalf

    shape = config.shape
    if shape == "auto":
        shape = "vhalf" if config.method.startswith("vhalf") else "1f1b"
    factory = model_for_vhalf if shape == "vhalf" else model_for_1f1b
    return factory(config.devices, config.seq_length, config.vocab_size)


def collect_points(
    configs: Iterable[CalibrationConfig],
    *,
    hardware: HardwareModel = A100_SXM_80G,
    refine: bool = True,
) -> list[CalibrationPoint]:
    """Features + simulator ground truth for every grid config.

    Ground truth is the discrete-event simulator's iteration time
    through the exact code path the planner verifies with
    (:func:`repro.harness.experiments.run_method`), so a fitted profile
    predicts precisely the quantity trust-gated planning skips.
    """
    from repro.config import ParallelConfig
    from repro.harness.experiments import run_method
    from repro.planner.estimate import phase_features
    from repro.sim.runtime import SimulationSetup

    points: list[CalibrationPoint] = []
    for config in configs:
        model = _model_for(config)
        parallel = ParallelConfig(
            pipeline_size=config.devices,
            num_microbatches=config.microbatches,
            microbatch_size=1,
        )
        setup = SimulationSetup(model, parallel, hardware=hardware)
        features = phase_features(config.method, setup)
        metrics = run_method(
            config.method, model, parallel, setup=setup, refine=refine
        )
        points.append(
            CalibrationPoint(
                config=config, features=features, simulated=metrics.iteration_time
            )
        )
    return points


# ---------------------------------------------------------------------------
# Deterministic least squares (pure Python; optional NumPy assembly)
# ---------------------------------------------------------------------------


def _resolve_engine(engine: str) -> str:
    if engine not in ("auto", "numpy", "python"):
        raise ValueError(
            f"unknown fit engine {engine!r}; expected 'auto', 'numpy' or 'python'"
        )
    if engine == "auto":
        try:
            import numpy  # noqa: F401
        except ImportError:
            return "python"
        return "numpy"
    if engine == "numpy":
        import numpy  # noqa: F401  (raises if unavailable, as requested)
    return engine


def _scaled_rows_python(
    vectors: list[tuple[float, ...]], targets: list[float]
) -> list[list[float]]:
    return [
        [x / y for x in vector] for vector, y in zip(vectors, targets)
    ]


def _scaled_rows_numpy(
    vectors: list[tuple[float, ...]], targets: list[float]
) -> list[list[float]]:
    import numpy as np

    rows = np.asarray(vectors, dtype=np.float64) / np.asarray(
        targets, dtype=np.float64
    ).reshape(-1, 1)
    # IEEE elementwise division is identical to the scalar path; every
    # *reduction* below goes through math.fsum either way, so the two
    # engines produce bit-identical normal equations.
    return [[float(v) for v in row] for row in rows]


def _solve_linear(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting — deterministic."""
    k = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(a[r][col]))
        if a[pivot][col] == 0.0:
            raise ValueError("singular normal equations; widen the fitting grid")
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, k):
            factor = a[row][col] / a[col][col]
            if factor != 0.0:
                for j in range(col, k + 1):
                    a[row][j] -= factor * a[col][j]
    theta = [0.0] * k
    for col in range(k - 1, -1, -1):
        acc = a[col][k] - math.fsum(a[col][j] * theta[j] for j in range(col + 1, k))
        theta[col] = acc / a[col][col]
    return theta


def _analytic_identity() -> tuple[float, ...]:
    """θ₀: the parameter vector that *is* the analytic model."""
    return tuple(
        1.0 if name in ("steady", "ramp") else 0.0 for name in FEATURE_NAMES
    )


def fit_family(
    points: Sequence[CalibrationPoint],
    *,
    engine: str = "auto",
    ridge: float = RIDGE_LAMBDA,
) -> tuple[float, ...]:
    """Fit one family's parameter vector against simulated ground truth.

    Ridge-regularized least squares on *relative* residuals:
    minimize ``Σ ((θ·x_i − y_i) / y_i)² + λ Σ d_a (θ_a − θ0_a)²`` with
    ``d_a`` the Gram diagonal (scale-free regularization) and ``θ0`` the
    analytic identity.  Since ``θ0`` is feasible, the fit's summed
    squared relative error can never exceed the uncalibrated model's on
    the same points.  Deterministic: fsum reductions + partial-pivot
    elimination, identical bits under either engine.
    """
    if not points:
        raise ValueError("cannot fit a family with no calibration points")
    mode = _resolve_engine(engine)
    vectors = [p.features.vector() for p in points]
    targets = [p.simulated for p in points]
    if any(y <= 0.0 for y in targets):
        raise ValueError("simulated iteration times must be positive")
    scaled = (
        _scaled_rows_numpy(vectors, targets)
        if mode == "numpy"
        else _scaled_rows_python(vectors, targets)
    )
    k = len(FEATURE_NAMES)
    gram = [
        [math.fsum(row[a] * row[b] for row in scaled) for b in range(k)]
        for a in range(k)
    ]
    rhs = [math.fsum(row[a] for row in scaled) for a in range(k)]
    theta0 = _analytic_identity()
    for a in range(k):
        d = gram[a][a] if gram[a][a] > 0.0 else 1.0
        gram[a][a] += ridge * d
        rhs[a] += ridge * d * theta0[a]
    return tuple(_solve_linear(gram, rhs))


def _errors(
    points: Sequence[CalibrationPoint], params: Sequence[float] | None
) -> tuple[float, float]:
    """(mean, max) absolute relative error of ``params`` (None = analytic)."""
    rel = []
    for p in points:
        predicted = (
            p.analytic if params is None else predict_time(params, p.features.vector())
        )
        rel.append(abs(predicted - p.simulated) / p.simulated)
    return math.fsum(rel) / len(rel), max(rel)


def sum_squared_relative_error(
    points: Sequence[CalibrationPoint], params: Sequence[float] | None = None
) -> float:
    """Σ of squared relative errors — the fitting objective's data term."""
    return math.fsum(
        (
            (
                (p.analytic if params is None else predict_time(params, p.features.vector()))
                - p.simulated
            )
            / p.simulated
        )
        ** 2
        for p in points
    )


def fit_points(
    points: Sequence[CalibrationPoint],
    *,
    name: str = BUILTIN_PROFILE,
    grid: str = "full",
    seed: int = 0,
    engine: str = "auto",
    sku: str = A100_SXM_80G.name,
) -> HardwareProfile:
    """Fit a :class:`HardwareProfile` from pre-collected points."""
    by_family: dict[str, list[CalibrationPoint]] = {}
    for point in points:
        by_family.setdefault(point.config.method, []).append(point)
    fits: list[FamilyFit] = []
    rows: list[FamilyAccuracy] = []
    for method in sorted(by_family):
        family_points = by_family[method]
        params = fit_family(family_points, engine=engine)
        mean_err, max_err = _errors(family_points, params)
        base_mean, base_max = _errors(family_points, None)
        fits.append(
            FamilyFit(
                method=method,
                params=params,
                samples=len(family_points),
                mean_abs_rel_error=mean_err,
                max_abs_rel_error=max_err,
            )
        )
        rows.append(
            FamilyAccuracy(
                method=method,
                scenario="nominal",
                samples=len(family_points),
                mean_abs_rel_error=mean_err,
                max_abs_rel_error=max_err,
                baseline_mean_abs_rel_error=base_mean,
                baseline_max_abs_rel_error=base_max,
            )
        )
    report = CalibrationReport(
        grid=grid, seed=seed, points=len(list(points)), families=tuple(rows)
    )
    return HardwareProfile(
        name=name, sku=sku, seed=seed, fits=tuple(fits), report=report
    )


def fit_profile(
    name: str = BUILTIN_PROFILE,
    *,
    quick: bool = False,
    seed: int = 0,
    engine: str = "auto",
    hardware: HardwareModel = A100_SXM_80G,
) -> HardwareProfile:
    """The full fitting loop: seeded grid → simulate → regress → report."""
    configs = calibration_grid(quick=quick, seed=seed)
    points = collect_points(configs, hardware=hardware)
    return fit_points(
        points,
        name=name,
        grid="quick" if quick else "full",
        seed=seed,
        engine=engine,
        sku=hardware.name,
    )


def evaluate_profile(
    profile: HardwareProfile,
    *,
    quick: bool = True,
    seed: int | None = None,
    hardware: HardwareModel = A100_SXM_80G,
) -> CalibrationReport:
    """Re-measure a profile's accuracy against the *current* simulator.

    This is the drift detector: the committed reference profile's
    stored bounds are only as good as the estimator/simulator pair they
    were fitted under, so CI re-prices a seeded grid and compares.
    """
    seed = profile.seed if seed is None else seed
    configs = calibration_grid(quick=quick, seed=seed)
    points = collect_points(configs, hardware=hardware)
    model = CalibratedCostModel(profile)
    by_family: dict[str, list[CalibrationPoint]] = {}
    for point in points:
        by_family.setdefault(point.config.method, []).append(point)
    rows: list[FamilyAccuracy] = []
    for method in sorted(by_family):
        family_points = by_family[method]
        rel = [
            abs(model.predict(p.features) - p.simulated) / p.simulated
            for p in family_points
        ]
        base_mean, base_max = _errors(family_points, None)
        rows.append(
            FamilyAccuracy(
                method=method,
                scenario="nominal",
                samples=len(family_points),
                mean_abs_rel_error=math.fsum(rel) / len(rel),
                max_abs_rel_error=max(rel),
                baseline_mean_abs_rel_error=base_mean,
                baseline_max_abs_rel_error=base_max,
            )
        )
    return CalibrationReport(
        grid="quick" if quick else "full",
        seed=seed,
        points=len(points),
        families=tuple(rows),
    )


def check_profile(
    profile: HardwareProfile,
    report: CalibrationReport,
    *,
    tolerance: float = 1.25,
) -> list[str]:
    """Problems that should fail CI: staleness or drifted accuracy.

    ``report`` is a fresh :func:`evaluate_profile` run; each family's
    re-measured max error may exceed the profile's stored bound by at
    most ``tolerance``× (the stored bound is what trust-gated planning
    relies on).
    """
    problems: list[str] = []
    if not profile.calibrated:
        problems.append(
            f"profile {profile.name!r} is not calibrated "
            f"(costmodel_version {profile.costmodel_version} vs "
            f"current {COSTMODEL_VERSION})"
        )
        return problems
    for fit in profile.fits:
        row = report.family(fit.method)
        if row is None:
            problems.append(
                f"{fit.method}: fitted family missing from the evaluation grid"
            )
            continue
        bound = tolerance * max(fit.max_abs_rel_error, 1e-9)
        if row.max_abs_rel_error > bound:
            problems.append(
                f"{fit.method}: re-measured max error "
                f"{100 * row.max_abs_rel_error:.2f}% exceeds "
                f"{tolerance}x the stored bound "
                f"{100 * fit.max_abs_rel_error:.2f}% — estimator drift; "
                f"re-fit the profile"
            )
    return problems
