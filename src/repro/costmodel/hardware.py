"""Hardware description of the paper's testbed.

The experiments ran on NVIDIA A100 SXM 80G GPUs, 8 per node, with nodes
connected by a RoCE RDMA network.  The simulator needs peak arithmetic
throughput (to convert FLOPs into seconds through the efficiency
model), memory capacity (to flag OOM configurations, e.g. Interlaced at
32 GPUs / 4096 or V-Half Baseline at 256k vocabulary), and link
bandwidths for the communication timing model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareModel:
    """A homogeneous GPU cluster abstraction.

    Attributes
    ----------
    peak_flops:
        Dense BF16 peak per device, FLOP/s.
    memory_bytes:
        HBM capacity per device.
    intra_node_bandwidth:
        Per-device NVLink bandwidth, bytes/s.
    inter_node_bandwidth:
        Per-device RDMA bandwidth, bytes/s.
    link_latency:
        Fixed per-message latency (the α of the α–β model) on
        intra-node links, seconds.
    inter_node_latency:
        α for messages crossing a node boundary; ``None`` (the
        default, and the paper's homogeneous testbed) reuses
        ``link_latency``, so the two-tier model only activates when a
        cluster scenario sets it explicitly.
    kernel_launch_overhead:
        Fixed cost added to every pass (kernel launches, Python-side
        scheduling); seconds.
    """

    name: str = "A100-SXM-80G"
    peak_flops: float = 312e12
    memory_bytes: float = 80.0 * 1024**3
    intra_node_bandwidth: float = 250e9
    inter_node_bandwidth: float = 22e9
    link_latency: float = 10e-6
    kernel_launch_overhead: float = 10e-6
    inter_node_latency: float | None = None

    @property
    def inter_link_latency(self) -> float:
        """α for inter-node messages (``link_latency`` unless overridden)."""
        if self.inter_node_latency is None:
            return self.link_latency
        return self.inter_node_latency

    def fits(self, required_bytes: float) -> bool:
        """Whether ``required_bytes`` fits in one device's HBM."""
        return required_bytes <= self.memory_bytes


#: The exact device used in the paper's evaluation.
A100_SXM_80G = HardwareModel()
