"""FLOP counts for transformer and vocabulary layers.

Implements Table 4 of the paper (Appendix A), which follows the
derivation of Narayanan et al. (2021) and neglects insignificant terms:

=============  ======================  ==================
layer type     compute FLOPs            param memory
=============  ======================  ==================
transformer    ``b·s·h·(72h + 12s)``   ``24 h^2``
input          ``3·b·s·h``             ``2 h V``
output         ``6·b·s·h·V``           ``2 h V``
=============  ======================  ==================

The compute column is the *total* over forward + backward for one
microbatch.  Forward is one third of it for matmul-dominated layers
(backward does two matmuls per forward matmul).  The paper's MFU metric
divides these model FLOPs by elapsed time and hardware peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig


@dataclass(frozen=True)
class LayerFlops:
    """Forward/backward FLOP split for one layer and one microbatch.

    ``backward`` covers both the activation-gradient and the
    weight-gradient computation.  ``total`` is their sum and matches the
    Table 4 entries.
    """

    forward: float
    backward: float

    @property
    def total(self) -> float:
        return self.forward + self.backward


def transformer_layer_flops(model: ModelConfig, microbatch_size: int = 1) -> LayerFlops:
    """FLOPs of a single transformer layer for one microbatch.

    Total is ``b·s·h·(72h + 12s)``: the factor 72h comes from the six
    ``h×h``-scale matmuls (QKV, attention output, two MLP matmuls at 4h
    width) counted as 2 FLOPs/MAC and tripled for fwd+bwd; the ``12s``
    term is the attention score/context matmuls.
    """
    b = microbatch_size
    s = model.seq_length
    h = model.hidden_size
    total = b * s * h * (72 * h + 12 * s)
    # Matmul-dominated: backward = 2x forward (grad wrt input + weights).
    return LayerFlops(forward=total / 3.0, backward=total * 2.0 / 3.0)


def input_layer_flops(model: ModelConfig, microbatch_size: int = 1) -> LayerFlops:
    """FLOPs of the input embedding layer for one microbatch.

    The lookup itself is memory-bound; Table 4 charges ``3·b·s·h``
    for the elementwise scale/add work in forward and the scatter-add in
    backward.
    """
    total = 3.0 * microbatch_size * model.seq_length * model.hidden_size
    return LayerFlops(forward=total / 3.0, backward=total * 2.0 / 3.0)


def output_layer_flops(
    model: ModelConfig, microbatch_size: int = 1, vocab_size: int | None = None
) -> LayerFlops:
    """FLOPs of the output projection + softmax + cross-entropy.

    Total ``6·b·s·h·V``: one ``[bs,h]×[h,V]`` matmul forward (2bshV) and
    two backward (∇X and ∇W, 4bshV).  ``vocab_size`` overrides the model
    vocabulary (used for per-shard costs after partitioning).
    """
    v = model.vocab_size if vocab_size is None else vocab_size
    b = microbatch_size
    fwd = 2.0 * b * model.seq_length * model.hidden_size * v
    bwd = 4.0 * b * model.seq_length * model.hidden_size * v
    return LayerFlops(forward=fwd, backward=bwd)


def model_flops_per_iteration(
    model: ModelConfig, microbatch_size: int, num_microbatches: int
) -> float:
    """Model FLOPs of one training iteration (all layers, all microbatches).

    This is the numerator of the paper's MFU metric (Narayanan et al.
    accounting: only "useful" model FLOPs count, recomputation does not).
    """
    per_microbatch = (
        model.num_layers * transformer_layer_flops(model, microbatch_size).total
        + input_layer_flops(model, microbatch_size).total
        + output_layer_flops(model, microbatch_size).total
    )
    return per_microbatch * num_microbatches


def vocab_to_transformer_compute_ratio(model: ModelConfig) -> tuple[float, float]:
    """Compute of (input, output) layer in units of one transformer layer.

    Reproduces the left panel of Figure 2: for Gemma2-9B at V=256k the
    output layer costs roughly 5 transformer layers.
    """
    t = transformer_layer_flops(model).total
    return (
        input_layer_flops(model).total / t,
        output_layer_flops(model).total / t,
    )
