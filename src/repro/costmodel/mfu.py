"""Model FLOPs Utilization (MFU), the paper's throughput metric.

Following Narayanan et al. (2021), MFU divides the *model* FLOPs of an
iteration (Table 4 accounting — activation recomputation or other
redundant work does not count) by the elapsed wall time multiplied by
the aggregate peak throughput of all devices.
"""

from __future__ import annotations

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.flops import model_flops_per_iteration
from repro.costmodel.hardware import HardwareModel


def iteration_flops(model: ModelConfig, parallel: ParallelConfig) -> float:
    """Model FLOPs of one iteration under ``parallel``'s microbatching."""
    return model_flops_per_iteration(
        model, parallel.microbatch_size, parallel.num_microbatches
    )


def mfu(
    model: ModelConfig,
    parallel: ParallelConfig,
    hardware: HardwareModel,
    iteration_time: float,
) -> float:
    """MFU in [0, 1] for an iteration that took ``iteration_time`` seconds."""
    if iteration_time <= 0:
        raise ValueError(f"iteration_time must be positive, got {iteration_time}")
    total_peak = hardware.peak_flops * parallel.pipeline_size
    return iteration_flops(model, parallel) / (iteration_time * total_peak)
