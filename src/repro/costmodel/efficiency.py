"""Kernel efficiency model: converting FLOPs into seconds.

GPU kernels do not run at peak FLOP/s.  Large, square-ish matmuls on an
A100 reach 55–65 % of peak in mixed precision under a training workload
(the paper's best MFU is ~51 %, and its Table 3 shows partitioned
vocabulary matmuls losing another 10–25 % because the per-device
operands shrink).  We model achieved efficiency of a ``[m,k]·[k,n]``
matmul as a separable saturation curve::

    eff(m, k, n) = e_max · s(m) · s(k) · s(n),   s(d) = d / (d + d_half)

which captures the two effects the paper names in §6.5: smaller
operands are "less parallelized" (tile quantization / wave quantization
→ saturation in every dimension) and below a critical size the kernel
becomes bandwidth-bound (the steep part of the curve).

Elementwise / memory-bound work is charged at a fraction of HBM
bandwidth, and every kernel launch pays a fixed overhead.  These two
terms — not the matmul curve — dominate the sub-linear scaling of the
*input* vocabulary layer (Table 3's bottom rows), whose output tensor
is ``[b·s, h]`` regardless of how finely the vocabulary is partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.hardware import HardwareModel


@dataclass(frozen=True)
class KernelEfficiencyModel:
    """Achieved-throughput model for GPU kernels.

    Attributes
    ----------
    max_matmul_efficiency:
        Ceiling fraction of peak FLOP/s for an infinitely large matmul.
    dim_half_size:
        The matmul dimension at which the saturation curve reaches half
        of its asymptote contribution (per dimension).
    hbm_efficiency:
        Fraction of peak HBM bandwidth achieved by elementwise kernels.
    hbm_bandwidth:
        Peak HBM bandwidth in bytes/s (A100 SXM: ~2.0e12).
    """

    max_matmul_efficiency: float = 0.66
    dim_half_size: float = 96.0
    hbm_efficiency: float = 0.75
    hbm_bandwidth: float = 2.0e12

    def _saturation(self, dim: float) -> float:
        if dim <= 0:
            raise ValueError(f"matmul dimension must be positive, got {dim}")
        return dim / (dim + self.dim_half_size)

    def matmul_efficiency(self, m: float, k: float, n: float) -> float:
        """Fraction of peak FLOP/s achieved by an ``[m,k]·[k,n]`` matmul."""
        return (
            self.max_matmul_efficiency
            * self._saturation(m)
            * self._saturation(k)
            * self._saturation(n)
        )

    def matmul_time(self, m: float, k: float, n: float, hardware: HardwareModel) -> float:
        """Seconds for one ``[m,k]·[k,n]`` matmul (2·m·k·n FLOPs)."""
        flops = 2.0 * m * k * n
        eff = self.matmul_efficiency(m, k, n)
        return flops / (hardware.peak_flops * eff) + hardware.kernel_launch_overhead

    def elementwise_time(self, num_bytes: float, hardware: HardwareModel) -> float:
        """Seconds for a memory-bound kernel touching ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / (self.hbm_bandwidth * self.hbm_efficiency) + (
            hardware.kernel_launch_overhead
        )

    def flops_time(
        self, flops: float, hardware: HardwareModel, efficiency: float
    ) -> float:
        """Seconds for ``flops`` at a fixed ``efficiency`` fraction of peak."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (hardware.peak_flops * efficiency)
