"""Analytic cost models for pipeline-parallel transformer training.

This package implements the quantitative analysis of the paper's
Appendix A (Table 4): compute FLOPs and parameter memory of transformer
and vocabulary layers, the activation-memory model of Korthikanti et
al., a hardware description of the paper's A100 testbed, a kernel
efficiency curve that converts FLOPs into seconds, and the MFU metric
used throughout the evaluation.

:mod:`repro.costmodel.calibrate` layers *measurement-calibrated*
pluggable cost models on top: per-SKU :class:`HardwareProfile`\\ s with
per-phase parameters fitted against simulator ground truth, a
:class:`CalibrationReport` recording predicted-vs-simulated error per
schedule family, and a :class:`CostModel` registry the planner resolves
by name (``PlannerConstraints(cost_model="a100-sim")``).
"""

from repro.costmodel.calibrate import (
    BUILTIN_PROFILE,
    COSTMODEL_VERSION,
    FEATURE_NAMES,
    AnalyticCostModel,
    CalibratedCostModel,
    CalibrationReport,
    CostModel,
    FamilyFit,
    HardwareProfile,
    PhaseFeatures,
    builtin_profiles_dir,
    calibration_grid,
    check_profile,
    evaluate_profile,
    fit_profile,
    get_cost_model,
    list_cost_models,
    register_cost_model,
    resolve_cost_model,
)
from repro.costmodel.flops import (
    LayerFlops,
    input_layer_flops,
    model_flops_per_iteration,
    output_layer_flops,
    transformer_layer_flops,
    vocab_to_transformer_compute_ratio,
)
from repro.costmodel.memory import (
    MemoryModel,
    activation_bytes_per_microbatch,
    input_layer_param_bytes,
    output_layer_param_bytes,
    transformer_layer_param_bytes,
    vocab_to_transformer_memory_ratio,
)
from repro.costmodel.hardware import HardwareModel, A100_SXM_80G
from repro.costmodel.efficiency import KernelEfficiencyModel
from repro.costmodel.mfu import mfu, iteration_flops

__all__ = [
    "AnalyticCostModel",
    "BUILTIN_PROFILE",
    "COSTMODEL_VERSION",
    "CalibratedCostModel",
    "CalibrationReport",
    "CostModel",
    "FEATURE_NAMES",
    "FamilyFit",
    "HardwareProfile",
    "PhaseFeatures",
    "builtin_profiles_dir",
    "calibration_grid",
    "check_profile",
    "evaluate_profile",
    "fit_profile",
    "get_cost_model",
    "list_cost_models",
    "register_cost_model",
    "resolve_cost_model",
    "LayerFlops",
    "transformer_layer_flops",
    "input_layer_flops",
    "output_layer_flops",
    "model_flops_per_iteration",
    "vocab_to_transformer_compute_ratio",
    "MemoryModel",
    "activation_bytes_per_microbatch",
    "transformer_layer_param_bytes",
    "input_layer_param_bytes",
    "output_layer_param_bytes",
    "vocab_to_transformer_memory_ratio",
    "HardwareModel",
    "A100_SXM_80G",
    "KernelEfficiencyModel",
    "mfu",
    "iteration_flops",
]
