"""Parameter and activation memory models.

Parameter memory follows Table 4 of the paper: per transformer layer
``24 h^2`` bytes of bf16 weights (12 h^2 parameters at 2 bytes), per
(untied) vocabulary layer ``2 h V`` bytes.  Training state multiplies
the weight bytes by ``train_state_factor``: Megatron-style mixed
precision keeps a bf16 parameter + bf16 gradient + fp32 master copy +
fp32 Adam first/second moments = 18 bytes per parameter = 9x the bf16
weight bytes.

Activation memory per microbatch and transformer layer follows
Korthikanti et al. (2023) without recomputation::

    s·b·h·(34 + 5·a·s/h) bytes

The vocabulary layers' activations are transient (the paper excludes
them from the balance analysis but the schedule holds the output-layer
softmax shard between S and T, which we model explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig

GiB = 1024.0**3


def transformer_layer_param_bytes(model: ModelConfig) -> float:
    """Weight bytes (bf16) of one transformer layer: ``24 h^2``."""
    return 24.0 * model.hidden_size * model.hidden_size


def input_layer_param_bytes(model: ModelConfig, vocab_size: int | None = None) -> float:
    """Weight bytes (bf16) of the input embedding: ``2 h V``."""
    v = model.vocab_size if vocab_size is None else vocab_size
    return 2.0 * model.hidden_size * v


def output_layer_param_bytes(model: ModelConfig, vocab_size: int | None = None) -> float:
    """Weight bytes (bf16) of the output projection: ``2 h V``."""
    v = model.vocab_size if vocab_size is None else vocab_size
    return 2.0 * model.hidden_size * v


def activation_bytes_per_microbatch(
    model: ModelConfig,
    microbatch_size: int = 1,
    layers: int = 1,
    flash_attention: bool = True,
) -> float:
    """Stored activation bytes for ``layers`` transformer layers.

    Korthikanti et al.'s per-layer formula is ``s·b·h·(34 + 5·a·s/h)``;
    with flash attention (the paper's A100 setting) the quadratic
    attention-matrix term disappears, leaving ``34·s·b·h``.
    """
    s = model.seq_length
    b = microbatch_size
    h = model.hidden_size
    a = model.num_attention_heads
    factor = 34.0 if flash_attention else 34.0 + 5.0 * a * s / h
    per_layer = s * b * h * factor
    return per_layer * layers


def vocab_to_transformer_memory_ratio(model: ModelConfig) -> tuple[float, float]:
    """Parameter memory of (input, output) layers in transformer-layer units.

    Reproduces the right panel of Figure 2.
    """
    t = transformer_layer_param_bytes(model)
    return (
        input_layer_param_bytes(model) / t,
        output_layer_param_bytes(model) / t,
    )


@dataclass(frozen=True)
class MemoryModel:
    """Converts layer assignments and live microbatch counts into bytes.

    Attributes
    ----------
    train_state_factor:
        Multiplier from bf16 weight bytes to full training-state bytes.
        Textbook mixed-precision Adam costs 18 B/param (factor 9); the
        default 7.0 (14 B/param) is calibrated against Table 5's
        baseline peak-memory column, between bf16-moment Adam
        (12 B/param) and the full fp32 recipe.
    vocab_state_factor:
        Same for vocabulary layers.  Megatron keeps embedding gradients
        in fp32 accumulators; the default matches the transformer factor
        which is accurate enough for balance analysis.
    output_softmax_bytes_per_element:
        Bytes held per logit element between the S and T passes of the
        partitioned output layer (softmax shard, bf16 activations plus
        fp32 statistics are dominated by the 4-byte softmax tensor).
    flash_attention:
        Whether the per-layer activation formula drops the quadratic
        attention-matrix term (the paper's setting).
    overhead_bytes:
        Constant per-device overhead (CUDA context, NCCL buffers,
        fragmentation); calibrated against Table 5's smallest setting.
    """

    train_state_factor: float = 7.0
    vocab_state_factor: float = 7.0
    output_softmax_bytes_per_element: float = 4.0
    flash_attention: bool = True
    overhead_bytes: float = 1.5 * GiB

    def transformer_stage_param_bytes(self, model: ModelConfig, num_layers: int) -> float:
        """Training-state bytes for ``num_layers`` transformer layers."""
        return num_layers * transformer_layer_param_bytes(model) * self.train_state_factor

    def input_layer_state_bytes(
        self, model: ModelConfig, vocab_size: int | None = None
    ) -> float:
        return input_layer_param_bytes(model, vocab_size) * self.vocab_state_factor

    def output_layer_state_bytes(
        self, model: ModelConfig, vocab_size: int | None = None
    ) -> float:
        return output_layer_param_bytes(model, vocab_size) * self.vocab_state_factor

    def activation_bytes(
        self, model: ModelConfig, microbatch_size: int, num_layers: int
    ) -> float:
        """Stored activations of one microbatch across ``num_layers`` layers."""
        return activation_bytes_per_microbatch(
            model, microbatch_size, num_layers, self.flash_attention
        )

    def output_shard_activation_bytes(
        self, model: ModelConfig, microbatch_size: int, vocab_shard: int
    ) -> float:
        """Bytes of the softmax shard a device holds between S and T."""
        return (
            microbatch_size
            * model.seq_length
            * vocab_shard
            * self.output_softmax_bytes_per_element
        )
