"""Semantics-preserving local rewrites over :class:`ScheduleIR`.

Each rewrite is a :class:`Rewrite` with two halves:

* an **applicability predicate** — :meth:`Rewrite.sites` enumerates the
  program points where the rewrite can fire, consulting the IR's
  dependence index and the current candidate's measured execution
  (bubbles, memory peaks) from the :class:`RewriteContext`;
* an **application** — :meth:`Rewrite.apply` returns a rewritten copy
  of the program plus a :class:`RewriteStep` trace entry.

Applicability is *necessary*, not sufficient: every candidate the
search keeps is additionally verified by replaying its emitted schedule
against the compiled-graph oracle (``Schedule.validate`` + compile +
execute + memory report), so a site that slipped through a predicate is
caught there, never silently mis-scored.

The catalog:

``swap-adjacent``
    Exchange two adjacent passes of different streams on one device
    when no dependence path orders them.  The micro-move the greedy
    refinement pass cannot make: it also applies to F/B passes, which
    refinement deliberately pins.
``hoist-collective``
    Relocate a vocabulary S/T pass within its legal window — between
    its same-stream neighbors, past only dependence-free ops — to land
    it in a pipeline bubble elsewhere in the device's order.
``activation-handoff``
    BPipe-style memory rebalancing: park one microbatch's transformer
    activation on a pipeline neighbor between its F and B.  Changes no
    op order — it trades the sender's peak for the receiver's — and is
    legal only when both devices have enough measured bubble time to
    hide the two P2P transfers.
``token-split``
    TeraPipe-style sequence slicing: split every microbatch in two
    along the token dimension, doubling ``m`` at half the per-pass
    compute.  Total compute is conserved (causal attention FLOPs
    redistribute across slices but sum to the original); per-pass host
    overhead and per-collective latency are *not* halved, which is the
    honest cost that keeps splitting from being free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimize.ir import ScheduleIR
from repro.scheduling.passes import Pass, PassType

#: Maximum token-split factor (sequence sliced at most into quarters).
MAX_SPLIT = 4
#: Maximum microbatch count a token split may produce.
MAX_SPLIT_MICROBATCHES = 1024
#: How far (in order slots) a hoist may move an S/T pass per step.
HOIST_WINDOW = 8


@dataclass(frozen=True)
class RewriteStep:
    """One applied rewrite, as recorded in an optimized plan's trace."""

    rule: str
    device: int
    description: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "device": self.device,
            "description": self.description,
        }


@dataclass(frozen=True)
class RewriteContext:
    """What a rewrite's applicability predicate may look at.

    ``iteration_time``/``device_busy``/``per_device_peak`` describe the
    *current* candidate as measured by the oracle replay; ``budget_bytes``
    is the planner's per-device memory budget (``None`` = unconstrained);
    ``p2p_seconds(src, dst)`` prices one microbatch's activation
    transfer under the active runtime binding.
    """

    seq_length: int
    budget_bytes: float | None
    iteration_time: float
    device_busy: tuple[float, ...]
    per_device_peak: tuple[float, ...]
    activation_bytes: tuple[float, ...]
    p2p_seconds: object  # Callable[[int, int], float]

    def idle(self, device: int) -> float:
        return self.iteration_time - self.device_busy[device]


class Rewrite:
    """Base class: a named local rewrite with predicate and application."""

    name: str = ""

    def sites(self, ir: ScheduleIR, ctx: RewriteContext) -> list:
        """Deterministically-ordered applicable sites (possibly empty)."""
        raise NotImplementedError

    def apply(self, ir: ScheduleIR, site) -> tuple[ScheduleIR, RewriteStep]:
        """A rewritten copy of ``ir`` plus the trace entry."""
        raise NotImplementedError


def _streams_differ(a: Pass, b: Pass) -> bool:
    return (a.type, a.chunk) != (b.type, b.chunk)


class SwapAdjacent(Rewrite):
    """Swap two adjacent, dependence-free passes on one device."""

    name = "swap-adjacent"

    def sites(self, ir: ScheduleIR, ctx: RewriteContext) -> list:
        deps = ir.deps()
        sites = []
        for device, order in enumerate(ir.device_orders):
            for i in range(len(order) - 1):
                a, b = order[i], order[i + 1]
                # Same-stream swaps break per-stream microbatch
                # monotonicity; dependence paths a→b pin the order.
                if _streams_differ(a, b) and not deps.path(a, b):
                    sites.append((device, i))
        return sites

    def apply(self, ir: ScheduleIR, site) -> tuple[ScheduleIR, RewriteStep]:
        device, i = site
        out = ir.copy()
        order = out.device_orders[device]
        a, b = order[i], order[i + 1]
        order[i], order[i + 1] = b, a
        return out, RewriteStep(
            rule=self.name, device=device, description=f"swap {a} <-> {b}"
        )


class HoistCollective(Rewrite):
    """Move a vocabulary S/T pass into a bubble elsewhere in its window."""

    name = "hoist-collective"

    def sites(self, ir: ScheduleIR, ctx: RewriteContext) -> list:
        deps = ir.deps()
        sites = []
        for device, order in enumerate(ir.device_orders):
            for i, op in enumerate(order):
                if op.type not in (PassType.S, PassType.T):
                    continue
                # Earlier placements: jump ops one at a time while no
                # jumped op feeds this one and streams stay monotone.
                for j in range(i - 1, max(i - 1 - HOIST_WINDOW, -1), -1):
                    jumped = order[j]
                    if not _streams_differ(jumped, op) or deps.path(jumped, op):
                        break
                    sites.append((device, i, j))
                # Later placements: symmetric, no jumped op may depend
                # on this one.
                for j in range(i + 1, min(i + 1 + HOIST_WINDOW, len(order))):
                    jumped = order[j]
                    if not _streams_differ(jumped, op) or deps.path(op, jumped):
                        break
                    sites.append((device, i, j))
        return sites

    def apply(self, ir: ScheduleIR, site) -> tuple[ScheduleIR, RewriteStep]:
        device, i, j = site
        out = ir.copy()
        order = out.device_orders[device]
        op = order.pop(i)
        order.insert(j, op)
        direction = "earlier" if j < i else "later"
        return out, RewriteStep(
            rule=self.name,
            device=device,
            description=f"hoist {op} {direction} by {abs(i - j)} slots",
        )


class ActivationHandoff(Rewrite):
    """BPipe-style activation handoff between memory-imbalanced stages.

    Fires only under a binding memory budget: when a device's measured
    peak exceeds the budget and a pipeline neighbor has headroom for one
    microbatch's transformer activation, that activation is parked on
    the neighbor between F and B.  The op streams are untouched; the
    legality check demands both devices' measured bubble time cover the
    two P2P transfers (offload after F, fetch before B), which is what
    lets BPipe claim the transfers are free.
    """

    name = "activation-handoff"

    def sites(self, ir: ScheduleIR, ctx: RewriteContext) -> list:
        if ctx.budget_bytes is None or ir.layout.num_chunks != 1:
            return []
        sites = []
        for src in range(ir.num_devices):
            # ctx peaks already include previously applied handoffs.
            act = ctx.activation_bytes[src]
            if act <= 0 or ctx.per_device_peak[src] <= ctx.budget_bytes:
                continue
            for dst in (src - 1, src + 1):
                if not 0 <= dst < ir.num_devices:
                    continue
                if ctx.per_device_peak[dst] + act > ctx.budget_bytes:
                    continue
                transfer = 2.0 * ctx.p2p_seconds(src, dst)
                if ctx.idle(src) < transfer or ctx.idle(dst) < transfer:
                    continue
                sites.append((src, dst, 1))
        return sites

    def apply(self, ir: ScheduleIR, site) -> tuple[ScheduleIR, RewriteStep]:
        src, dst, count = site
        out = ir.copy()
        out.handoffs = out.handoffs + ((src, dst, count),)
        return out, RewriteStep(
            rule=self.name,
            device=src,
            description=(
                f"hand off {count} microbatch activation(s) "
                f"from device {src} to device {dst}"
            ),
        )


#: Order of the two slices a pass splits into, per type: forward-side
#: work streams slices in sequence order; every stream must stay
#: microbatch-monotone after renumbering, so both slices keep ascending
#: order (TeraPipe's reverse backward-slice order is a dependence the
#: simulator does not model — ascending order is the conservative legal
#: choice).
class TokenSplit(Rewrite):
    """Split every microbatch's passes in two along the token dimension."""

    name = "token-split"

    def sites(self, ir: ScheduleIR, ctx: RewriteContext) -> list:
        if ir.split * 2 > MAX_SPLIT:
            return []
        if ctx.seq_length % (2 * ir.split) != 0:
            return []
        if ir.num_microbatches * 2 > MAX_SPLIT_MICROBATCHES:
            return []
        return [()]

    def apply(self, ir: ScheduleIR, site) -> tuple[ScheduleIR, RewriteStep]:
        out = ir.copy()
        out.device_orders = [
            [
                Pass(p.type, 2 * p.microbatch + half, p.device, p.chunk)
                for p in order
                for half in (0, 1)
            ]
            for order in ir.device_orders
        ]
        out.num_microbatches = ir.num_microbatches * 2
        out.split = ir.split * 2
        out.invalidate_deps()
        return out, RewriteStep(
            rule=self.name,
            device=-1,
            description=(
                f"split microbatches along tokens: m "
                f"{ir.num_microbatches} -> {out.num_microbatches} "
                f"(slice factor {out.split})"
            ),
        )


def default_rewrites() -> tuple[Rewrite, ...]:
    """The full rewrite catalog, in deterministic order."""
    return (SwapAdjacent(), HoistCollective(), ActivationHandoff(), TokenSplit())
