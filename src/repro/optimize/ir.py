"""A small schedule IR over the existing :class:`Schedule`/`Pass` structures.

The optimizer searches *around* the named schedule families by applying
local rewrites to a mutable program representation.  The representation
deliberately reuses the existing vocabulary: IR ops **are**
:class:`~repro.scheduling.passes.Pass` values, grouped into per-device
streams exactly like ``Schedule.device_orders``, plus the two pieces of
state the named generators cannot express — a token-split factor
(TeraPipe-style sequence slicing) and a list of BPipe-style activation
handoffs.  Every IR program lowers back to a plain :class:`Schedule`
via :meth:`ScheduleIR.emit`, so any candidate the search produces stays
simulable through :func:`repro.sim.compiled.compile_schedule` — the
compiled-graph oracle is the single source of truth for both the
candidate's score and its legality (an order whose dependencies cycle
deadlocks there and is rejected).

Beside the streams, the IR carries explicit *dependence edges*: the
order-independent data dependencies of the program (stage P2P chains,
collective barriers, input-layer couplings), mirroring the edge
enumeration of :func:`~repro.sim.compiled.compile_schedule` but without
any runtime binding.  Rewrites consult :class:`DependenceIndex` for
their applicability predicates — "may these two ops swap?" is "is
there no dependence path between them?" — while the oracle replay
remains the final legality check.
"""

from __future__ import annotations

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule

#: ``Schedule.metadata`` keys the IR round-trips through :meth:`emit`.
TOKEN_SPLIT_KEY = "token_split"
HANDOFF_KEY = "activation_handoffs"


class DependenceIndex:
    """Order-independent dependence reachability over one IR program.

    Nodes are the program's passes plus one pseudo-node per collective
    barrier; edges are exactly the data dependencies
    :func:`~repro.sim.compiled.compile_schedule` materializes (stage
    P2P chains, F→B at each stage, B→W, vocabulary/input/interlaced
    collective couplings and per-communicator serialization chains) —
    everything *except* the implicit per-device order chains, which are
    what the rewrites change.  ``path(a, b)`` answers "does a dependence
    path force ``a`` before ``b``?"; a swap or hoist that contradicts no
    such path preserves the program's topology.

    Reachability queries are a longest-path depth filter (an edge
    strictly increases depth, so ``depth[a] >= depth[b]`` proves no
    path) followed by a memoized BFS over the forward adjacency.
    """

    def __init__(self, ir: "ScheduleIR") -> None:
        self._id: dict[Pass, int] = {}
        passes: list[Pass] = []
        for order in ir.device_orders:
            for p in order:
                self._id[p] = len(passes)
                passes.append(p)
        self._adj: list[list[int]] = [[] for _ in range(len(passes))]
        self._build(ir, passes)
        self._depth = self._depths()
        self._memo: dict[tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _coll_node(self, kind: CollectiveKind, mb: int) -> int:
        key = (kind, mb)
        node = self._coll.get(key)
        if node is None:
            node = len(self._adj)
            self._coll[key] = node
            self._adj.append([])
        return node

    def _build(self, ir: "ScheduleIR", passes: list[Pass]) -> None:
        layout = ir.layout
        m = ir.num_microbatches
        self._coll: dict[tuple[CollectiveKind, int], int] = {}
        adj = self._adj
        pid = self._id

        def edge(src: int, dst: int) -> None:
            adj[src].append(dst)

        def node(type_: PassType, mb: int, device: int, chunk: int = 0) -> int:
            return pid[Pass(type_, mb, device, chunk)]

        stages = layout.num_stages
        holders = [layout.holder_of_stage(s) for s in range(stages)]
        for mb in range(m):
            for s in range(1, stages):
                src_dev, src_chunk = holders[s - 1]
                dst_dev, dst_chunk = holders[s]
                edge(node(PassType.F, mb, src_dev, src_chunk),
                     node(PassType.F, mb, dst_dev, dst_chunk))
                edge(node(PassType.B, mb, dst_dev, dst_chunk),
                     node(PassType.B, mb, src_dev, src_chunk))
            for s in range(stages):
                dev, chunk = holders[s]
                edge(node(PassType.F, mb, dev, chunk),
                     node(PassType.B, mb, dev, chunk))
                if ir.has_weight_passes:
                    edge(node(PassType.B, mb, dev, chunk),
                         node(PassType.W, mb, dev, chunk))

        def chain(kind: CollectiveKind) -> None:
            for mb in range(1, m):
                edge(self._coll_node(kind, mb - 1), self._coll_node(kind, mb))

        last_dev, last_chunk = holders[-1]
        first_dev, first_chunk = holders[0]
        devices = range(layout.num_devices)

        if ir.vocab_algorithm is not None:
            chain(CollectiveKind.C0_BROADCAST)
            chain(CollectiveKind.C1_STATS)
            if ir.vocab_algorithm == 1:
                chain(CollectiveKind.C2_GRAD_REDUCE)
            for mb in range(m):
                c0 = self._coll_node(CollectiveKind.C0_BROADCAST, mb)
                c1 = self._coll_node(CollectiveKind.C1_STATS, mb)
                edge(node(PassType.F, mb, last_dev, last_chunk), c0)
                for d in devices:
                    edge(c0, node(PassType.S, mb, d))
                    edge(node(PassType.S, mb, d), c1)
                    edge(c1, node(PassType.T, mb, d))
                last_b = node(PassType.B, mb, last_dev, last_chunk)
                if ir.vocab_algorithm == 1:
                    c2 = self._coll_node(CollectiveKind.C2_GRAD_REDUCE, mb)
                    for d in devices:
                        edge(node(PassType.T, mb, d), c2)
                    edge(c2, last_b)
                else:
                    edge(c1, last_b)

        if ir.has_input_passes:
            chain(CollectiveKind.INPUT_ALLREDUCE)
            chain(CollectiveKind.INPUT_BROADCAST)
            for mb in range(m):
                iar = self._coll_node(CollectiveKind.INPUT_ALLREDUCE, mb)
                ibc = self._coll_node(CollectiveKind.INPUT_BROADCAST, mb)
                for d in devices:
                    edge(node(PassType.IF, mb, d), iar)
                    edge(ibc, node(PassType.IB, mb, d))
                edge(iar, node(PassType.F, mb, first_dev, first_chunk))
                edge(node(PassType.B, mb, first_dev, first_chunk), ibc)

        if ir.interlaced:
            chain(CollectiveKind.C0_BROADCAST)
            chain(CollectiveKind.C1_STATS)
            chain(CollectiveKind.C2_GRAD_REDUCE)
            for mb in range(m):
                c0 = self._coll_node(CollectiveKind.C0_BROADCAST, mb)
                c1 = self._coll_node(CollectiveKind.C1_STATS, mb)
                c2 = self._coll_node(CollectiveKind.C2_GRAD_REDUCE, mb)
                edge(node(PassType.F, mb, last_dev, last_chunk), c0)
                for d in devices:
                    edge(c0, node(PassType.VF, mb, d))
                    edge(node(PassType.VF, mb, d), c1)
                    edge(c1, node(PassType.VB, mb, d))
                    edge(node(PassType.VB, mb, d), c2)
                edge(c2, node(PassType.B, mb, last_dev, last_chunk))

    def _depths(self) -> list[int]:
        """Longest-path depth per node (Kahn order; the DAG is acyclic
        by construction — device chains are excluded)."""
        n = len(self._adj)
        indeg = [0] * n
        for succs in self._adj:
            for v in succs:
                indeg[v] += 1
        depth = [0] * n
        frontier = [u for u in range(n) if indeg[u] == 0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if depth[v] < depth[u] + 1:
                        depth[v] = depth[u] + 1
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        nxt.append(v)
            frontier = nxt
        return depth

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def path(self, a: Pass, b: Pass) -> bool:
        """True when a dependence path forces ``a`` to run before ``b``."""
        u, v = self._id[a], self._id[b]
        if self._depth[u] >= self._depth[v]:
            return False
        key = (u, v)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        limit = self._depth[v]
        seen = {u}
        frontier = [u]
        found = False
        while frontier and not found:
            nxt = []
            for x in frontier:
                for y in self._adj[x]:
                    if y == v:
                        found = True
                        break
                    if y not in seen and self._depth[y] < limit:
                        seen.add(y)
                        nxt.append(y)
                if found:
                    break
            frontier = nxt
        self._memo[key] = found
        return found


class ScheduleIR:
    """A mutable schedule program the rewrites operate on.

    Lowered from a :class:`Schedule` with :meth:`from_schedule` and
    re-emitted with :meth:`emit`.  ``device_orders`` holds the per-device
    op streams (plain lists of :class:`Pass`); ``split`` is the token-
    split factor relative to the *original* microbatching (1 = none);
    ``handoffs`` records BPipe-style activation handoffs as
    ``(src_device, dst_device, microbatches)`` tuples.  The dependence
    index is built lazily and rebuilt whenever a rewrite changes the op
    set (token split) rather than just the order.
    """

    __slots__ = (
        "name", "num_microbatches", "layout", "vocab_algorithm",
        "has_weight_passes", "has_input_passes", "interlaced",
        "device_orders", "split", "handoffs", "_deps",
    )

    def __init__(self) -> None:
        self._deps: DependenceIndex | None = None

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "ScheduleIR":
        ir = cls()
        ir.name = schedule.name
        ir.num_microbatches = schedule.num_microbatches
        ir.layout = schedule.layout
        ir.vocab_algorithm = schedule.vocab_algorithm
        ir.has_weight_passes = schedule.has_weight_passes
        ir.has_input_passes = schedule.has_input_passes
        ir.interlaced = schedule.interlaced
        ir.device_orders = [list(order) for order in schedule.device_orders]
        ir.split = int(schedule.metadata.get(TOKEN_SPLIT_KEY, 1))
        ir.handoffs = tuple(schedule.metadata.get(HANDOFF_KEY, ()))
        return ir

    def copy(self) -> "ScheduleIR":
        ir = ScheduleIR()
        ir.name = self.name
        ir.num_microbatches = self.num_microbatches
        ir.layout = self.layout
        ir.vocab_algorithm = self.vocab_algorithm
        ir.has_weight_passes = self.has_weight_passes
        ir.has_input_passes = self.has_input_passes
        ir.interlaced = self.interlaced
        ir.device_orders = [list(order) for order in self.device_orders]
        ir.split = self.split
        ir.handoffs = self.handoffs
        # Dependences are order-independent, so a copy that only reorders
        # ops may keep sharing the parent's index.
        ir._deps = self._deps
        return ir

    @property
    def num_devices(self) -> int:
        return self.layout.num_devices

    def deps(self) -> DependenceIndex:
        """The program's dependence index (built on first use)."""
        if self._deps is None:
            self._deps = DependenceIndex(self)
        return self._deps

    def invalidate_deps(self) -> None:
        """Drop the index after a rewrite that changed the op set."""
        self._deps = None

    def emit(self) -> Schedule:
        """Lower back to a plain, simulable :class:`Schedule`.

        The result carries the IR's extra state in ``metadata`` so a
        round-trip through :meth:`from_schedule` is lossless.  Callers
        validate/execute the emitted schedule through the compiled-graph
        oracle; ``emit`` itself performs no checking.
        """
        metadata: dict = {}
        if self.split != 1:
            metadata[TOKEN_SPLIT_KEY] = self.split
        if self.handoffs:
            metadata[HANDOFF_KEY] = list(self.handoffs)
        return Schedule(
            name=self.name,
            num_microbatches=self.num_microbatches,
            layout=self.layout,
            device_orders=[list(order) for order in self.device_orders],
            vocab_algorithm=self.vocab_algorithm,
            has_weight_passes=self.has_weight_passes,
            has_input_passes=self.has_input_passes,
            interlaced=self.interlaced,
            metadata=metadata,
        )

    def pass_multiset(self) -> tuple:
        """Per-device multiset of ops (order-insensitive identity).

        Two IR programs with equal multisets (and equal ``split``)
        differ only in device orders — exactly the condition under which
        a compiled graph may be re-threaded via
        :meth:`~repro.sim.compiled.CompiledGraph.with_orders` instead of
        re-lowered.
        """
        return tuple(
            tuple(sorted(
                order,
                key=lambda p: (p.type.value, p.microbatch, p.chunk),
            ))
            for order in self.device_orders
        )
