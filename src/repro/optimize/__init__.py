"""Rewrite-based schedule search beyond the named families.

Public surface: :func:`optimize` / :class:`OptimizedPlan` (the entry
point and its result), the IR (:class:`ScheduleIR`,
:class:`DependenceIndex`), the rewrite catalog
(:func:`default_rewrites` and the concrete :class:`Rewrite` classes)
and the search strategies (:func:`get_strategy`,
:data:`STRATEGY_NAMES`).
"""

from repro.optimize.ir import DependenceIndex, ScheduleIR
from repro.optimize.optimizer import (
    DEFAULT_BUDGET,
    OPTIMIZER_VERSION,
    OptimizedPlan,
    optimize,
    optimize_cache_key,
)
from repro.optimize.rewrites import (
    ActivationHandoff,
    HoistCollective,
    Rewrite,
    RewriteContext,
    RewriteStep,
    SwapAdjacent,
    TokenSplit,
    default_rewrites,
)
from repro.optimize.search import (
    STRATEGY_NAMES,
    AnnealingStrategy,
    GreedyStrategy,
    ScoreContext,
    ScoredCandidate,
    SearchStrategy,
    TokenSplitRuntime,
    get_strategy,
)

__all__ = [
    "DEFAULT_BUDGET",
    "OPTIMIZER_VERSION",
    "ActivationHandoff",
    "AnnealingStrategy",
    "DependenceIndex",
    "GreedyStrategy",
    "HoistCollective",
    "OptimizedPlan",
    "Rewrite",
    "RewriteContext",
    "RewriteStep",
    "STRATEGY_NAMES",
    "ScheduleIR",
    "ScoreContext",
    "ScoredCandidate",
    "SearchStrategy",
    "SwapAdjacent",
    "TokenSplit",
    "TokenSplitRuntime",
    "default_rewrites",
    "get_strategy",
    "optimize",
    "optimize_cache_key",
]
