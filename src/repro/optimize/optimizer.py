"""``optimize``: rewrite-based schedule search beyond the named families.

:func:`optimize` is the planner's "go further" button: where
:func:`repro.planner.planner.plan` ranks the paper's fixed schedule
families, ``optimize`` starts from the best named family, lowers it
into the rewrite IR (:mod:`repro.optimize.ir`) and searches the local
rewrite space (:mod:`repro.optimize.rewrites`) with a seeded strategy
(:mod:`repro.optimize.search`), scoring every candidate against the
compiled-graph oracle.  The result is an :class:`OptimizedPlan`: the
discovered schedule, the rewrite trace that produced it, and its
verified speedup over the best named family.

Caching follows the planner's discipline exactly: results live in the
``"optimize"`` auxiliary namespace of the
:class:`~repro.planner.cache.PlanCache` under
:func:`optimize_cache_key`, which normalizes inputs the same way
:func:`~repro.planner.planner.plan_cache_key` does and folds in the
scenario signature, the cost model's *content* digest, the strategy
name, the seed and the evaluation budget — plus
:data:`OPTIMIZER_VERSION` so semantic changes invalidate stale entries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.calibrate import resolve_cost_model
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.costmodel.memory import GiB, MemoryModel
from repro.optimize.ir import ScheduleIR
from repro.optimize.rewrites import RewriteStep, default_rewrites
from repro.optimize.search import (
    STRATEGY_NAMES,
    ScoreContext,
    get_strategy,
)
from repro.planner.cache import PlanCache, config_digest
from repro.planner.planner import (
    PLANNER_VERSION,
    PlannerConstraints,
    default_plan_cache,
    plan,
)
from repro.scenarios import ClusterScenario, get_scenario
from repro.scheduling.schedule import Schedule
from repro.sim import SimulationSetup

#: Bumped whenever optimizer semantics change (IR lowering, rewrite
#: catalog, scoring, strategy behaviour), invalidating cached plans.
OPTIMIZER_VERSION = 1

#: Default number of oracle evaluations a search may spend.
DEFAULT_BUDGET = 96


@dataclass(frozen=True)
class OptimizedPlan:
    """Outcome of one :func:`optimize` run.

    ``baseline_method``/``baseline_time`` identify the best *named*
    family and its simulator-verified iteration time; ``optimized_time``
    is the discovered schedule's verified time under the same binding,
    and ``speedup`` their ratio (> 1 means the search won).
    ``baseline_times`` carries every feasible named family's verified
    time, so "beats every named family" is checkable from the result
    alone.  ``trace`` is the rewrite sequence that produced the
    discovered schedule, in application order.
    """

    baseline_method: str
    scenario: str | None
    strategy: str
    seed: int
    budget: int
    evaluations: int
    baseline_time: float
    optimized_time: float
    baseline_times: tuple[tuple[str, float], ...]
    trace: tuple[RewriteStep, ...]
    num_microbatches: int
    token_split: int
    peak_memory_gib: float
    memory_budget_gib: float
    cache_key: str = ""
    schedule: Schedule = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def speedup(self) -> float:
        """Verified baseline / optimized iteration time."""
        return self.baseline_time / self.optimized_time

    @property
    def improved(self) -> bool:
        """Whether the search strictly beat the best named family."""
        return self.optimized_time < self.baseline_time

    def beats_all_named(self) -> bool:
        """Whether the discovered time beats *every* named family."""
        return all(self.optimized_time < t for _, t in self.baseline_times)

    def as_dict(self) -> dict:
        """JSON-ready view (the service's and CLI's response body)."""
        return {
            "baseline_method": self.baseline_method,
            "scenario": self.scenario,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "baseline_time": self.baseline_time,
            "optimized_time": self.optimized_time,
            "speedup": self.speedup,
            "improved": self.improved,
            "beats_all_named": self.beats_all_named(),
            "baseline_times": [
                {"method": method, "time": time}
                for method, time in self.baseline_times
            ],
            "trace": [step.as_dict() for step in self.trace],
            "num_microbatches": self.num_microbatches,
            "token_split": self.token_split,
            "peak_memory_gib": self.peak_memory_gib,
            "memory_budget_gib": self.memory_budget_gib,
            "cache_key": self.cache_key,
        }

    def render(self) -> str:
        """ASCII report: the verified comparison plus the rewrite trace."""
        lines = [
            (
                f"optimize — start {self.baseline_method}"
                + (f", scenario {self.scenario}" if self.scenario else "")
                + f", strategy {self.strategy}, seed {self.seed}"
            ),
            (
                f"  baseline (best named family): {self.baseline_time:.6f}s"
            ),
            (
                f"  optimized: {self.optimized_time:.6f}s "
                f"(speedup {self.speedup:.4f}x, "
                f"{self.evaluations} candidates scored)"
            ),
            (
                f"  peak memory {self.peak_memory_gib:.2f} GiB "
                f"(budget {self.memory_budget_gib:.4g} GiB), "
                f"m={self.num_microbatches}"
                + (
                    f" (token split {self.token_split})"
                    if self.token_split > 1
                    else ""
                )
            ),
        ]
        if self.trace:
            lines.append("  rewrite trace:")
            for i, step in enumerate(self.trace, start=1):
                device = "all" if step.device < 0 else str(step.device)
                lines.append(
                    f"    {i:2d}. [{step.rule}] dev {device}: {step.description}"
                )
        else:
            lines.append("  rewrite trace: (empty — no improving rewrite found)")
        lines.append("  named-family times:")
        for method, time in self.baseline_times:
            marker = "<" if self.optimized_time < time else ">="
            lines.append(f"    {method:15s} {time:.6f}s  (optimized {marker})")
        return "\n".join(lines)


def _normalize(
    constraints: PlannerConstraints | None,
    scenario: ClusterScenario | str | None,
    strategy: str,
    budget: int,
) -> tuple[PlannerConstraints, ClusterScenario | None]:
    constraints = constraints or PlannerConstraints()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if strategy not in STRATEGY_NAMES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGY_NAMES}"
        )
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    return constraints, scenario


def optimize_cache_key(
    model: ModelConfig,
    parallel: ParallelConfig,
    constraints: PlannerConstraints | None = None,
    *,
    hardware: HardwareModel = A100_SXM_80G,
    memory_model: MemoryModel | None = None,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    strategy: str = "greedy",
    seed: int = 0,
    budget: int = DEFAULT_BUDGET,
) -> str:
    """The digest :func:`optimize` stores its result under.

    Public for the same reason as
    :func:`~repro.planner.planner.plan_cache_key`: serving-layer cache
    tiers address an optimized plan without computing it.
    """
    constraints, scenario = _normalize(constraints, scenario, strategy, budget)
    memory_model = memory_model or MemoryModel()
    scenario_sig = None if scenario is None else scenario.signature()
    cost_model_digest = resolve_cost_model(constraints.cost_model).digest()
    return config_digest(
        "optimize", model, parallel, constraints, hardware, memory_model,
        pass_overhead, scenario_sig, cost_model_digest, strategy, seed,
        budget, OPTIMIZER_VERSION, PLANNER_VERSION,
    )


def optimize(
    model: ModelConfig,
    parallel: ParallelConfig,
    constraints: PlannerConstraints | None = None,
    *,
    hardware: HardwareModel = A100_SXM_80G,
    memory_model: MemoryModel | None = None,
    cache: PlanCache | None = None,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    strategy: str = "greedy",
    seed: int = 0,
    budget: int = DEFAULT_BUDGET,
) -> OptimizedPlan:
    """Search the rewrite space for a schedule beating every named family.

    Runs :func:`~repro.planner.planner.plan` with full verification
    (every feasible family simulated, so the baseline comparison is
    oracle-verified, not estimated), lowers the winner into the rewrite
    IR and spends ``budget`` oracle evaluations on the chosen seeded
    strategy.  Deterministic for fixed inputs: the plan, the site
    enumeration and every random decision (drawn from
    ``random.Random(seed)``) are pure functions of the arguments, and
    the oracle replay is bit-identical across the NumPy and pure-Python
    engines.

    ``constraints`` are respected throughout: the memory budget bounds
    every candidate's simulated peak (including BPipe handoff
    adjustments), ``methods`` restricts the starting families, and the
    cost model prices the underlying plan (its content digest keys the
    cache entry).
    """
    constraints, scenario = _normalize(constraints, scenario, strategy, budget)
    memory_model = memory_model or MemoryModel()
    cache = cache if cache is not None else default_plan_cache()
    key = optimize_cache_key(
        model, parallel, constraints, hardware=hardware,
        memory_model=memory_model, pass_overhead=pass_overhead,
        scenario=scenario, strategy=strategy, seed=seed, budget=budget,
    )
    cached = cache.get_aux("optimize", key)
    if cached is not None:
        return cached

    # Verify *every* feasible named family with the simulator — the
    # "beats every named family" claim must rest on oracle times.
    plan_constraints = dataclasses.replace(constraints, simulate_top_k=None)
    plans = plan(
        model, parallel, plan_constraints, hardware=hardware,
        memory_model=memory_model, cache=cache, pass_overhead=pass_overhead,
        scenario=scenario,
    )
    best = plans.best
    baseline_times = tuple(
        (c.method, c.iteration_time)
        for c in plans.ranked
        if c.iteration_time is not None
    )

    schedule = plans.build_best_schedule(hardware=hardware)
    setup_kwargs = {} if pass_overhead is None else {"pass_overhead": pass_overhead}
    setup = SimulationSetup(model, parallel, hardware=hardware, **setup_kwargs)
    ctx = ScoreContext(
        setup,
        scenario=scenario,
        budget_bytes=plans.memory_budget_gib * GiB,
        memory_model=memory_model,
    )
    start = ctx.score(ScheduleIR.from_schedule(schedule), ())
    if start is None:  # pragma: no cover - plan() already verified it
        raise RuntimeError(
            f"best named family {best.method!r} failed oracle verification"
        )
    final = get_strategy(strategy).run(
        ctx, default_rewrites(), start, budget=budget, seed=seed
    )

    result = OptimizedPlan(
        baseline_method=best.method,
        scenario=None if scenario is None else scenario.name,
        strategy=strategy,
        seed=seed,
        budget=budget,
        evaluations=ctx.evaluations,
        baseline_time=start.time,
        optimized_time=final.time,
        baseline_times=baseline_times,
        trace=final.trace,
        num_microbatches=final.ir.num_microbatches,
        token_split=final.ir.split,
        peak_memory_gib=final.peak_bytes / GiB,
        memory_budget_gib=plans.memory_budget_gib,
        cache_key=key,
        schedule=final.schedule,
    )
    cache.put_aux("optimize", key, result)
    return result
