"""Seeded search over the rewrite space, scored by the compiled oracle.

:class:`ScoreContext` turns an IR program into a verified
:class:`ScoredCandidate`: emit → ``Schedule.validate`` → compile (or
re-thread an existing graph via
:meth:`~repro.sim.compiled.CompiledGraph.with_orders` when only the
orders changed) → in-order execute → memory report.  A program that
fails validation or deadlocks scores as ``None`` — the oracle is the
final legality check behind every rewrite's applicability predicate.

Candidates that share a compiled structure are scored in batches:
re-order rewrites re-thread one lowered graph (``with_orders`` shares
every structural array and the priced durations), and when a candidate
must be ranked under scenario jitter the Monte Carlo draws go through
:meth:`~repro.sim.compiled.CompiledGraph.execute_many_summary` — one
batched kernel call for all samples — via
:func:`repro.scenarios.perturb.robustness_stats`.

Two :class:`SearchStrategy` implementations ship behind one interface:

* :class:`GreedyStrategy` — rounds of "enumerate sites, score a seeded
  sample of them, take the best strict improvement";
* :class:`AnnealingStrategy` — simulated annealing with a geometric
  temperature ladder; uphill moves are accepted with the Metropolis
  probability, and the best candidate ever seen is returned.

Both draw every random decision from ``random.Random(seed)`` and score
through the same deterministic oracle, so a fixed seed reproduces the
search bit-for-bit on either simulation engine (the NumPy and
pure-Python replay kernels are bit-identical by construction).
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

from repro.costmodel.memory import MemoryModel
from repro.optimize.ir import ScheduleIR
from repro.optimize.rewrites import Rewrite, RewriteContext, RewriteStep
from repro.scenarios import ClusterScenario
from repro.scheduling.schedule import Schedule
from repro.sim.compiled import CompiledGraph, compile_schedule
from repro.sim.executor import DeadlockError
from repro.sim.memory import memory_report
from repro.sim.runtime import RuntimeModel, SimulationSetup


class TokenSplitRuntime:
    """Runtime binding for a token-split schedule.

    Wraps the base (possibly scenario-wrapped) runtime of the emitted
    schedule and prices each slice honestly:

    * compute passes cost ``(full - overhead)/split + overhead`` — the
      causal-attention FLOPs of a sliced sequence redistribute across
      slices but *sum* to the full pass, so the per-slice average is an
      exact ``1/split`` of the kernel time, while the per-pass host
      overhead is paid once per slice;
    * collectives and P2P transfers keep their full per-event cost even
      though each now moves ``1/split`` of the bytes — a deliberate
      conservative bound (the α latency term does not shrink), so any
      speedup the search finds survives the worst-case pricing.

    Satisfies the stream contract (``pass_duration`` depends only on
    ``(type, device, chunk)``), so compiled graphs may price it
    stream-wise like any other runtime.
    """

    __slots__ = ("inner", "split")

    def __init__(self, inner, split: int):
        self.inner = inner
        self.split = split

    @property
    def setup(self):
        return self.inner.setup

    @property
    def schedule(self):
        return self.inner.schedule

    def pass_duration(self, p) -> float:
        overhead = self.inner.setup.pass_overhead
        return (self.inner.pass_duration(p) - overhead) / self.split + overhead

    def collective_duration(self, kind) -> float:
        return self.inner.collective_duration(kind)

    def p2p_duration(self, src_device: int, dst_device: int) -> float:
        return self.inner.p2p_duration(src_device, dst_device)


@dataclass(frozen=True)
class ScoredCandidate:
    """One oracle-verified point of the search space."""

    ir: ScheduleIR = dataclasses.field(repr=False)
    schedule: Schedule = dataclasses.field(repr=False)
    trace: tuple[RewriteStep, ...]
    time: float
    peak_bytes: float
    feasible: bool
    graph: CompiledGraph = dataclasses.field(repr=False, compare=False)
    rewrite_ctx: RewriteContext = dataclasses.field(repr=False, compare=False)

    def better_than(self, other: "ScoredCandidate | None") -> bool:
        """Strict improvement order: feasibility first, then time, then
        a deterministic trace tie-break (shorter, lexicographic)."""
        if other is None:
            return True
        if self.feasible != other.feasible:
            return self.feasible
        if self.time != other.time:
            return self.time < other.time
        mine = (len(self.trace), [s.description for s in self.trace])
        theirs = (len(other.trace), [s.description for s in other.trace])
        return mine < theirs


class ScoreContext:
    """Scores IR programs against the compiled-graph oracle.

    One context is bound to a (setup, scenario, memory budget) triple;
    ``evaluations`` counts oracle replays, which is the budget the
    search strategies spend.
    """

    def __init__(
        self,
        setup: SimulationSetup,
        scenario: ClusterScenario | None = None,
        budget_bytes: float | None = None,
        memory_model: MemoryModel | None = None,
    ) -> None:
        self.setup = setup
        self.scenario = scenario
        self.budget_bytes = budget_bytes
        self.memory_model = memory_model or MemoryModel()
        self.evaluations = 0
        #: Compiled graph per token-split factor; candidates with the
        #: same split and op multiset re-thread it via ``with_orders``.
        self._graphs: dict[int, CompiledGraph] = {}

    # ------------------------------------------------------------------
    # Bindings
    # ------------------------------------------------------------------

    def _runtime(self, schedule: Schedule, split: int):
        setup = self.setup
        if self.scenario is not None:
            setup = self.scenario.setup_for(setup)
            runtime = self.scenario.runtime_for(setup, schedule)
        else:
            runtime = RuntimeModel(setup, schedule)
        if split != 1:
            runtime = TokenSplitRuntime(runtime, split)
        return runtime

    def _memory_setup(self, split: int) -> SimulationSetup:
        """Setup used for activation sizing: a split slice carries
        ``1/split`` of the tokens, so its activations shrink with it."""
        if split == 1:
            return self.setup
        model = self.setup.model.replace(
            seq_length=self.setup.model.seq_length // split
        )
        parallel = dataclasses.replace(
            self.setup.parallel,
            num_microbatches=self.setup.parallel.num_microbatches * split,
        )
        return dataclasses.replace(self.setup, model=model, parallel=parallel)

    def _activation_bytes(self, ir: ScheduleIR) -> tuple[float, ...]:
        """One microbatch's transformer-activation bytes per device
        (chunk 0) — the unit an activation handoff moves."""
        mem_setup = self._memory_setup(ir.split)
        b = mem_setup.parallel.microbatch_size
        return tuple(
            float(
                self.memory_model.activation_bytes(
                    mem_setup.model, b, ir.layout.transformer_layers[d][0]
                )
            )
            for d in range(ir.num_devices)
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(
        self, ir: ScheduleIR, trace: tuple[RewriteStep, ...]
    ) -> ScoredCandidate | None:
        """Verify one program against the oracle; ``None`` if illegal."""
        self.evaluations += 1
        schedule = ir.emit()
        try:
            schedule.validate()
        except ValueError:
            return None
        runtime = self._runtime(schedule, ir.split)
        try:
            graph = self._graphs.get(ir.split)
            if graph is not None:
                try:
                    # Same op multiset, different order: share every
                    # structural array and the priced durations.
                    graph = graph.with_orders(
                        schedule.device_orders, schedule=schedule
                    )
                except KeyError:
                    graph = compile_schedule(schedule, runtime)
            else:
                graph = compile_schedule(schedule, runtime)
                self._graphs[ir.split] = graph
            result = graph.execute()
        except DeadlockError:
            return None
        mem_setup = self._memory_setup(ir.split)
        report = memory_report(result, mem_setup, self.memory_model)
        peaks = list(report.per_device_peak)
        act = self._activation_bytes(ir)
        transfer_ok = True
        for src, dst, count in ir.handoffs:
            peaks[src] -= count * act[src]
            peaks[dst] += count * act[src]
            transfer = 2.0 * count * runtime.p2p_duration(src, dst)
            idle_src = result.iteration_time - result.device_busy[src]
            idle_dst = result.iteration_time - result.device_busy[dst]
            if idle_src < transfer or idle_dst < transfer:
                # The handoff's P2P traffic no longer hides in bubbles
                # under this order — the BPipe legality bound fails.
                transfer_ok = False
        peak = max(peaks)
        feasible = transfer_ok and (
            self.budget_bytes is None or peak <= self.budget_bytes
        )
        rewrite_ctx = RewriteContext(
            seq_length=self.setup.model.seq_length,
            budget_bytes=self.budget_bytes,
            iteration_time=result.iteration_time,
            device_busy=tuple(result.device_busy),
            per_device_peak=tuple(peaks),
            activation_bytes=act,
            p2p_seconds=runtime.p2p_duration,
        )
        return ScoredCandidate(
            ir=ir,
            schedule=schedule,
            trace=trace,
            time=result.iteration_time,
            peak_bytes=peak,
            feasible=feasible,
            graph=graph,
            rewrite_ctx=rewrite_ctx,
        )

    def score_batch(
        self, programs: list[tuple[ScheduleIR, tuple[RewriteStep, ...]]]
    ) -> list[ScoredCandidate | None]:
        """Score a batch of candidate programs.

        Re-order candidates all re-thread the same lowered graph (the
        per-split entry of the graph cache), so the batch pays one
        lowering and one pricing no matter how many orders it tries.
        """
        return [self.score(ir, trace) for ir, trace in programs]

    def rebase(self, candidate: ScoredCandidate) -> None:
        """Adopt an accepted candidate's graph as the re-thread base."""
        self._graphs[candidate.ir.split] = candidate.graph

    def robust_stats(self, candidate: ScoredCandidate, samples: int, seed: int):
        """Monte Carlo statistics of a candidate under the scenario's
        jitter — all ``samples`` draws priced by one
        ``execute_many_summary`` batch."""
        from repro.scenarios.perturb import robustness_stats

        if self.scenario is None:
            raise ValueError("robust_stats requires a scenario")
        return robustness_stats(
            candidate.graph, self.scenario, samples=samples, seed=seed
        )


class SearchStrategy:
    """One search policy over the rewrite space."""

    name: str = ""

    def run(
        self,
        ctx: ScoreContext,
        rewrites: tuple[Rewrite, ...],
        start: ScoredCandidate,
        *,
        budget: int,
        seed: int,
    ) -> ScoredCandidate:
        raise NotImplementedError

    def _buckets(
        self, rewrites: tuple[Rewrite, ...], current: ScoredCandidate
    ) -> list[tuple[Rewrite, list]]:
        """Applicable sites grouped per rewrite rule (empty rules dropped)."""
        buckets = []
        for rewrite in rewrites:
            sites = rewrite.sites(current.ir, current.rewrite_ctx)
            if sites:
                buckets.append((rewrite, sites))
        return buckets

    def _stratified_sample(
        self,
        buckets: list[tuple[Rewrite, list]],
        cap: int,
        rng: random.Random,
    ) -> list[tuple[Rewrite, object]]:
        """Up to ``cap`` sites, round-robin across rules.

        Uniform sampling over the union starves low-cardinality rules —
        token-split has one site against thousands of swaps — so the
        sample cycles through the rules instead, drawing one seeded-
        random site per rule per cycle.  Every rule with any applicable
        site is guaranteed representation whenever ``cap`` ≥ the number
        of rules.
        """
        pools = []
        for rewrite, sites in buckets:
            sites = list(sites)
            rng.shuffle(sites)
            pools.append((rewrite, sites))
        chosen: list[tuple[Rewrite, object]] = []
        while len(chosen) < cap and pools:
            for rewrite, sites in list(pools):
                if len(chosen) >= cap:
                    break
                chosen.append((rewrite, sites.pop()))
                if not sites:
                    pools.remove((rewrite, sites))
        return chosen


class GreedyStrategy(SearchStrategy):
    """Steepest-descent over a seeded sample of applicable sites.

    Each round enumerates every applicable site, scores a deterministic
    sample of them (the sample keeps rounds affordable on programs with
    thousands of sites; ``random.Random(seed)`` makes it reproducible),
    and moves to the best strictly-improving neighbor.  Stops when no
    sampled neighbor improves or the evaluation budget is spent.
    """

    name = "greedy"

    def run(self, ctx, rewrites, start, *, budget, seed):
        rng = random.Random(seed)
        current = start
        while ctx.evaluations < budget:
            buckets = self._buckets(rewrites, current)
            if not buckets:
                break
            total = sum(len(sites) for _, sites in buckets)
            cap = min(total, max(16, budget // 4), budget - ctx.evaluations)
            sample = self._stratified_sample(buckets, cap, rng)
            programs = []
            for rewrite, site in sample:
                new_ir, step = rewrite.apply(current.ir, site)
                programs.append((new_ir, current.trace + (step,)))
            best = None
            for candidate in ctx.score_batch(programs):
                if candidate is not None and candidate.better_than(best):
                    best = candidate
            if best is None or not best.better_than(current):
                break
            current = best
            ctx.rebase(current)
        return current


class AnnealingStrategy(SearchStrategy):
    """Simulated annealing with a geometric cooling ladder.

    Proposes one uniformly-drawn applicable site per step; downhill
    moves are always taken, uphill moves with probability
    ``exp(-Δ/T)`` where ``T`` decays geometrically from 2 % of the
    start time.  A feasible candidate never anneals into an infeasible
    one.  Returns the best candidate ever scored.
    """

    name = "anneal"

    #: Initial temperature as a fraction of the start iteration time.
    T0_FRACTION = 0.02
    #: Geometric decay per evaluation.
    ALPHA = 0.97

    def run(self, ctx, rewrites, start, *, budget, seed):
        rng = random.Random(seed)
        current = start
        best = start
        temperature = self.T0_FRACTION * max(start.time, 1e-12)
        while ctx.evaluations < budget:
            buckets = self._buckets(rewrites, current)
            if not buckets:
                break
            # Rule first, then site: uniform over the union would give a
            # one-site rule (token-split) a vanishing proposal mass.
            rewrite, sites = buckets[rng.randrange(len(buckets))]
            site = sites[rng.randrange(len(sites))]
            new_ir, step = rewrite.apply(current.ir, site)
            candidate = ctx.score(new_ir, current.trace + (step,))
            temperature = max(temperature * self.ALPHA, 1e-15)
            if candidate is None:
                continue
            if current.feasible and not candidate.feasible:
                continue
            delta = candidate.time - current.time
            accept = (
                candidate.better_than(current)
                or rng.random() < math.exp(-delta / temperature)
            )
            if accept:
                current = candidate
                ctx.rebase(current)
                if current.better_than(best):
                    best = current
        return best


_STRATEGIES: dict[str, type[SearchStrategy]] = {
    GreedyStrategy.name: GreedyStrategy,
    AnnealingStrategy.name: AnnealingStrategy,
}

#: Names of the built-in search strategies.
STRATEGY_NAMES: tuple[str, ...] = tuple(sorted(_STRATEGIES))


def get_strategy(name: str) -> SearchStrategy:
    """Instantiate a search strategy by name."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
        ) from None
