"""1F1B schedules: baseline, Redis layout, and Vocabulary Parallelism.

The baseline block is the classic one-forward-one-backward steady
state: device ``d`` runs ``F_j`` at ``d·tF`` and ``B_j`` at
``(d+1)·tF + (p-1-d)·I`` with ``I = tF + tB`` — both dependency-tight
(each equality is exactly the P2P dependency) and conflict-free modulo
the interval, so device 0's peak activation count is exactly ``p``
microbatches (lifespan ``p·I``).

The Vocabulary Parallelism variants follow the paper's §5.2 recipe
literally: push every B stream ``k`` intervals later, where ``k`` is
the algorithm's number of communication barriers (2 for Algorithm 1, 1
for Algorithm 2), and place the freed room's S and T slots right after
the last stage's forward.  The interval grows to
``tF + tB + tS + tT`` (the balanced per-device workload) and device
0's activation count becomes exactly ``p + k`` — Figure 10's claim.

Input-layer passes (Appendix C) ride along: IF one interval ahead of
stage 0's F (leaving room for the assembling all-reduce), IB one
interval behind stage 0's B (room for the gradient broadcast).
"""

from __future__ import annotations

from repro.scheduling.building_block import BuildingBlock, PassSlot
from repro.scheduling.passes import PassType
from repro.scheduling.schedule import Schedule, StageLayout
from repro.scheduling.redistribution import uniform_layout


def build_1f1b_block(
    num_devices: int, t_forward: float = 1.0, t_backward: float = 2.0
) -> BuildingBlock:
    """The classic 1F1B building block (Figure 15a)."""
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    interval = t_forward + t_backward
    slots = []
    for d in range(num_devices):
        f_offset = d * t_forward
        b_offset = (d + 1) * t_forward + (num_devices - 1 - d) * interval
        slots.append(
            (
                PassSlot(PassType.F, 0, f_offset, t_forward),
                PassSlot(PassType.B, 0, b_offset, t_backward),
            )
        )
    return BuildingBlock(num_devices, interval, tuple(slots))


def build_1f1b_vocab_block(
    num_devices: int,
    algorithm: int,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    t_s: float = 0.5,
    t_t: float = 0.5,
    include_input: bool = True,
    t_input: float = 0.05,
) -> BuildingBlock:
    """1F1B block with S/T (and IF/IB) vocabulary passes inserted (Fig. 9).

    ``algorithm`` selects the barrier count ``k`` (1 → k=2, 2 → k=1);
    every B stream shifts ``k`` intervals later, raising device 0's
    peak activation from ``p`` to ``p + k`` microbatches.
    """
    if algorithm not in (1, 2):
        raise ValueError(f"algorithm must be 1 or 2, got {algorithm}")
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    barriers = 2 if algorithm == 1 else 1
    interval = t_forward + t_backward + t_s + t_t
    slack = 0.05 * interval
    p = num_devices
    last_f_end = p * t_forward
    s_offset = last_f_end + slack                   # after last-stage F + C0 room
    # T one full interval later: C1 waits for the *slowest* device's S,
    # and device phases are staggered by the F wave — a same-interval T
    # would stall every interval.  One interval of slack absorbs the
    # spread for free (T still fits the repeating pattern).
    t_offset = s_offset + t_s + slack + interval
    slots = []
    for d in range(p):
        f_offset = d * t_forward
        b_offset = (d + 1) * t_forward + (p - 1 - d + barriers) * interval
        device_slots = [
            PassSlot(PassType.F, 0, f_offset, t_forward),
            PassSlot(PassType.S, 0, s_offset, t_s),
            PassSlot(PassType.T, 0, t_offset, t_t),
            PassSlot(PassType.B, 0, b_offset, t_backward),
        ]
        if include_input:
            # IF one interval before stage 0's F_j (j·I): room for the
            # input all-reduce; IB one interval after stage 0's B.
            stage0_b_end = t_forward + (p - 1 + barriers) * interval + t_backward
            device_slots.append(
                PassSlot(PassType.IF, 0, -0.3 * interval - t_input, t_input)
            )
            device_slots.append(
                PassSlot(PassType.IB, 0, stage0_b_end + 0.3 * interval, t_input)
            )
        slots.append(tuple(device_slots))
    return BuildingBlock(p, interval, tuple(slots))


def generate_1f1b(
    num_devices: int,
    num_microbatches: int,
    num_layers: int | None = None,
    layout: StageLayout | None = None,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    name: str = "1f1b",
) -> Schedule:
    """Classic 1F1B schedule over a baseline or redistributed layout.

    Pass either ``num_layers`` (uniform layout, vocab layers on the end
    stages — the paper's Baseline) or an explicit ``layout`` (e.g. from
    :func:`~repro.scheduling.redistribution.redistribute_layers` for
    Redis).
    """
    if layout is None:
        if num_layers is None:
            raise ValueError("provide num_layers or layout")
        layout = uniform_layout(num_devices, num_layers, num_chunks=1)
    if layout.num_devices != num_devices or layout.num_chunks != 1:
        raise ValueError("layout must be single-chunk over num_devices")
    block = build_1f1b_block(num_devices, t_forward, t_backward)
    schedule = Schedule(
        name=name,
        num_microbatches=num_microbatches,
        layout=layout,
        device_orders=block.unroll(num_microbatches),
        metadata={"building_block": block},
    )
    schedule.validate()
    return schedule


def generate_1f1b_vocab(
    num_devices: int,
    num_microbatches: int,
    num_layers: int,
    algorithm: int,
    include_input: bool = True,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    t_s: float = 0.5,
    t_t: float = 0.5,
) -> Schedule:
    """1F1B with Vocabulary Parallelism (the paper's Vocab-1 / Vocab-2)."""
    layout = uniform_layout(
        num_devices, num_layers, num_chunks=1, vocab_parallel=True
    )
    block = build_1f1b_vocab_block(
        num_devices,
        algorithm,
        t_forward=t_forward,
        t_backward=t_backward,
        t_s=t_s,
        t_t=t_t,
        include_input=include_input,
    )
    schedule = Schedule(
        name=f"1f1b-vocab-{algorithm}",
        num_microbatches=num_microbatches,
        layout=layout,
        device_orders=block.unroll(num_microbatches),
        vocab_algorithm=algorithm,
        has_input_passes=include_input,
        metadata={"building_block": block},
    )
    schedule.validate()
    return schedule
