"""Pass and collective vocabulary for pipeline schedules.

A *pass* is the unit the paper schedules: a contiguous block of
computation for one microbatch on one device.  Transformer stages
contribute F (forward), B (backward) and optionally W (weight-gradient,
when the schedule splits backward zero-bubble style, as V-Half does).
Vocabulary Parallelism adds S and T (output layer, §4), IF and IB
(input layer, Appendix C).  The interlaced baseline adds VF and VB —
tensor-parallel vocabulary segments executed synchronously on *all*
devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PassType(enum.Enum):
    """Kinds of compute passes a device's stream can execute."""

    F = "F"    #: transformer-stage forward
    B = "B"    #: transformer-stage backward (activation + weight grads unless W is split out)
    W = "W"    #: weight-gradient half of backward (zero-bubble split)
    S = "S"    #: output-layer forward-side pass (partitioned vocabulary)
    T = "T"    #: output-layer weight-gradient pass (partitioned vocabulary)
    IF = "IF"  #: input-layer forward (partitioned vocabulary)
    IB = "IB"  #: input-layer backward (partitioned vocabulary)
    VF = "VF"  #: interlaced synchronous vocabulary forward segment
    VB = "VB"  #: interlaced synchronous vocabulary backward segment

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Pass types that run on every device for the same microbatch (the
#: partitioned vocabulary work), as opposed to stage-local F/B/W.
REPLICATED_TYPES = frozenset(
    {PassType.S, PassType.T, PassType.IF, PassType.IB, PassType.VF, PassType.VB}
)

#: Pass types executed as a single synchronized segment across devices.
SYNCHRONOUS_TYPES = frozenset({PassType.VF, PassType.VB})


@dataclass(frozen=True, order=True)
class Pass:
    """One schedulable unit: ``type`` for ``microbatch`` on ``device``.

    ``chunk`` selects the virtual-pipeline chunk for F/B/W (V-Half has
    two chunks per device; 1F1B has one).  Replicated vocabulary passes
    always use chunk 0.
    """

    type: PassType
    microbatch: int
    device: int
    chunk: int = 0

    def __post_init__(self) -> None:
        """Reject negative indices and non-zero chunks on replicated passes."""
        if self.microbatch < 0:
            raise ValueError(f"microbatch must be non-negative, got {self.microbatch}")
        if self.device < 0:
            raise ValueError(f"device must be non-negative, got {self.device}")
        if self.chunk < 0:
            raise ValueError(f"chunk must be non-negative, got {self.chunk}")
        if self.chunk != 0 and self.type in REPLICATED_TYPES:
            raise ValueError(f"{self.type} passes must use chunk 0, got {self.chunk}")
        # Passes key every executor-side dict (pass_times, node maps);
        # the generated dataclass __hash__ rebuilds the field tuple per
        # call, which dominated result collection on large schedules.
        object.__setattr__(
            self,
            "_hash",
            hash((self.type, self.microbatch, self.device, self.chunk)),
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chunk = f".{self.chunk}" if self.chunk else ""
        return f"{self.type.value}{chunk}[{self.microbatch}]@{self.device}"


class CollectiveKind(enum.Enum):
    """Cross-device communication operations the executor materializes.

    Each kind gets its own logical communicator (separate CUDA stream /
    NCCL communicator in the paper's implementation), so operations of
    different kinds never head-of-line block each other; within a kind,
    microbatch order is preserved on every rank, as NCCL requires.
    """

    C0_BROADCAST = "C0"       #: broadcast X from the last stage (output layer input)
    C1_STATS = "C1"           #: softmax-statistics all-reduce(s) (+ ∇X reduce in Alg2)
    C2_GRAD_REDUCE = "C2"     #: ∇X reduce (naïve / Algorithm 1 only)
    INPUT_ALLREDUCE = "IAR"   #: assemble the input-layer output on stage 0
    INPUT_BROADCAST = "IBC"   #: broadcast the input-layer output gradient

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
