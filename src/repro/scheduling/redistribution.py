"""Transformer-layer redistribution — the paper's "Redis" baseline (§2, §6.2).

DeepSpeed-style rebalancing assigns *contiguous* groups of transformer
layers to pipeline stages so that the longest stage (by estimated
FLOPs, following Narayanan et al.'s derivation) is as short as
possible, given that stage 0 additionally computes the input layer and
stage ``p-1`` the output layer.  We solve this exactly with a binary
search over the bottleneck cost and a greedy feasibility check —
optimal for the contiguous-partition bottleneck objective.

The paper's Figure 3 and §6.3 document why this loses to Vocabulary
Parallelism: layer granularity is coarse (at 128k+ vocabularies the
output layer alone outweighs a whole uniform stage), and rebalancing by
compute leaves parameter memory imbalanced (the input layer costs
almost no FLOPs but ``2hV`` bytes).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.config import ModelConfig
from repro.costmodel.flops import (
    input_layer_flops,
    output_layer_flops,
    transformer_layer_flops,
)
from repro.scheduling.schedule import StageLayout


def uniform_layout(
    num_devices: int,
    num_layers: int,
    num_chunks: int = 1,
    vocab_parallel: bool = False,
) -> StageLayout:
    """Evenly distribute transformer layers; vocab layers at the ends.

    With one chunk, stage 0 holds the input layer and stage ``p-1`` the
    output layer (unless ``vocab_parallel``).  With two chunks (V-Half)
    the output layer lands on stage ``2p-1`` — device 0's second chunk,
    which is what makes the V-Half baseline's device 0 so overloaded in
    Table 6.
    """
    num_stages = num_devices * num_chunks
    if num_layers % num_stages != 0:
        raise ValueError(
            f"num_layers={num_layers} not divisible by {num_stages} stages"
        )
    per_stage = num_layers // num_stages
    layers = tuple(
        tuple(per_stage for _ in range(num_chunks)) for _ in range(num_devices)
    )
    if vocab_parallel:
        return StageLayout(num_devices, layers, vocab_parallel=True)
    # holder_of_stage reports (device, chunk) for the first/last stages.
    probe = StageLayout(
        num_devices, layers, vocab_parallel=False,
        input_holder=(0, 0), output_holder=(0, 0),
    )
    return StageLayout(
        num_devices,
        layers,
        vocab_parallel=False,
        input_holder=probe.holder_of_stage(0),
        output_holder=probe.holder_of_stage(num_stages - 1),
    )


@dataclass(frozen=True)
class RedistributionPlan:
    """Outcome of layer rebalancing.

    Attributes
    ----------
    layers_per_stage:
        Transformer layers assigned to each of the ``p`` stages.
    stage_costs:
        Estimated FLOPs of each stage including its vocabulary layer.
    bottleneck:
        ``max(stage_costs)`` — the pipeline's per-microbatch critical
        stage time up to a constant.
    """

    layers_per_stage: tuple[int, ...]
    stage_costs: tuple[float, ...]

    @property
    def bottleneck(self) -> float:
        return max(self.stage_costs)

    def layout(self) -> StageLayout:
        """Single-chunk StageLayout with vocab layers on the end stages."""
        p = len(self.layers_per_stage)
        layers = tuple((count,) for count in self.layers_per_stage)
        return StageLayout(
            p,
            layers,
            vocab_parallel=False,
            input_holder=(0, 0),
            output_holder=(p - 1, 0),
        )


def redistribute_layers(
    model: ModelConfig,
    num_devices: int,
    microbatch_size: int = 1,
) -> RedistributionPlan:
    """Optimal contiguous layer split minimizing the longest stage.

    Costs follow the Table 4 FLOPs estimates (forward + backward).  The
    split is feasibility-checked greedily for each candidate bottleneck
    from the sorted set of achievable stage costs; with ≤ 64 layers and
    ≤ 32 stages exhaustive binary search is instant.
    """
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    t_layer = transformer_layer_flops(model, microbatch_size).total
    t_input = input_layer_flops(model, microbatch_size).total
    t_output = output_layer_flops(model, microbatch_size).total

    def stage_cost(stage: int, layers: int) -> float:
        cost = layers * t_layer
        if stage == 0:
            cost += t_input
        if stage == num_devices - 1:
            cost += t_output
        return cost

    def feasible(limit: float) -> tuple[int, ...] | None:
        """Layer assignment with every stage cost ≤ ``limit``, or None.

        All transformer layers cost the same, so feasibility is just
        ``sum(per-stage capacity) ≥ L``; the concrete assignment then
        water-fills, repeatedly giving a layer to the currently
        cheapest stage with spare capacity (stages may end up with zero
        layers — at 256k vocabularies the output stage is already the
        bottleneck empty, exactly the failure mode Figure 3 shows).
        """
        eps = 1e-9 * max(limit, 1.0)
        caps = []
        for stage in range(num_devices):
            extra = stage_cost(stage, 0)
            if extra > limit + eps:
                return None
            caps.append(int((limit + eps - extra) // t_layer))
        if sum(caps) < model.num_layers:
            return None
        counts = [0] * num_devices
        # Tie-break toward *later* stages: they hold fewer in-flight
        # microbatches under 1F1B, so parking the extra layers there
        # keeps the peak-memory device unchanged (the paper's measured
        # Redis peak memory equals the baseline's).
        heap = [
            (stage_cost(s, 0), num_devices - s, s)
            for s in range(num_devices)
            if caps[s] > 0
        ]
        heapq.heapify(heap)
        for _ in range(model.num_layers):
            cost, order, s = heapq.heappop(heap)
            counts[s] += 1
            if counts[s] < caps[s]:
                heapq.heappush(heap, (cost + t_layer, order, s))
        return tuple(counts)

    # Candidate bottlenecks: every (stage, layer-count) cost.
    candidates = sorted(
        {
            stage_cost(stage, layers)
            for stage in range(num_devices)
            for layers in range(1, model.num_layers + 1)
        }
    )
    lo, hi = 0, len(candidates) - 1
    best: tuple[int, ...] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        counts = feasible(candidates[mid])
        if counts is not None:
            best = counts
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise RuntimeError("no feasible redistribution found")
    costs = tuple(stage_cost(s, c) for s, c in enumerate(best))
    return RedistributionPlan(layers_per_stage=best, stage_costs=costs)
