"""Pipeline schedules and the building-block construction framework.

A :class:`~repro.scheduling.schedule.Schedule` is a per-device ordered
list of :class:`~repro.scheduling.passes.Pass` objects plus a
:class:`~repro.scheduling.schedule.StageLayout` describing which model
stage each (device, chunk) hosts and where the vocabulary layers live.

Schedules are *constructed* the way the paper does (§5.2): a
:class:`~repro.scheduling.building_block.BuildingBlock` assigns each
pass stream a time offset inside a repeating interval; uniformly
repeating the block for every microbatch and sorting per device yields
the execution order, warmup and cooldown included.  The discrete-event
executor (:mod:`repro.sim`) then computes realistic timings from pass
durations and dependencies.

Generators:

* :func:`~repro.scheduling.onefoneb.generate_1f1b` — classic 1F1B
  (baseline and, with a redistributed layout, "Redis");
* :func:`~repro.scheduling.onefoneb.generate_1f1b_vocab` — 1F1B with
  Vocabulary Parallelism (Algorithm 1 or 2, Figure 10);
* :func:`~repro.scheduling.interlaced.generate_interlaced` — the
  synchronous interlaced pipeline of nnScaler (Figure 15b);
* :func:`~repro.scheduling.vhalf.generate_vhalf` /
  :func:`~repro.scheduling.vhalf.generate_vhalf_vocab` — the V-Half
  memory-balanced schedule and its Vocab-1 integration (Appendix D).
"""

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule, StageLayout
from repro.scheduling.building_block import BuildingBlock, PassSlot
from repro.scheduling.onefoneb import generate_1f1b, generate_1f1b_vocab
from repro.scheduling.interlaced import generate_interlaced
from repro.scheduling.vhalf import generate_vhalf, generate_vhalf_vocab
from repro.scheduling.redistribution import (
    RedistributionPlan,
    redistribute_layers,
    uniform_layout,
)

__all__ = [
    "PassType",
    "Pass",
    "CollectiveKind",
    "Schedule",
    "StageLayout",
    "BuildingBlock",
    "PassSlot",
    "generate_1f1b",
    "generate_1f1b_vocab",
    "generate_interlaced",
    "generate_vhalf",
    "generate_vhalf_vocab",
    "RedistributionPlan",
    "redistribute_layers",
    "uniform_layout",
]
