"""Schedule and stage-layout containers.

A :class:`StageLayout` describes the *spatial* decomposition: which
pipeline stage each (device, chunk) pair hosts, how many transformer
layers each stage holds, and where the vocabulary layers live (on a
single stage for the baseline/Redis schedules, or partitioned across
all devices for Vocabulary Parallelism and the interlaced pipeline).

A :class:`Schedule` adds the *temporal* side: per-device ordered pass
lists.  ``validate()`` performs the structural checks that do not need
timing — exact pass multiset, per-stream monotone microbatch order, and
basic dependency sanity; the discrete-event executor catches anything
order-related (a schedule whose order is infeasible deadlocks there).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduling.passes import (
    Pass,
    PassType,
    REPLICATED_TYPES,
)


@dataclass(frozen=True)
class StageLayout:
    """Spatial layout of model stages onto devices and chunks.

    Attributes
    ----------
    num_devices:
        Pipeline devices ``p``.
    transformer_layers:
        ``transformer_layers[device][chunk]`` = number of transformer
        layers in that chunk's stage.
    vocab_parallel:
        True when the vocabulary layers are partitioned across all
        devices (Vocabulary Parallelism and interlaced); False when the
        input/output layers sit on single stages (baseline / Redis).
    input_holder / output_holder:
        ``(device, chunk)`` hosting the full input/output layer when
        ``vocab_parallel`` is False; ignored otherwise.
    """

    num_devices: int
    transformer_layers: tuple[tuple[int, ...], ...]
    vocab_parallel: bool
    input_holder: tuple[int, int] | None = None
    output_holder: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {self.num_devices}")
        if len(self.transformer_layers) != self.num_devices:
            raise ValueError(
                f"transformer_layers has {len(self.transformer_layers)} devices, "
                f"expected {self.num_devices}"
            )
        chunks = len(self.transformer_layers[0])
        for device, per_chunk in enumerate(self.transformer_layers):
            if len(per_chunk) != chunks:
                raise ValueError(
                    f"device {device} has {len(per_chunk)} chunks, expected {chunks}"
                )
            for chunk, count in enumerate(per_chunk):
                if count < 0:
                    raise ValueError(
                        f"negative layer count at device {device} chunk {chunk}"
                    )
        if not self.vocab_parallel:
            if self.input_holder is None or self.output_holder is None:
                raise ValueError(
                    "non-vocab-parallel layouts must name input_holder and output_holder"
                )
            for name, holder in (("input", self.input_holder), ("output", self.output_holder)):
                device, chunk = holder
                if not (0 <= device < self.num_devices and 0 <= chunk < chunks):
                    raise ValueError(f"{name}_holder {holder} out of range")

    @property
    def num_chunks(self) -> int:
        return len(self.transformer_layers[0])

    @property
    def num_stages(self) -> int:
        return self.num_devices * self.num_chunks

    @property
    def total_layers(self) -> int:
        return sum(sum(per_chunk) for per_chunk in self.transformer_layers)

    def stage_of(self, device: int, chunk: int) -> int:
        """Pipeline stage index of (device, chunk), V-shape for 2 chunks.

        Chunk 0 maps to stage ``device``; chunk 1 maps to stage
        ``2p - 1 - device`` (the V-shape placement of Qi et al.).
        """
        self._check(device, chunk)
        if chunk % 2 == 0:
            return chunk * self.num_devices + device
        return (chunk + 1) * self.num_devices - 1 - device

    def holder_of_stage(self, stage: int) -> tuple[int, int]:
        """Inverse of :meth:`stage_of`: (device, chunk) hosting ``stage``."""
        if not 0 <= stage < self.num_stages:
            raise ValueError(f"stage {stage} out of range [0, {self.num_stages})")
        chunk = stage // self.num_devices
        offset = stage % self.num_devices
        if chunk % 2 == 0:
            return offset, chunk
        return self.num_devices - 1 - offset, chunk

    def layers_of_stage(self, stage: int) -> int:
        device, chunk = self.holder_of_stage(stage)
        return self.transformer_layers[device][chunk]

    def signature(self) -> tuple:
        """Hashable, runtime-independent identity of the spatial layout.

        Contains only structural integers (device/chunk counts, layer
        assignment, vocab placement) — no durations and no hardware
        numbers — so it can key caches that are shared across
        hardware/efficiency bindings.
        """
        return (
            self.num_devices,
            self.transformer_layers,
            self.vocab_parallel,
            self.input_holder,
            self.output_holder,
        )

    def hosts_input(self, device: int, chunk: int) -> bool:
        """Whether this (device, chunk) holds the full input layer."""
        return not self.vocab_parallel and self.input_holder == (device, chunk)

    def hosts_output(self, device: int, chunk: int) -> bool:
        """Whether this (device, chunk) holds the full output layer."""
        return not self.vocab_parallel and self.output_holder == (device, chunk)

    def _check(self, device: int, chunk: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if not 0 <= chunk < self.num_chunks:
            raise ValueError(f"chunk {chunk} out of range [0, {self.num_chunks})")


@dataclass
class Schedule:
    """A complete pipeline schedule: layout plus per-device pass orders.

    Attributes
    ----------
    name:
        Human-readable identifier (used in traces and reports).
    num_microbatches:
        Microbatches per iteration ``m``.
    layout:
        The spatial stage layout.
    device_orders:
        ``device_orders[d]`` is the execution order of device ``d``'s
        compute stream.
    vocab_algorithm:
        ``None`` (no partitioned output passes), ``1`` or ``2`` —
        controls which barriers the executor materializes and whether
        the last stage's B depends on C1 (Alg2) or C2 (Alg1).
    has_weight_passes:
        True when B is split into B + W (V-Half).
    has_input_passes:
        True when IF/IB input-layer passes are scheduled.
    interlaced:
        True for the synchronous interlaced pipeline.
    """

    name: str
    num_microbatches: int
    layout: StageLayout
    device_orders: list[list[Pass]]
    vocab_algorithm: int | None = None
    has_weight_passes: bool = False
    has_input_passes: bool = False
    interlaced: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def num_devices(self) -> int:
        return self.layout.num_devices

    def passes_of(self, device: int, type_: PassType) -> list[Pass]:
        """All passes of one type on one device, in execution order."""
        return [p for p in self.device_orders[device] if p.type is type_]

    def structure_key(self) -> tuple:
        """Hashable identity of everything the executor's timing sees.

        Two schedules with equal keys produce identical simulation
        results for the same :class:`~repro.sim.runtime.SimulationSetup`
        (``name`` and ``metadata`` are cosmetic and excluded) — the
        planner uses this to deduplicate structurally identical
        candidates across its top-k verification loop.
        """
        return (
            self.num_microbatches,
            self.layout,
            self.vocab_algorithm,
            self.has_weight_passes,
            self.has_input_passes,
            self.interlaced,
            tuple(tuple(order) for order in self.device_orders),
        )

    def structure_signature(self) -> tuple:
        """Runtime-independent family identity (no orders, no durations).

        Coarser than :meth:`structure_key`: two schedules share a
        signature when they describe the same *family instance* —
        schedule family (via the executor-relevant flags), device/chunk
        layout, microbatch count and vocabulary algorithm — even if
        their device orders differ because they were generated under
        different hardware timings.  Sweeps group grid points on this
        signature so one worker prices a whole structure group; the
        per-order identity (for compiled-graph and simulation reuse)
        remains :meth:`structure_key`.
        """
        return (
            self.num_microbatches,
            self.layout.signature(),
            self.vocab_algorithm,
            self.has_weight_passes,
            self.has_input_passes,
            self.interlaced,
        )

    def last_stage_holder(self) -> tuple[int, int]:
        """(device, chunk) of the final transformer stage."""
        return self.layout.holder_of_stage(self.layout.num_stages - 1)

    def first_stage_holder(self) -> tuple[int, int]:
        """(device, chunk) of the first transformer stage."""
        return self.layout.holder_of_stage(0)

    def validate(self) -> None:
        """Structural validation; raises ``ValueError`` on any violation."""
        if self.vocab_algorithm not in (None, 1, 2):
            raise ValueError(f"vocab_algorithm must be None, 1 or 2: {self.vocab_algorithm}")
        if len(self.device_orders) != self.num_devices:
            raise ValueError(
                f"{len(self.device_orders)} device orders for {self.num_devices} devices"
            )
        m = self.num_microbatches
        expected_types: dict[PassType, bool] = {
            PassType.F: True,
            PassType.B: True,
            PassType.W: self.has_weight_passes,
            PassType.S: self.vocab_algorithm is not None,
            PassType.T: self.vocab_algorithm is not None,
            PassType.IF: self.has_input_passes,
            PassType.IB: self.has_input_passes,
            PassType.VF: self.interlaced,
            PassType.VB: self.interlaced,
        }
        for device, order in enumerate(self.device_orders):
            seen: set[Pass] = set()
            for p in order:
                if p.device != device:
                    raise ValueError(f"pass {p} listed on device {device}")
                if p in seen:
                    raise ValueError(f"duplicate pass {p} on device {device}")
                seen.add(p)
                if not 0 <= p.microbatch < m:
                    raise ValueError(f"pass {p} microbatch out of range [0, {m})")
                if p.chunk >= self.layout.num_chunks and p.type not in REPLICATED_TYPES:
                    raise ValueError(f"pass {p} chunk out of range")
            # Every stream present exactly once per microbatch.
            for type_, present in expected_types.items():
                chunks = (
                    range(self.layout.num_chunks)
                    if type_ in (PassType.F, PassType.B, PassType.W)
                    else [0]
                )
                for chunk in chunks:
                    count = sum(
                        1 for p in order if p.type is type_ and p.chunk == chunk
                    )
                    expected = m if present else 0
                    if count != expected:
                        raise ValueError(
                            f"device {device}: {count} {type_}.{chunk} passes, "
                            f"expected {expected}"
                        )
            # Microbatch order within each (type, chunk) stream is monotone.
            for type_ in PassType:
                for chunk in range(self.layout.num_chunks):
                    stream = [
                        p.microbatch
                        for p in order
                        if p.type is type_ and p.chunk == chunk
                    ]
                    if stream != sorted(stream):
                        raise ValueError(
                            f"device {device}: {type_}.{chunk} stream out of order"
                        )
