"""Building-block schedule construction (Qi et al. 2024, paper §5.2).

A *building block* assigns every pass stream of every device an
absolute time offset for microbatch 0; the pass for microbatch ``j``
nominally runs at ``offset + j·interval``.  Uniformly repeating the
block and sorting each device's passes by nominal time yields the full
execution order — warmup and cooldown fall out automatically, because
early microbatches simply have no B/S/T work scheduled before them.

Two analyses come straight off the block, mirroring the paper:

* ``interval`` — the workload of one microbatch on one device;
* ``lifespan`` — time between a chunk's F start and the end of the pass
  that releases its activations (B, or W when backward is split).

Peak activation memory in microbatches is ``ceil(lifespan/interval)``
summed over chunks (Figure 9/15/16 reasoning).  The paper's claims —
1F1B holds ``p`` microbatches, Vocabulary Parallelism adds exactly one
microbatch per communication barrier, the interlaced pipeline's
lifespan stretches from ``3p`` to ``4.5p`` — are all statements about
these two numbers.

The nominal offsets only fix the *order*; the discrete-event executor
(:mod:`repro.sim`) assigns real times from pass durations and
dependencies, stalling where an order is optimistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scheduling.passes import Pass, PassType


@dataclass(frozen=True)
class PassSlot:
    """One pass stream on one device inside the building block.

    Attributes
    ----------
    type / chunk:
        Which stream this slot schedules.
    offset:
        Nominal time of microbatch 0's pass (block units; may be
        negative, e.g. input-layer forwards that run ahead of F).
    duration:
        Nominal duration in block units (used for the lifespan/interval
        analysis, not by the executor).
    """

    type: PassType
    chunk: int
    offset: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be non-negative, got {self.duration}")


@dataclass(frozen=True)
class BuildingBlock:
    """Per-device pass slots plus the repeating interval.

    ``slots[d]`` lists device ``d``'s streams.  ``interval`` is the
    nominal per-microbatch workload of one device; a balanced block has
    ``sum(slot durations) == interval`` on every device.
    """

    num_devices: int
    interval: float
    slots: tuple[tuple[PassSlot, ...], ...]

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {self.num_devices}")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if len(self.slots) != self.num_devices:
            raise ValueError(
                f"{len(self.slots)} slot lists for {self.num_devices} devices"
            )

    def device_slot(self, device: int, type_: PassType, chunk: int = 0) -> PassSlot:
        """The unique slot of (type, chunk) on ``device``."""
        matches = [
            s for s in self.slots[device] if s.type is type_ and s.chunk == chunk
        ]
        if len(matches) != 1:
            raise ValueError(
                f"device {device} has {len(matches)} slots of {type_}.{chunk}"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # Paper-style analysis.
    # ------------------------------------------------------------------
    def lifespan(self, device: int, chunk: int = 0) -> float:
        """F-start to activation-release on (device, chunk).

        Activations release at the end of W when the device schedules W
        passes for the chunk, otherwise at the end of B.
        """
        f = self.device_slot(device, PassType.F, chunk)
        try:
            release = self.device_slot(device, PassType.W, chunk)
        except ValueError:
            release = self.device_slot(device, PassType.B, chunk)
        return release.offset + release.duration - f.offset

    def activation_microbatches(self, device: int) -> float:
        """Peak activations in microbatch units (fractional, per chunk sum).

        Each chunk's contribution is its lifespan over the interval,
        weighted by the fraction of the device's layers in the chunk —
        so the unit is "one microbatch's activations for this device's
        full layer complement", matching 1F1B accounting.
        """
        chunks = sorted({s.chunk for s in self.slots[device] if s.type is PassType.F})
        if not chunks:
            raise ValueError(f"device {device} has no F slots")
        weight = 1.0 / len(chunks)
        return sum(
            weight * self.lifespan(device, chunk) / self.interval for chunk in chunks
        )

    def activation_microbatches_ceil(self, device: int) -> int:
        """Integer peak per the paper's ceil(lifespan/interval) rule."""
        chunks = sorted({s.chunk for s in self.slots[device] if s.type is PassType.F})
        weight = 1.0 / len(chunks)
        total = sum(
            weight * math.ceil(self.lifespan(device, chunk) / self.interval - 1e-9)
            for chunk in chunks
        )
        return math.ceil(total - 1e-9)

    # ------------------------------------------------------------------
    # Order generation.
    # ------------------------------------------------------------------
    def unroll(self, num_microbatches: int) -> list[list[Pass]]:
        """Repeat the block for every microbatch; per-device sorted orders.

        Sorting key is (nominal time, slot position, microbatch): the
        slot position breaks exact ties deterministically and keeps
        streams with equal offsets in declaration order.
        """
        if num_microbatches <= 0:
            raise ValueError(
                f"num_microbatches must be positive, got {num_microbatches}"
            )
        orders: list[list[Pass]] = []
        for device in range(self.num_devices):
            entries: list[tuple[float, int, int, Pass]] = []
            for slot_index, slot in enumerate(self.slots[device]):
                for mb in range(num_microbatches):
                    time = slot.offset + mb * self.interval
                    entries.append(
                        (
                            time,
                            slot_index,
                            mb,
                            Pass(slot.type, mb, device, slot.chunk),
                        )
                    )
            entries.sort(key=lambda e: (e[0], e[1], e[2]))
            orders.append([e[3] for e in entries])
        return orders
