"""V-Half schedules (Qi et al. 2024) and their Vocabulary Parallelism
integration (paper §5.2, §6.4, Appendix D).

V-Half places two *chunks* per device in a V shape — device ``d`` hosts
stage ``d`` and stage ``2p-1-d`` — and splits backward into B
(activation gradients) and W (weight gradients, zero-bubble style).
The V placement makes every device's combined F→release lifespan equal,
so activation memory is *uniform* across devices and roughly half of
1F1B's device-0 peak: this is the "memory-balanced schedule" the paper
pairs with Vocabulary Parallelism to reach full balance.

Building block offsets: the forward wave visits the 2p stages at ``s·f``
each; the backward wave returns at ``2p·f + (2p-1-s)·b``; W passes are
packed greedily into the free room of the repeating interval (with the
default equal durations, the interval tiles exactly).  The baseline's
vocabulary layers sit on stage 0 (input) and stage ``2p-1`` (output) —
*both on device 0*, which is why the V-Half baseline in Table 6 runs
out of memory at large vocabularies while every other device idles.

The Vocab-1 variant shifts both backward waves ``k`` intervals later
(k = barrier count) and inserts S/T after the last stage's forward,
exactly as for 1F1B; Figure 16 is this block drawn for k=2.
"""

from __future__ import annotations

from repro.scheduling.building_block import BuildingBlock, PassSlot
from repro.scheduling.passes import PassType
from repro.scheduling.schedule import Schedule
from repro.scheduling.redistribution import uniform_layout


def _pack_w_offsets(
    occupied: list[tuple[float, float]],
    earliest: float,
    duration: float,
    interval: float,
) -> float:
    """Earliest offset ≥ ``earliest`` whose slot avoids ``occupied`` mod I.

    ``occupied`` holds (offset, duration) pairs of already-placed slots.
    Falls back to ``earliest`` itself when no clean gap fits — the
    executor then simply serializes, costing nominal tightness but not
    correctness.
    """
    taken = sorted(
        ((start % interval), dur) for start, dur in occupied if dur > 0
    )
    # Build free gaps of the mod-interval circle.
    gaps: list[tuple[float, float]] = []
    cursor = 0.0
    for start, dur in taken:
        if start > cursor + 1e-12:
            gaps.append((cursor, start))
        cursor = max(cursor, start + dur)
    if cursor < interval - 1e-12:
        gaps.append((cursor, interval))
    # Wrap-around gap merging (last gap touching interval end + first at 0).
    best: float | None = None
    for gap_start, gap_end in gaps:
        if gap_end - gap_start + 1e-12 < duration:
            continue
        latest_start = gap_end - duration
        # Smallest t ≥ earliest with (t mod interval) in [gap_start, latest_start].
        base_mod = earliest % interval
        if base_mod <= latest_start + 1e-12:
            delta = max(gap_start - base_mod, 0.0)
        else:
            delta = interval - base_mod + gap_start
        candidate = earliest + delta
        if best is None or candidate < best:
            best = candidate
    return best if best is not None else earliest


def build_vhalf_block(
    num_devices: int,
    t_forward_chunk: float = 0.5,
    t_backward_chunk: float = 0.5,
    t_weight_chunk: float = 0.5,
    vocab_barriers: int = 0,
    t_s: float = 0.0,
    t_t: float = 0.0,
    include_input: bool = False,
    t_input: float = 0.05,
) -> BuildingBlock:
    """V-Half building block, optionally with vocabulary passes.

    ``vocab_barriers`` = 0 reproduces the plain V-Half block; k ≥ 1
    shifts the backward waves ``k`` intervals later and adds S/T slots
    of the given durations (Appendix D, Figure 16).
    """
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    if vocab_barriers < 0:
        raise ValueError(f"vocab_barriers must be ≥ 0, got {vocab_barriers}")
    p = num_devices
    f, b, w = t_forward_chunk, t_backward_chunk, t_weight_chunk
    interval = 2 * (f + b + w) + t_s + t_t
    k = vocab_barriers
    slack = 0.05 * interval
    last_f_end = 2 * p * f
    s_offset = last_f_end + slack
    # One interval of slack between S and T so the C1 barrier (which
    # waits for the slowest device's S) never stalls the steady state.
    t_offset = s_offset + t_s + slack + interval
    slots = []
    for d in range(p):
        fa = d * f
        fb = (2 * p - 1 - d) * f
        bb = 2 * p * f + d * b + k * interval
        ba = 2 * p * f + (2 * p - 1 - d) * b + k * interval
        device_slots = [
            PassSlot(PassType.F, 0, fa, f),
            PassSlot(PassType.F, 1, fb, f),
            PassSlot(PassType.B, 1, bb, b),
            PassSlot(PassType.B, 0, ba, b),
        ]
        occupied = [(fa, f), (fb, f), (bb, b), (ba, b)]
        if k > 0:
            device_slots.append(PassSlot(PassType.S, 0, s_offset, t_s))
            device_slots.append(PassSlot(PassType.T, 0, t_offset, t_t))
            occupied += [(s_offset, t_s), (t_offset, t_t)]
        wb = _pack_w_offsets(occupied, bb + b, w, interval)
        occupied.append((wb, w))
        wa = _pack_w_offsets(occupied, ba + b, w, interval)
        occupied.append((wa, w))
        device_slots.append(PassSlot(PassType.W, 1, wb, w))
        device_slots.append(PassSlot(PassType.W, 0, wa, w))
        if include_input:
            stage0_b_end = ba + b if d == 0 else 2 * p * f + (2 * p - 1) * b + k * interval + b
            device_slots.append(
                PassSlot(PassType.IF, 0, -0.3 * interval - t_input, t_input)
            )
            device_slots.append(
                PassSlot(PassType.IB, 0, stage0_b_end + 0.3 * interval, t_input)
            )
        slots.append(tuple(device_slots))
    return BuildingBlock(p, interval, tuple(slots))


def generate_vhalf(
    num_devices: int,
    num_microbatches: int,
    num_layers: int,
    t_forward_chunk: float = 0.5,
    t_backward_chunk: float = 0.5,
    t_weight_chunk: float = 0.5,
) -> Schedule:
    """Plain V-Half schedule (the paper's Table 6 baseline)."""
    layout = uniform_layout(num_devices, num_layers, num_chunks=2)
    block = build_vhalf_block(
        num_devices, t_forward_chunk, t_backward_chunk, t_weight_chunk
    )
    schedule = Schedule(
        name="vhalf",
        num_microbatches=num_microbatches,
        layout=layout,
        device_orders=block.unroll(num_microbatches),
        has_weight_passes=True,
        metadata={"building_block": block},
    )
    schedule.validate()
    return schedule


def generate_vhalf_vocab(
    num_devices: int,
    num_microbatches: int,
    num_layers: int,
    algorithm: int = 1,
    include_input: bool = True,
    t_forward_chunk: float = 0.5,
    t_backward_chunk: float = 0.5,
    t_weight_chunk: float = 0.5,
    t_s: float = 0.5,
    t_t: float = 0.5,
) -> Schedule:
    """V-Half with Vocabulary Parallelism (the paper's Table 6 Vocab-1)."""
    if algorithm not in (1, 2):
        raise ValueError(f"algorithm must be 1 or 2, got {algorithm}")
    barriers = 2 if algorithm == 1 else 1
    layout = uniform_layout(
        num_devices, num_layers, num_chunks=2, vocab_parallel=True
    )
    block = build_vhalf_block(
        num_devices,
        t_forward_chunk,
        t_backward_chunk,
        t_weight_chunk,
        vocab_barriers=barriers,
        t_s=t_s,
        t_t=t_t,
        include_input=include_input,
    )
    schedule = Schedule(
        name=f"vhalf-vocab-{algorithm}",
        num_microbatches=num_microbatches,
        layout=layout,
        device_orders=block.unroll(num_microbatches),
        vocab_algorithm=algorithm,
        has_weight_passes=True,
        has_input_passes=include_input,
        metadata={"building_block": block},
    )
    schedule.validate()
    return schedule
