"""The interlaced pipeline baseline (nnScaler; paper §2 and Appendix B).

The interlaced pipeline distributes the vocabulary layers tensor-
parallel style over all pipeline devices, *synchronously*: after the
last stage's forward of each microbatch, every device drops what it is
doing and executes the vocabulary forward segment (VF) together —
including blocking all-reduces on the compute stream — and likewise a
vocabulary backward segment (VB) before the last stage's backward.

Two consequences the paper quantifies, both reproduced here:

* the building block's lifespan stretches from ``3p`` to ``≈ 4.5p``
  (Figure 15), i.e. **1.5× the activation memory of 1F1B** — we shift
  the B streams by ``ceil(p/2)`` intervals, the offset form of that
  stretch;
* the synchronous all-reduces add per-microbatch bubbles: every device
  idles until the slowest one reaches the segment, and the all-reduce
  itself cannot overlap with compute.  Appendix B.2 measures ≈11 % of
  iteration time at 32 GPUs; the discrete-event executor reproduces
  this from the α–β model without any tuned constant.
"""

from __future__ import annotations

import math

from repro.scheduling.building_block import BuildingBlock, PassSlot
from repro.scheduling.passes import PassType
from repro.scheduling.schedule import Schedule
from repro.scheduling.redistribution import uniform_layout


def build_interlaced_block(
    num_devices: int,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    t_vf: float = 0.5,
    t_vb: float = 0.5,
) -> BuildingBlock:
    """Interlaced building block (Figure 15b).

    The backward shift of ``ceil(p/2)`` intervals encodes the 1.5×
    lifespan: 1F1B's device-0 lifespan is ``p`` intervals, interlaced
    needs ``≈ 1.5p``.
    """
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    p = num_devices
    interval = t_forward + t_backward + t_vf + t_vb
    # ceil(p/2) intervals is the 1.5× lifespan stretch; the lower bound
    # of 2 keeps the last stage's B behind its VB (which itself lags VF
    # by one interval) for tiny pipelines.
    shift = max(math.ceil(p / 2), 2)
    slack = 0.05 * interval
    vf_offset = p * t_forward + slack
    # VB one interval after VF: the softmax-statistics barrier waits for
    # the slowest device's VF, so same-interval VB would stall.
    vb_offset = vf_offset + t_vf + slack + interval
    slots = []
    for d in range(p):
        b_offset = (d + 1) * t_forward + (p - 1 - d + shift) * interval
        slots.append(
            (
                PassSlot(PassType.F, 0, d * t_forward, t_forward),
                PassSlot(PassType.VF, 0, vf_offset, t_vf),
                PassSlot(PassType.VB, 0, vb_offset, t_vb),
                PassSlot(PassType.B, 0, b_offset, t_backward),
            )
        )
    return BuildingBlock(p, interval, tuple(slots))


def generate_interlaced(
    num_devices: int,
    num_microbatches: int,
    num_layers: int,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    t_vf: float = 0.5,
    t_vb: float = 0.5,
) -> Schedule:
    """Interlaced pipeline schedule over a uniform vocab-parallel layout."""
    layout = uniform_layout(
        num_devices, num_layers, num_chunks=1, vocab_parallel=True
    )
    block = build_interlaced_block(
        num_devices, t_forward, t_backward, t_vf, t_vb
    )
    schedule = Schedule(
        name="interlaced",
        num_microbatches=num_microbatches,
        layout=layout,
        device_orders=block.unroll(num_microbatches),
        interlaced=True,
        metadata={"building_block": block},
    )
    schedule.validate()
    return schedule
