"""Lower a scenario into Monte Carlo binding matrices for ``execute_many``.

PR 3's batched replay kernel
(:meth:`repro.sim.compiled.CompiledGraph.execute_many`) executes K
runtime bindings of one compiled schedule in a handful of NumPy calls.
This module produces those bindings from a
:class:`~repro.scenarios.cluster.ClusterScenario`: the graph's bound
durations/lags are the scenario's *nominal* binding (device speeds and
interconnect tiers already applied), and K multiplicative jitter
matrices perturb them into K samples.  Robustness statistics
(p50/p95/worst-case iteration time, bubble inflation) then cost a few
NumPy calls per schedule structure.

Determinism is load-bearing (tests, golden CLI output, cache keys), so
jitter does **not** use :mod:`numpy.random` or :mod:`random`.  Instead
a counter-based SplitMix64 generator produces 53-bit uniforms, and the
distribution transforms use arithmetic only (a 4-uniform Bates sum for
"normal", an affine map for "uniform").  Both steps are implemented
twice — vectorized NumPy and pure Python — and produce **bit-identical
matrices**, so robustness numbers do not depend on whether the
optional NumPy extra is installed (the pure-Python path is just
slower), mirroring ``execute_many``'s own exact fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # NumPy vectorizes factor generation; pure Python is bit-identical.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

from repro.scenarios.cluster import ClusterScenario
from repro.sim.compiled import CompiledGraph, Perturbation

#: SplitMix64 constants (Steele, Lea & Flood 2014).
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1
#: Uniforms per jitter factor (the Bates-4 normal approximation).
_DRAWS = 4
#: √3 rescales a centered 4-uniform sum to unit variance.
_SQRT3 = math.sqrt(3.0)

#: Quantile names accepted by :meth:`RobustnessStats.quantile_time`
#: and :attr:`RobustnessObjective.rank_by`.
QUANTILES = ("p50", "p95", "worst", "mean")


def _stream_seed(scenario_seed: int, sample_seed: int) -> int:
    """Combine the scenario's base seed with a caller seed (64-bit)."""
    return ((scenario_seed & _MASK) * _GOLDEN + (sample_seed & _MASK)) & _MASK


def _uniforms_py(seed: int, start: int, count: int) -> list[float]:
    """``count`` uniforms in [0, 1) from the counter-based stream."""
    out = []
    for i in range(count):
        z = (seed + (start + i + 1) * _GOLDEN) & _MASK
        z = (z + _GOLDEN) & _MASK
        z = ((z ^ (z >> 30)) * _MIX1) & _MASK
        z = ((z ^ (z >> 27)) * _MIX2) & _MASK
        z = z ^ (z >> 31)
        out.append((z >> 11) * 2.0**-53)
    return out


def _uniforms_np(seed: int, start: int, count: int):
    """NumPy twin of :func:`_uniforms_py` — bit-identical output."""
    idx = _np.arange(start + 1, start + count + 1, dtype=_np.uint64)
    z = _np.uint64(seed) + idx * _np.uint64(_GOLDEN)
    z = z + _np.uint64(_GOLDEN)
    z = (z ^ (z >> _np.uint64(30))) * _np.uint64(_MIX1)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(_MIX2)
    z = z ^ (z >> _np.uint64(31))
    return (z >> _np.uint64(11)).astype(_np.float64) * 2.0**-53


def _factor_block_py(
    scenario: ClusterScenario,
    seed: int,
    start: int,
    rows: int,
    cols: int,
    sigma_of,
) -> list[list[float]]:
    """``rows×cols`` multiplicative factors, pure Python."""
    uniform = _uniforms_py(seed, start, rows * cols * _DRAWS)
    floor = scenario.min_jitter_factor
    normal = scenario.jitter_distribution == "normal"
    out = []
    at = 0
    for _ in range(rows):
        row = []
        for j in range(cols):
            sigma = sigma_of(j)
            if normal:
                u = uniform[at : at + _DRAWS]
                z = (((u[0] + u[1]) + u[2]) + u[3] - 2.0) * _SQRT3
            else:
                z = 2.0 * uniform[at] - 1.0
            at += _DRAWS
            row.append(max(1.0 + sigma * z, floor))
        out.append(row)
    return out


def _factor_block_np(
    scenario: ClusterScenario,
    seed: int,
    start: int,
    rows: int,
    cols: int,
    sigma_row,
):
    """NumPy twin of :func:`_factor_block_py` — bit-identical output."""
    u = _uniforms_np(seed, start, rows * cols * _DRAWS).reshape(
        rows, cols, _DRAWS
    )
    if scenario.jitter_distribution == "normal":
        z = (((u[:, :, 0] + u[:, :, 1]) + u[:, :, 2]) + u[:, :, 3] - 2.0) * _SQRT3
    else:
        z = 2.0 * u[:, :, 0] - 1.0
    return _np.maximum(1.0 + sigma_row[None, :] * z, scenario.min_jitter_factor)


def perturbation_factors(
    graph: CompiledGraph,
    scenario: ClusterScenario,
    samples: int,
    seed: int = 0,
) -> tuple:
    """K×num_nodes duration factors and K×num_edges lag factors.

    Compute passes jitter with ``pass_jitter``; collective barrier
    nodes and edge lags (P2P transfers) jitter with ``comm_jitter``.
    The stream is a pure function of ``(scenario.seed, seed)`` and the
    graph's node/edge counts — same seed, same shape ⇒ bit-identical
    matrices, with or without NumPy.
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    num_nodes = graph.num_nodes
    num_passes = graph.num_passes
    num_edges = len(graph.succ_node)
    stream = _stream_seed(scenario.seed, seed)
    lag_start = samples * num_nodes * _DRAWS
    # Devices outside the scenario's jitter set draw from the stream
    # like everyone else (the counter advances identically) but with
    # zero sigma, so their factors are exactly 1.0 — narrowing the
    # support never shifts anyone else's draws.
    jittered = scenario.jitter_device_set(len(graph.device_nodes))
    node_device = graph.node_device
    if _np is not None:
        sigma_nodes = _np.where(
            _np.arange(num_nodes) < num_passes,
            scenario.pass_jitter,
            scenario.comm_jitter,
        )
        if scenario.jitter_devices:
            muted = _np.asarray(
                [
                    i < num_passes and node_device[i] not in jittered
                    for i in range(num_nodes)
                ]
            )
            sigma_nodes = _np.where(muted, 0.0, sigma_nodes)
        dur = _factor_block_np(scenario, stream, 0, samples, num_nodes, sigma_nodes)
        lag = _factor_block_np(
            scenario,
            stream,
            lag_start,
            samples,
            num_edges,
            _np.full(num_edges, scenario.comm_jitter),
        )
        return dur, lag
    pass_sigma, comm_sigma = scenario.pass_jitter, scenario.comm_jitter

    def sigma_of(j: int) -> float:
        if j >= num_passes:
            return comm_sigma
        return pass_sigma if node_device[j] in jittered else 0.0

    dur = _factor_block_py(scenario, stream, 0, samples, num_nodes, sigma_of)
    lag = _factor_block_py(
        scenario, stream, lag_start, samples, num_edges, lambda j: comm_sigma
    )
    return dur, lag


def perturbed_rows(
    graph: CompiledGraph,
    scenario: ClusterScenario,
    samples: int,
    seed: int = 0,
) -> tuple:
    """K perturbed duration rows and lag rows for ``execute_many``.

    The base binding is the graph's currently bound durations/lags —
    i.e. the scenario's deterministic part (device speeds, interconnect
    tiers) must already be priced into the graph
    (:meth:`~repro.scenarios.cluster.ClusterScenario.runtime_for`).
    Jitter multiplies on top; zero-lag structural edges stay exactly
    zero, so the batched kernel's lag-free level skips remain valid.
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if not scenario.has_jitter:
        if _np is not None:
            base_dur = _np.asarray(graph.durations, dtype=_np.float64)
            base_lag = _np.asarray(graph.succ_lag, dtype=_np.float64)
            return (
                _np.repeat(base_dur[None, :], samples, axis=0),
                _np.repeat(base_lag[None, :], samples, axis=0),
            )
        return (
            [list(graph.durations) for _ in range(samples)],
            [list(graph.succ_lag) for _ in range(samples)],
        )
    dur_factors, lag_factors = perturbation_factors(
        graph, scenario, samples, seed
    )
    if _np is not None:
        base_dur = _np.asarray(graph.durations, dtype=_np.float64)
        base_lag = _np.asarray(graph.succ_lag, dtype=_np.float64)
        return base_dur[None, :] * dur_factors, base_lag[None, :] * lag_factors
    base_dur = list(graph.durations)
    base_lag = list(graph.succ_lag)
    durations = [
        [b * f for b, f in zip(base_dur, row)] for row in dur_factors
    ]
    lags = [[b * f for b, f in zip(base_lag, row)] for row in lag_factors]
    return durations, lags


def delta_support(
    graph: CompiledGraph, scenario: ClusterScenario
) -> tuple[int, ...] | None:
    """Node ids the scenario's jitter can touch, when that support is
    narrow enough for incremental delta replay; ``None`` ⇒ dense.

    Narrow means: jitter is confined to an explicit device subset
    (``jitter_devices``) covering at most half the pipeline, and there
    is no communication jitter (which would spread the support over
    every collective barrier and edge lag).  Wide-support scenarios
    keep the batched ``execute_many`` kernel — re-relaxing most of the
    graph per sample would just be a slower full sweep.
    """
    if not scenario.has_jitter or not scenario.jitter_devices:
        return None
    if scenario.comm_jitter > 0:
        return None
    num_devices = len(graph.device_nodes)
    devices = scenario.jitter_device_set(num_devices)
    if 2 * len(devices) > num_devices:
        return None
    return tuple(
        sorted(i for d in devices for i in graph.device_nodes[d])
    )


def _uniform_at_py(seed: int, draw: int) -> float:
    """The uniform at absolute stream position ``draw`` — equal, bit
    for bit, to ``_uniforms_py(seed, 0, draw + 1)[-1]``."""
    z = (seed + (draw + 1) * _GOLDEN) & _MASK
    z = (z + _GOLDEN) & _MASK
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    z = z ^ (z >> 31)
    return (z >> 11) * 2.0**-53


def _support_factors_py(
    scenario: ClusterScenario,
    seed: int,
    num_nodes: int,
    samples: int,
    support: tuple[int, ...],
) -> list[list[float]]:
    """K×|support| pass-jitter factors — the same columns, bit for
    bit, as the dense ``perturbation_factors`` duration matrix, pulled
    from the counter-based stream at the columns' own draw offsets."""
    sigma = scenario.pass_jitter
    floor = scenario.min_jitter_factor
    normal = scenario.jitter_distribution == "normal"
    out = []
    for k in range(samples):
        base = k * num_nodes
        row = []
        for j in support:
            at = (base + j) * _DRAWS
            if normal:
                z = (
                    (
                        (_uniform_at_py(seed, at) + _uniform_at_py(seed, at + 1))
                        + _uniform_at_py(seed, at + 2)
                    )
                    + _uniform_at_py(seed, at + 3)
                    - 2.0
                ) * _SQRT3
            else:
                z = 2.0 * _uniform_at_py(seed, at) - 1.0
            row.append(max(1.0 + sigma * z, floor))
        out.append(row)
    return out


def _support_factors_np(
    scenario: ClusterScenario,
    seed: int,
    num_nodes: int,
    samples: int,
    support: tuple[int, ...],
):
    """NumPy twin of :func:`_support_factors_py` — bit-identical."""
    idx = _np.asarray(support, dtype=_np.uint64)[None, :]
    base = _np.arange(samples, dtype=_np.uint64)[:, None] * _np.uint64(num_nodes)
    at = (base + idx) * _np.uint64(_DRAWS)

    def uniform(offset: int):
        z = _np.uint64(seed) + (at + _np.uint64(offset + 1)) * _np.uint64(_GOLDEN)
        z = z + _np.uint64(_GOLDEN)
        z = (z ^ (z >> _np.uint64(30))) * _np.uint64(_MIX1)
        z = (z ^ (z >> _np.uint64(27))) * _np.uint64(_MIX2)
        z = z ^ (z >> _np.uint64(31))
        return (z >> _np.uint64(11)).astype(_np.float64) * 2.0**-53

    if scenario.jitter_distribution == "normal":
        z = (((uniform(0) + uniform(1)) + uniform(2)) + uniform(3) - 2.0) * _SQRT3
    else:
        z = 2.0 * uniform(0) - 1.0
    return _np.maximum(
        1.0 + scenario.pass_jitter * z, scenario.min_jitter_factor
    )


def _delta_summaries(
    graph: CompiledGraph,
    scenario: ClusterScenario,
    samples: int,
    seed: int,
    support: tuple[int, ...],
) -> list:
    """One delta replay per Monte Carlo sample, over the resident
    checkpoint — cost scales with the perturbation's cone, not the
    graph.  Bit-identical to pushing the same samples through the
    dense ``execute_many_summary`` kernel: muted columns are exactly
    1.0 there, and ``base * factor`` is the same IEEE multiply here.
    """
    stream = _stream_seed(scenario.seed, seed)
    factors = (
        _support_factors_np if _np is not None else _support_factors_py
    )(scenario, stream, graph.num_nodes, samples, support)
    graph.checkpoint()
    base = graph.durations
    summaries = []
    for row in factors:
        values = row.tolist() if _np is not None else row
        perturbation = Perturbation(
            durations=tuple(
                (i, base[i] * f)
                for i, f in zip(support, values)
                if f != 1.0
            )
        )
        summaries.append(graph.execute_delta_summary(perturbation))
    return summaries


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending list."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    h = (n - 1) * q
    lo = int(h)
    if lo >= n - 1:
        return sorted_values[-1]
    frac = h - lo
    return sorted_values[lo] + frac * (sorted_values[lo + 1] - sorted_values[lo])


@dataclass(frozen=True)
class RobustnessStats:
    """Monte Carlo robustness of one schedule under one scenario.

    ``nominal_time`` is the deterministic scenario execution (device
    speeds and interconnect applied, no jitter); the sample statistics
    describe the seeded jitter distribution around it.  ``*_bubble``
    are mean bubble fractions (the paper's ⌀).
    """

    samples: int
    seed: int
    nominal_time: float
    mean_time: float
    std_time: float
    best_time: float
    p50_time: float
    p95_time: float
    worst_time: float
    nominal_bubble: float
    p95_bubble: float

    @property
    def p95_inflation(self) -> float:
        """Relative iteration-time inflation of the 95th percentile."""
        if self.nominal_time <= 0:
            return 0.0
        return self.p95_time / self.nominal_time - 1.0

    def quantile_time(self, which: str) -> float:
        """One of ``p50``/``p95``/``worst``/``mean``."""
        try:
            return {
                "p50": self.p50_time,
                "p95": self.p95_time,
                "worst": self.worst_time,
                "mean": self.mean_time,
            }[which]
        except KeyError:
            raise ValueError(
                f"unknown quantile {which!r}; expected one of {QUANTILES}"
            ) from None

    def as_dict(self) -> dict:
        """Plain-dict rendering (JSON output, cache digests)."""
        return {
            "samples": self.samples,
            "seed": self.seed,
            "nominal_time": self.nominal_time,
            "mean_time": self.mean_time,
            "std_time": self.std_time,
            "best_time": self.best_time,
            "p50_time": self.p50_time,
            "p95_time": self.p95_time,
            "worst_time": self.worst_time,
            "p95_inflation": self.p95_inflation,
            "nominal_bubble": self.nominal_bubble,
            "p95_bubble": self.p95_bubble,
        }


@dataclass(frozen=True)
class RobustnessObjective:
    """How a robust planning pass samples and ranks.

    ``rank_by`` selects the statistic candidates are ordered by
    (:data:`QUANTILES`); ``samples``/``seed`` control the Monte Carlo
    draw (the seed combines with the scenario's own base seed).
    """

    samples: int = 256
    rank_by: str = "p95"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError(f"samples must be positive, got {self.samples}")
        if self.rank_by not in QUANTILES:
            raise ValueError(
                f"rank_by must be one of {QUANTILES}, got {self.rank_by!r}"
            )

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "rank_by": self.rank_by,
            "seed": self.seed,
        }


def robustness_stats(
    graph: CompiledGraph,
    scenario: ClusterScenario,
    samples: int = 256,
    seed: int = 0,
) -> RobustnessStats:
    """Monte Carlo statistics of one compiled, scenario-bound graph.

    One :meth:`~repro.sim.compiled.CompiledGraph.execute_many_summary`
    call prices all ``samples`` jitter draws; statistics are computed
    in pure Python from the resulting iteration times so they are
    identical whichever kernel backend ran the sweep.  A jitter-free
    scenario degenerates to the nominal execution (every quantile
    equals ``nominal_time`` exactly).

    Scenarios whose jitter support is narrow (:func:`delta_support` —
    an explicit small ``jitter_devices`` subset, no communication
    jitter) route each sample through
    :meth:`~repro.sim.compiled.CompiledGraph.execute_delta_summary`
    instead: per-sample cost then scales with the perturbed cone, not
    the graph, and the statistics are bit-identical to the dense
    kernel's either way.
    """
    nominal = graph.execute()
    nominal_time = nominal.iteration_time
    nominal_bubble = nominal.mean_bubble_fraction()
    if not scenario.has_jitter:
        return RobustnessStats(
            samples=samples,
            seed=seed,
            nominal_time=nominal_time,
            mean_time=nominal_time,
            std_time=0.0,
            best_time=nominal_time,
            p50_time=nominal_time,
            p95_time=nominal_time,
            worst_time=nominal_time,
            nominal_bubble=nominal_bubble,
            p95_bubble=nominal_bubble,
        )
    support = delta_support(graph, scenario)
    if support is not None:
        summaries = _delta_summaries(graph, scenario, samples, seed, support)
    else:
        durations, lags = perturbed_rows(graph, scenario, samples, seed)
        summaries = graph.execute_many_summary(durations, lags)
    times = sorted(s.iteration_time for s in summaries)
    bubbles = sorted(s.mean_bubble_fraction() for s in summaries)
    mean = sum(times) / len(times)
    variance = sum((t - mean) ** 2 for t in times) / len(times)
    return RobustnessStats(
        samples=samples,
        seed=seed,
        nominal_time=nominal_time,
        mean_time=mean,
        std_time=math.sqrt(variance),
        best_time=times[0],
        p50_time=_quantile(times, 0.50),
        p95_time=_quantile(times, 0.95),
        worst_time=times[-1],
        nominal_bubble=nominal_bubble,
        p95_bubble=_quantile(bubbles, 0.95),
    )


def method_robustness(
    method: str,
    model,
    parallel,
    scenario: ClusterScenario,
    *,
    setup=None,
    samples: int = 256,
    seed: int = 0,
    refine: bool = True,
) -> RobustnessStats:
    """Robustness of one schedule family under a scenario.

    Builds the method's (optionally refined) schedule under the
    scenario setup, compiles/rebinds it through the process-wide
    structural caches, and runs the Monte Carlo sweep.  ``setup`` is
    the *nominal* :class:`~repro.sim.SimulationSetup` (the scenario
    transform is applied here exactly once).  Schedule generation and
    graph lowering are cache hits when the planner simulated this
    method first; the order-refinement pass is recomputed (refined
    orders depend on the full runtime binding and are deliberately not
    cached), bounding a cold robust ``plan()`` at roughly one extra
    refinement per top-k candidate.
    """
    # Imported lazily: harness.experiments consumes scenarios through
    # duck typing, so the package dependency points this way only.
    from repro.harness.experiments import build_schedule, compiled_graph_for
    from repro.sim import SimulationSetup

    base = setup or SimulationSetup(model, parallel)
    schedule = build_schedule(method, base, refine=refine, scenario=scenario)
    scenario_setup = scenario.setup_for(base)
    runtime = scenario.runtime_for(scenario_setup, schedule)
    graph = compiled_graph_for(schedule, runtime)
    return robustness_stats(graph, scenario, samples=samples, seed=seed)
