"""Built-in cluster scenarios and the process-wide scenario registry.

The built-ins cover the perturbation classes the paper's idealized
evaluation leaves out, one axis each, so tests/benchmarks/docs can
name a well-understood cluster instead of hand-building one:

* ``homogeneous`` — the paper's testbed; the identity scenario used
  for zero-perturbation equivalence checks;
* ``mixed-sku`` — alternating fast/slow device SKUs (e.g. a cluster
  mixing full-clock and power-capped GPUs) with mild kernel jitter;
* ``slow-node`` — one straggler node at 75 % speed plus mild jitter,
  the classic "one bad host" incident;
* ``bandwidth-asymmetric`` — nominal compute, but inter-node links at
  35 % bandwidth and 3× latency (oversubscribed fabric);
* ``high-jitter`` — heavy runtime noise on compute and communication
  (busy multi-tenant cluster);
* ``straggler-device`` — kernel-time jitter confined to the last
  pipeline device (one thermally unstable card); its narrow support
  routes Monte Carlo robustness through the incremental delta-replay
  path.

:func:`register_scenario` adds user scenarios; lookups are
case-sensitive by ``name``.
"""

from __future__ import annotations

from repro.scenarios.cluster import ClusterScenario

_BUILTINS = (
    ClusterScenario(
        name="homogeneous",
        description="The paper's idealized testbed: identical devices, "
        "nominal links, no jitter.",
    ),
    ClusterScenario(
        name="mixed-sku",
        description="Alternating fast/slow device SKUs (15% clock gap) "
        "with 3% kernel-time jitter.",
        device_speed_pattern=(1.0, 0.85),
        pass_jitter=0.03,
        comm_jitter=0.03,
    ),
    ClusterScenario(
        name="slow-node",
        description="One straggler node at 75% speed (thermal "
        "throttling) with 5% kernel-time jitter.",
        slow_nodes=(-1,),
        slow_node_speed=0.75,
        pass_jitter=0.05,
        comm_jitter=0.05,
    ),
    ClusterScenario(
        name="bandwidth-asymmetric",
        description="Oversubscribed inter-node fabric: 35% of nominal "
        "cross-node bandwidth, 3x cross-node latency.",
        inter_bandwidth_scale=0.35,
        inter_latency_scale=3.0,
        comm_jitter=0.05,
    ),
    ClusterScenario(
        name="high-jitter",
        description="Busy multi-tenant cluster: 15% compute jitter, "
        "30% communication jitter.",
        pass_jitter=0.15,
        comm_jitter=0.30,
    ),
    ClusterScenario(
        name="straggler-device",
        description="One thermally unstable device (last in the "
        "pipeline) with 10% kernel-time jitter; narrow support drives "
        "the incremental delta-replay path.",
        pass_jitter=0.10,
        jitter_devices=(-1,),
    ),
)

_REGISTRY: dict[str, ClusterScenario] = {s.name: s for s in _BUILTINS}

#: Names of the scenarios shipped with the library, in gallery order.
BUILTIN_SCENARIOS: tuple[str, ...] = tuple(s.name for s in _BUILTINS)


def get_scenario(name: str) -> ClusterScenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def list_scenarios() -> list[ClusterScenario]:
    """Every registered scenario, built-ins first, then by name."""
    builtins = [_REGISTRY[name] for name in BUILTIN_SCENARIOS]
    extras = sorted(
        (s for name, s in _REGISTRY.items() if name not in BUILTIN_SCENARIOS),
        key=lambda s: s.name,
    )
    return builtins + extras


def register_scenario(
    scenario: ClusterScenario, replace: bool = False
) -> ClusterScenario:
    """Add a scenario to the registry (``replace=True`` to overwrite).

    Built-in names cannot be replaced — redefining what ``slow-node``
    means would silently change cached plans and golden outputs.
    """
    if scenario.name in BUILTIN_SCENARIOS:
        raise ValueError(
            f"cannot replace built-in scenario {scenario.name!r}"
        )
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(
            f"scenario {scenario.name!r} already registered "
            "(pass replace=True to overwrite)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a user-registered scenario (tests); built-ins stay."""
    if name in BUILTIN_SCENARIOS:
        raise ValueError(f"cannot unregister built-in scenario {name!r}")
    _REGISTRY.pop(name, None)
