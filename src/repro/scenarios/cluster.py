"""Named cluster/workload scenarios over the homogeneous cost model.

The paper evaluates its schedules on an idealized homogeneous cluster:
every device identical, every link nominal, every kernel's duration a
pure function of its shape.  Real clusters are not like that — mixed
GPU SKUs, one thermally-throttled straggler node, oversubscribed
inter-node fabric, and per-kernel runtime jitter all perturb exactly
the compute/memory balance the vocabulary-parallel schedules are
designed around.  A :class:`ClusterScenario` describes such a cluster
as a *transformation* of the nominal model, in three orthogonal parts:

* **per-device speeds** — a cyclic pattern of relative speeds
  (heterogeneous SKUs) plus explicitly slowed nodes (stragglers); a
  device at speed ``0.8`` takes ``1/0.8`` times as long for every pass;
* **a two-tier interconnect** — separate bandwidth/latency scale
  factors for intra-node (NVLink) and inter-node (RDMA) links,
  lowered into a scenario :class:`~repro.costmodel.hardware.HardwareModel`
  so the existing α–β model (:mod:`repro.collectives.timing`) prices
  collectives and P2P transfers per tier;
* **seeded jitter** — multiplicative noise distributions over pass
  durations and communication times, consumed by
  :mod:`repro.scenarios.perturb` to build Monte Carlo binding matrices
  for :meth:`repro.sim.compiled.CompiledGraph.execute_many`.

Scenarios are frozen, hashable and cheap: binding one onto a
:class:`~repro.sim.runtime.SimulationSetup` produces a normal setup
(with scenario hardware) plus a thin runtime wrapper applying device
speeds — everything downstream (compiled graphs, structural caches,
the planner) works unchanged, re-priced under the scenario.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ParallelConfig
from repro.costmodel.hardware import HardwareModel
from repro.scheduling.schedule import Schedule
from repro.sim.runtime import RuntimeModel, SimulationSetup

#: Jitter distributions understood by :mod:`repro.scenarios.perturb`.
JITTER_DISTRIBUTIONS = ("normal", "uniform")


@dataclass(frozen=True)
class ClusterScenario:
    """One named description of a non-ideal cluster.

    All perturbations default to "off", so
    ``ClusterScenario(name="x")`` is exactly the nominal homogeneous
    cluster (:attr:`is_nominal`).  Durations scale with ``1/speed``:
    a straggler at speed 0.8 runs every pass 25 % longer.

    Attributes
    ----------
    name / description:
        Registry identity and a human-readable summary.
    device_speed_pattern:
        Relative speeds cycled across pipeline devices (``(1.0, 0.85)``
        alternates fast/slow SKUs); empty means all devices nominal.
    slow_nodes:
        Indices of *nodes* (groups of ``devices_per_node`` devices,
        negative counts from the end) whose devices are additionally
        multiplied by ``slow_node_speed``.
    slow_node_speed:
        Speed multiplier of the devices on ``slow_nodes``.
    intra_bandwidth_scale / inter_bandwidth_scale:
        Bandwidth multipliers per interconnect tier (0.5 = half the
        nominal bytes/s).
    intra_latency_scale / inter_latency_scale:
        α multipliers per tier (3.0 = 3× the nominal per-message
        latency).
    pass_jitter / comm_jitter:
        Relative spread of multiplicative duration noise on compute
        passes / on collectives and P2P lags (0.05 ≈ 5 % kernel-time
        variation).  Zero disables jitter for that class.
    jitter_devices:
        Devices whose compute passes jitter (negative indices count
        from the end of the pipeline); empty means every device.  A
        narrow set — one thermally unstable straggler — confines the
        jitter support to that device's passes, which is what lets
        :func:`repro.scenarios.perturb.robustness_stats` route the
        Monte Carlo sweep through the incremental delta-replay path.
        Communication jitter is unaffected (it has no home device).
    jitter_distribution:
        ``"normal"`` (a 4-uniform Bates approximation — arithmetic
        only, so the NumPy and pure-Python generators are
        bit-identical) or ``"uniform"``.
    min_jitter_factor:
        Floor of the multiplicative factor, keeping perturbed
        durations positive under extreme draws.
    seed:
        Base seed of the scenario's deterministic jitter stream;
        combined with the caller's sample seed in
        :func:`repro.scenarios.perturb.perturbation_factors`.
    """

    name: str
    description: str = ""
    device_speed_pattern: tuple[float, ...] = ()
    slow_nodes: tuple[int, ...] = ()
    slow_node_speed: float = 1.0
    intra_bandwidth_scale: float = 1.0
    inter_bandwidth_scale: float = 1.0
    intra_latency_scale: float = 1.0
    inter_latency_scale: float = 1.0
    pass_jitter: float = 0.0
    comm_jitter: float = 0.0
    jitter_devices: tuple[int, ...] = ()
    jitter_distribution: str = "normal"
    min_jitter_factor: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        for speed in self.device_speed_pattern:
            if speed <= 0:
                raise ValueError(f"device speeds must be positive, got {speed}")
        if self.slow_node_speed <= 0:
            raise ValueError(
                f"slow_node_speed must be positive, got {self.slow_node_speed}"
            )
        for field_name in (
            "intra_bandwidth_scale",
            "inter_bandwidth_scale",
            "intra_latency_scale",
            "inter_latency_scale",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.pass_jitter < 0 or self.comm_jitter < 0:
            raise ValueError(
                f"jitter spreads must be >= 0, got pass={self.pass_jitter}, "
                f"comm={self.comm_jitter}"
            )
        for device in self.jitter_devices:
            if not isinstance(device, int):
                raise ValueError(
                    f"jitter_devices must be device indices, got {device!r}"
                )
        if self.jitter_distribution not in JITTER_DISTRIBUTIONS:
            raise ValueError(
                f"jitter_distribution must be one of {JITTER_DISTRIBUTIONS}, "
                f"got {self.jitter_distribution!r}"
            )
        if not 0 < self.min_jitter_factor <= 1:
            raise ValueError(
                f"min_jitter_factor must be in (0, 1], got {self.min_jitter_factor}"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def is_nominal(self) -> bool:
        """Whether this scenario leaves the nominal model untouched."""
        return (
            not self.has_heterogeneity
            and not self.has_interconnect_scaling
            and not self.has_jitter
        )

    @property
    def has_heterogeneity(self) -> bool:
        return (
            any(s != 1.0 for s in self.device_speed_pattern)
            or (bool(self.slow_nodes) and self.slow_node_speed != 1.0)
        )

    @property
    def has_interconnect_scaling(self) -> bool:
        return (
            self.intra_bandwidth_scale != 1.0
            or self.inter_bandwidth_scale != 1.0
            or self.intra_latency_scale != 1.0
            or self.inter_latency_scale != 1.0
        )

    @property
    def has_jitter(self) -> bool:
        return self.pass_jitter > 0 or self.comm_jitter > 0

    def signature(self) -> tuple:
        """Hashable identity for cache keys (every perturbation field).

        ``name``/``description`` are deliberately excluded: two
        registrations of the same physical scenario under different
        names share cache entries, and renaming a scenario does not
        invalidate them.
        """
        return (
            self.device_speed_pattern,
            self.slow_nodes,
            self.slow_node_speed,
            self.intra_bandwidth_scale,
            self.inter_bandwidth_scale,
            self.intra_latency_scale,
            self.inter_latency_scale,
            self.pass_jitter,
            self.comm_jitter,
            self.jitter_devices,
            self.jitter_distribution,
            self.min_jitter_factor,
            self.seed,
        )

    def jitter_device_set(self, num_devices: int) -> frozenset[int]:
        """Concrete device indices whose passes jitter, for a pipeline
        of ``num_devices`` (empty ``jitter_devices`` ⇒ all of them)."""
        if not self.jitter_devices:
            return frozenset(range(num_devices))
        return frozenset(d % num_devices for d in self.jitter_devices)

    # ------------------------------------------------------------------
    # Lowering onto the nominal model
    # ------------------------------------------------------------------

    def device_speeds(self, parallel: ParallelConfig) -> tuple[float, ...]:
        """Per-device relative speed for a concrete pipeline shape."""
        p = parallel.pipeline_size
        if self.device_speed_pattern:
            pattern = self.device_speed_pattern
            speeds = [pattern[d % len(pattern)] for d in range(p)]
        else:
            speeds = [1.0] * p
        if self.slow_nodes and self.slow_node_speed != 1.0:
            num_nodes = parallel.num_nodes
            slow = {node % num_nodes for node in self.slow_nodes}
            for d in range(p):
                if (d // parallel.devices_per_node) in slow:
                    speeds[d] *= self.slow_node_speed
        return tuple(speeds)

    def hardware_for(self, hardware: HardwareModel) -> HardwareModel:
        """The scenario's interconnect lowered into a hardware model."""
        if not self.has_interconnect_scaling:
            return hardware
        return dataclasses.replace(
            hardware,
            intra_node_bandwidth=hardware.intra_node_bandwidth
            * self.intra_bandwidth_scale,
            inter_node_bandwidth=hardware.inter_node_bandwidth
            * self.inter_bandwidth_scale,
            link_latency=hardware.link_latency * self.intra_latency_scale,
            inter_node_latency=hardware.inter_link_latency
            * self.inter_latency_scale,
        )

    def setup_for(self, setup: SimulationSetup) -> SimulationSetup:
        """``setup`` with this scenario's hardware substituted.

        Device speeds and jitter are *not* in the returned setup — they
        apply at runtime-binding time (:meth:`wrap_runtime`,
        :mod:`repro.scenarios.perturb`), so schedule generation keeps
        profiling nominal per-SKU durations.
        """
        if not self.has_interconnect_scaling:
            return setup
        return dataclasses.replace(
            setup, hardware=self.hardware_for(setup.hardware)
        )

    def wrap_runtime(self, runtime: RuntimeModel) -> "ScenarioRuntime | RuntimeModel":
        """Apply device speeds on top of an already-priced runtime.

        The runtime's setup must already carry the scenario hardware
        (:meth:`setup_for`); this wrapper only divides pass durations
        by the device's speed.  Homogeneous scenarios return the
        runtime unchanged.
        """
        speeds = self.device_speeds(runtime.setup.parallel)
        if all(speed == 1.0 for speed in speeds):
            return runtime
        return ScenarioRuntime(runtime, speeds)

    def runtime_for(
        self, setup: SimulationSetup, schedule: Schedule
    ) -> "ScenarioRuntime | RuntimeModel":
        """Scenario-priced runtime for a schedule.

        ``setup`` must be the scenario setup (:meth:`setup_for`) so the
        interconnect tiers are already in its hardware model.
        """
        return self.wrap_runtime(RuntimeModel(setup, schedule))

    def describe(self, parallel: ParallelConfig | None = None) -> str:
        """Multi-line human-readable rendering (CLI ``describe``)."""
        lines = [f"{self.name}: {self.description or '(no description)'}"]
        if self.device_speed_pattern:
            lines.append(f"  device speed pattern: {self.device_speed_pattern}")
        if self.slow_nodes:
            lines.append(
                f"  slow nodes {self.slow_nodes} at speed {self.slow_node_speed}"
            )
        if self.has_interconnect_scaling:
            lines.append(
                "  interconnect: intra bw ×"
                f"{self.intra_bandwidth_scale:g}, inter bw ×"
                f"{self.inter_bandwidth_scale:g}, intra α ×"
                f"{self.intra_latency_scale:g}, inter α ×"
                f"{self.inter_latency_scale:g}"
            )
        if self.has_jitter:
            lines.append(
                f"  jitter: pass ±{self.pass_jitter:.0%}, comm "
                f"±{self.comm_jitter:.0%} ({self.jitter_distribution}, "
                f"seed {self.seed})"
            )
            if self.jitter_devices:
                lines.append(
                    f"  jitter confined to devices {self.jitter_devices}"
                )
        if self.is_nominal:
            lines.append("  nominal homogeneous cluster (no perturbation)")
        if parallel is not None:
            speeds = self.device_speeds(parallel)
            lines.append(
                "  device speeds at p="
                f"{parallel.pipeline_size}: "
                + " ".join(f"{s:g}" for s in speeds)
            )
        return "\n".join(lines)


class ScenarioRuntime:
    """A runtime binding with per-device speed multipliers applied.

    Satisfies the :class:`~repro.sim.runtime.RuntimeModel` stream
    contract — ``pass_duration`` depends only on the pass's
    ``(type, device, chunk)`` — so compiled graphs may price it
    stream-wise (``rebind``, ``binding_matrix``, ``execute_bindings``)
    and both simulation engines accept it.
    """

    __slots__ = ("inner", "speeds")

    def __init__(self, inner: RuntimeModel, speeds: tuple[float, ...]):
        self.inner = inner
        self.speeds = speeds

    @property
    def setup(self) -> SimulationSetup:
        return self.inner.setup

    @property
    def schedule(self) -> Schedule:
        return self.inner.schedule

    def pass_duration(self, p) -> float:
        return self.inner.pass_duration(p) / self.speeds[p.device]

    def collective_duration(self, kind) -> float:
        # Collectives are gated by the interconnect (already in the
        # scenario hardware), not by a single device's clock.
        return self.inner.collective_duration(kind)

    def p2p_duration(self, src_device: int, dst_device: int) -> float:
        return self.inner.p2p_duration(src_device, dst_device)
