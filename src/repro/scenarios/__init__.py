"""Cluster/workload scenarios: heterogeneity, jitter, robust planning.

The paper's evaluation assumes an idealized homogeneous cluster.  This
package models the clusters the paper does *not* cover — mixed SKUs,
straggler nodes, asymmetric interconnects, kernel-time jitter — and
prices every schedule family under them, using the batched-replay
kernel (:meth:`repro.sim.compiled.CompiledGraph.execute_many`) to make
Monte Carlo robustness essentially free per schedule structure.

Programmatic entry points:

* :class:`ClusterScenario` — a frozen description of a non-ideal
  cluster (per-device speeds, two-tier interconnect scales, seeded
  jitter distributions);
* :func:`get_scenario` / :func:`list_scenarios` /
  :func:`register_scenario` — the named registry
  (``homogeneous``, ``mixed-sku``, ``slow-node``,
  ``bandwidth-asymmetric``, ``high-jitter``);
* :func:`method_robustness` / :func:`robustness_stats` — Monte Carlo
  p50/p95/worst-case iteration time and bubble inflation for one
  schedule family or one compiled graph;
* :func:`perturbed_rows` / :func:`perturbation_factors` — the K×nodes
  duration and K×edges lag matrices consumed by ``execute_many``;
* :class:`RobustnessObjective` — how ``plan(..., scenario=...,
  robustness=...)`` samples and ranks.

CLI: ``repro-experiments scenarios list|describe|run|compare``.
"""

from repro.scenarios.cluster import (
    JITTER_DISTRIBUTIONS,
    ClusterScenario,
    ScenarioRuntime,
)
from repro.scenarios.perturb import (
    QUANTILES,
    RobustnessObjective,
    RobustnessStats,
    delta_support,
    method_robustness,
    perturbation_factors,
    perturbed_rows,
    robustness_stats,
)
from repro.scenarios.registry import (
    BUILTIN_SCENARIOS,
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "ClusterScenario",
    "JITTER_DISTRIBUTIONS",
    "QUANTILES",
    "RobustnessObjective",
    "RobustnessStats",
    "ScenarioRuntime",
    "delta_support",
    "get_scenario",
    "list_scenarios",
    "method_robustness",
    "perturbation_factors",
    "perturbed_rows",
    "register_scenario",
    "robustness_stats",
    "unregister_scenario",
]
