"""The original dict-based executor, kept as the correctness oracle.

This is the pre-compiled-graph execution path, verbatim: the full
dependency DAG is rebuilt on every call as dicts keyed by tuples and
:class:`Pass` dataclasses, and refinement re-executes the schedule
from scratch for each of its checks.  It is *slow* — that is the
point: the fast path (:mod:`repro.sim.compiled`) must produce
bit-identical results, and the equivalence suite
(``tests/sim/test_compiled_equivalence.py``) plus the perf trajectory
benchmark (``tools/bench_trajectory.py``) both need the original
behaviour to compare against.  Select it at runtime with
``REPRO_SIM_ENGINE=reference`` (see :mod:`repro.sim.executor`).

Do not add features here; evolve :mod:`repro.sim.compiled` and keep
this module frozen so the oracle stays meaningful.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import defaultdict, deque

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule
from repro.sim.executor import (
    FLEXIBLE_TYPES,
    DeadlockError,
    ExecutionResult,
    NodeKey,
    _live_f_caps,
)


class _Graph:
    """Nodes, durations and lagged edges of the schedule DAG."""

    def __init__(self) -> None:
        self.durations: dict[NodeKey, float] = {}
        self.edges: dict[NodeKey, list[tuple[NodeKey, float]]] = defaultdict(list)
        self.indegree: dict[NodeKey, int] = defaultdict(int)

    def add_node(self, key: NodeKey, duration: float) -> None:
        """Register a node; duplicate keys are a schedule bug."""
        if key in self.durations:
            raise ValueError(f"duplicate node {key}")
        self.durations[key] = duration
        self.indegree.setdefault(key, 0)

    def add_edge(self, src: NodeKey, dst: NodeKey, lag: float = 0.0) -> None:
        """Add a dependency edge; ``lag`` models transfer latency."""
        if src not in self.durations or dst not in self.durations:
            raise KeyError(f"edge references unknown node: {src} -> {dst}")
        self.edges[src].append((dst, lag))
        self.indegree[dst] += 1


def _build_graph(
    schedule: Schedule,
    runtime,
    include_device_chains: bool,
) -> tuple[_Graph, dict[Pass, NodeKey]]:
    layout = schedule.layout
    m = schedule.num_microbatches
    graph = _Graph()

    pass_node: dict[Pass, NodeKey] = {}
    for device, order in enumerate(schedule.device_orders):
        prev: NodeKey | None = None
        for index, p in enumerate(order):
            key: NodeKey = ("pass", device, index)
            graph.add_node(key, runtime.pass_duration(p))
            pass_node[p] = key
            if include_device_chains and prev is not None:
                graph.add_edge(prev, key)
            prev = key

    def node_of(type_: PassType, mb: int, device: int, chunk: int = 0) -> NodeKey:
        return pass_node[Pass(type_, mb, device, chunk)]

    # Transformer stage chains (P2P activation/gradient transfers).
    stages = layout.num_stages
    holders = [layout.holder_of_stage(s) for s in range(stages)]
    for mb in range(m):
        for s in range(1, stages):
            src_dev, src_chunk = holders[s - 1]
            dst_dev, dst_chunk = holders[s]
            lag = runtime.p2p_duration(src_dev, dst_dev)
            graph.add_edge(
                node_of(PassType.F, mb, src_dev, src_chunk),
                node_of(PassType.F, mb, dst_dev, dst_chunk),
                lag,
            )
            graph.add_edge(
                node_of(PassType.B, mb, dst_dev, dst_chunk),
                node_of(PassType.B, mb, src_dev, src_chunk),
                lag,
            )
        for s in range(stages):
            dev, chunk = holders[s]
            graph.add_edge(
                node_of(PassType.F, mb, dev, chunk),
                node_of(PassType.B, mb, dev, chunk),
            )
            if schedule.has_weight_passes:
                graph.add_edge(
                    node_of(PassType.B, mb, dev, chunk),
                    node_of(PassType.W, mb, dev, chunk),
                )

    last_dev, last_chunk = holders[-1]
    first_dev, first_chunk = holders[0]
    devices = range(layout.num_devices)

    def add_collective_chain(
        kind: CollectiveKind, duration: float | None = None
    ) -> None:
        if duration is None:
            duration = runtime.collective_duration(kind)
        for mb in range(m):
            graph.add_node(("coll", kind.value, mb), duration)
            if mb > 0:
                graph.add_edge(
                    ("coll", kind.value, mb - 1), ("coll", kind.value, mb)
                )

    # Collectives for the partitioned vocabulary layers.
    if schedule.vocab_algorithm is not None:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS)
        if schedule.vocab_algorithm == 1:
            add_collective_chain(CollectiveKind.C2_GRAD_REDUCE)
        for mb in range(m):
            c0 = ("coll", CollectiveKind.C0_BROADCAST.value, mb)
            c1 = ("coll", CollectiveKind.C1_STATS.value, mb)
            graph.add_edge(node_of(PassType.F, mb, last_dev, last_chunk), c0)
            for d in devices:
                graph.add_edge(c0, node_of(PassType.S, mb, d))
                graph.add_edge(node_of(PassType.S, mb, d), c1)
                graph.add_edge(c1, node_of(PassType.T, mb, d))
            last_b = node_of(PassType.B, mb, last_dev, last_chunk)
            if schedule.vocab_algorithm == 1:
                c2 = ("coll", CollectiveKind.C2_GRAD_REDUCE.value, mb)
                for d in devices:
                    graph.add_edge(node_of(PassType.T, mb, d), c2)
                graph.add_edge(c2, last_b)
            else:
                graph.add_edge(c1, last_b)

    # Input-layer passes (Appendix C).
    if schedule.has_input_passes:
        add_collective_chain(CollectiveKind.INPUT_ALLREDUCE)
        add_collective_chain(CollectiveKind.INPUT_BROADCAST)
        for mb in range(m):
            iar = ("coll", CollectiveKind.INPUT_ALLREDUCE.value, mb)
            ibc = ("coll", CollectiveKind.INPUT_BROADCAST.value, mb)
            for d in devices:
                graph.add_edge(node_of(PassType.IF, mb, d), iar)
                graph.add_edge(ibc, node_of(PassType.IB, mb, d))
            graph.add_edge(iar, node_of(PassType.F, mb, first_dev, first_chunk))
            graph.add_edge(node_of(PassType.B, mb, first_dev, first_chunk), ibc)

    # Interlaced synchronous segments.  The VF/VB pass durations already
    # include the blocking all-reduce time (the cost Appendix B.2
    # ablates); barrier ordering is enforced by zero-duration
    # collectives.
    if schedule.interlaced:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS, duration=0.0)
        add_collective_chain(CollectiveKind.C2_GRAD_REDUCE, duration=0.0)
        for mb in range(m):
            c0 = ("coll", CollectiveKind.C0_BROADCAST.value, mb)
            c1 = ("coll", CollectiveKind.C1_STATS.value, mb)
            c2 = ("coll", CollectiveKind.C2_GRAD_REDUCE.value, mb)
            graph.add_edge(node_of(PassType.F, mb, last_dev, last_chunk), c0)
            for d in devices:
                graph.add_edge(c0, node_of(PassType.VF, mb, d))
                graph.add_edge(node_of(PassType.VF, mb, d), c1)
                graph.add_edge(c1, node_of(PassType.VB, mb, d))
                graph.add_edge(node_of(PassType.VB, mb, d), c2)
            graph.add_edge(c2, node_of(PassType.B, mb, last_dev, last_chunk))

    return graph, pass_node


def _collect_result(
    schedule: Schedule,
    pass_node: dict[Pass, NodeKey],
    times: dict[NodeKey, tuple[float, float]],
) -> ExecutionResult:
    pass_times = {p: times[node] for p, node in pass_node.items()}
    collective_times = {
        (CollectiveKind(key[1]), key[2]): span
        for key, span in times.items()
        if key[0] == "coll"
    }
    iteration_time = max(end for _, end in times.values()) - min(
        start for start, _ in times.values()
    )
    busy = [0.0] * schedule.num_devices
    for p, (start, end) in pass_times.items():
        busy[p.device] += end - start
    return ExecutionResult(
        schedule=schedule,
        pass_times=pass_times,
        collective_times=collective_times,
        iteration_time=iteration_time,
        device_busy=busy,
    )


def reference_execute_schedule(schedule: Schedule, runtime) -> ExecutionResult:
    """Simulate one iteration with strict in-order device streams."""
    graph, pass_node = _build_graph(schedule, runtime, include_device_chains=True)
    ready: dict[NodeKey, float] = defaultdict(float)
    indegree = dict(graph.indegree)
    queue = deque(key for key, deg in indegree.items() if deg == 0)
    times: dict[NodeKey, tuple[float, float]] = {}
    while queue:
        key = queue.popleft()
        start = ready[key]
        end = start + graph.durations[key]
        times[key] = (start, end)
        for succ, lag in graph.edges[key]:
            ready[succ] = max(ready[succ], end + lag)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(times) != len(graph.durations):
        blocked = [k for k in graph.durations if k not in times]
        raise DeadlockError(
            f"schedule '{schedule.name}' deadlocked; "
            f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
        )
    return _collect_result(schedule, pass_node, times)


def reference_execute_schedule_dataflow(
    schedule: Schedule,
    runtime,
    lookahead: int = 4,
    mode: str = "strict",
) -> ExecutionResult:
    """Work-conserving simulation with bounded in-order lookahead."""
    if lookahead < 1:
        raise ValueError(f"lookahead must be ≥ 1, got {lookahead}")
    if mode not in ("strict", "zero-bubble"):
        raise ValueError(f"mode must be 'strict' or 'zero-bubble', got {mode!r}")
    f_caps: list[dict[int, int]] | None = None
    release_type = PassType.W if schedule.has_weight_passes else PassType.B
    if mode == "zero-bubble":
        f_caps = _live_f_caps(schedule, reference_execute_schedule(schedule, runtime))
    live_f: list[dict[int, int]] = [defaultdict(int) for _ in range(schedule.num_devices)]
    graph, pass_node = _build_graph(schedule, runtime, include_device_chains=False)
    num_deps = dict(graph.indegree)
    dep_ready: dict[NodeKey, float] = defaultdict(float)
    times: dict[NodeKey, tuple[float, float]] = {}

    node_pass: dict[NodeKey, Pass] = {n: p for p, n in pass_node.items()}
    pending: list[deque[NodeKey]] = []
    for device, order in enumerate(schedule.device_orders):
        pending.append(deque(pass_node[p] for p in order))
    device_free = [0.0] * schedule.num_devices
    comm_free: dict[str, float] = defaultdict(float)

    # Event queue of completions; counter breaks ties deterministically.
    events: list[tuple[float, int, NodeKey]] = []
    counter = 0

    def finish_at(key: NodeKey, start: float) -> None:
        nonlocal counter
        end = start + graph.durations[key]
        times[key] = (start, end)
        counter += 1
        heapq.heappush(events, (end, counter, key))

    def launch_collective(key: NodeKey, now: float) -> None:
        kind = key[1]
        start = max(dep_ready[key], comm_free[kind], now)
        comm_free[kind] = start + graph.durations[key]
        finish_at(key, start)

    def try_dispatch(device: int, now: float) -> None:
        if device_free[device] > now:
            return
        queue = pending[device]
        window = min(lookahead, len(queue))
        for offset in range(window):
            key = queue[offset]
            p = node_pass[key]
            if mode == "strict":
                if offset > 0 and p.type not in FLEXIBLE_TYPES:
                    continue
            else:
                if p.type is PassType.F and f_caps is not None:
                    cap = f_caps[device].get(p.chunk, 0)
                    if live_f[device][p.chunk] >= cap:
                        continue
            if num_deps[key] == 0:
                start = max(now, dep_ready[key], device_free[device])
                device_free[device] = start + graph.durations[key]
                del queue[offset]
                if mode == "zero-bubble":
                    if p.type is PassType.F:
                        live_f[device][p.chunk] += 1
                    elif p.type is release_type:
                        live_f[device][p.chunk] -= 1
                finish_at(key, start)
                return

    # Seed: collectives with no deps (none in practice) and device scans.
    for key, deg in list(num_deps.items()):
        if deg == 0 and key[0] == "coll":
            launch_collective(key, 0.0)
    for device in range(schedule.num_devices):
        try_dispatch(device, 0.0)

    executed = 0
    total = len(graph.durations)
    while events:
        now, _, key = heapq.heappop(events)
        executed += 1
        for succ, lag in graph.edges[key]:
            end = times[key][1]
            dep_ready[succ] = max(dep_ready[succ], end + lag)
            num_deps[succ] -= 1
            if num_deps[succ] == 0 and succ[0] == "coll":
                launch_collective(succ, now)
        for device in range(schedule.num_devices):
            try_dispatch(device, now)
        if key[0] == "pass":
            try_dispatch(node_pass[key].device, now)
    if executed != total:
        blocked = [k for k in graph.durations if k not in times]
        raise DeadlockError(
            f"schedule '{schedule.name}' deadlocked in dataflow mode; "
            f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
        )
    return _collect_result(schedule, pass_node, times)


def reference_refine_schedule_order(
    schedule: Schedule,
    runtime,
    lookahead: int = 64,
    mode: str = "strict",
) -> Schedule:
    """Freeze the dataflow execution's realized order into the schedule."""
    result = reference_execute_schedule_dataflow(
        schedule, runtime, lookahead=lookahead, mode=mode
    )
    new_orders = [
        [p for p, _, _ in result.passes_on(device)]
        for device in range(schedule.num_devices)
    ]
    refined = dataclasses.replace(schedule, device_orders=new_orders)
    refined.validate()
    before = reference_execute_schedule(schedule, runtime).iteration_time
    after = reference_execute_schedule(refined, runtime).iteration_time
    return refined if after <= before else schedule
