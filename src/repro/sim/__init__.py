"""Discrete-event simulation of pipeline-parallel training.

The executor consumes a :class:`~repro.scheduling.schedule.Schedule`
and a :class:`~repro.sim.runtime.RuntimeModel` (pass durations from the
analytic cost model) and produces per-pass start/end times by longest-
path evaluation over the dependency DAG: device compute streams are
chains, collectives are barrier nodes serialized per communicator, and
interlaced VF/VB segments are synchronized nodes occupying every
device.  Iteration time, bubble fractions, MFU and the full
peak-memory timeline all derive from the resulting timing.
"""

from repro.sim.runtime import PassTimings, RuntimeModel, SimulationSetup
from repro.sim.executor import (
    DeadlockError,
    ExecutionResult,
    execute_schedule,
    execute_schedule_dataflow,
    refine_schedule_order,
    simulation_engine,
)
from repro.sim.compiled import (
    CompiledGraph,
    ExecutionSummary,
    LevelState,
    Perturbation,
    compile_schedule,
)
from repro.sim.memory import MemoryReport, memory_report, live_microbatch_peaks
from repro.sim.trace import render_timeline, render_order

__all__ = [
    "PassTimings",
    "RuntimeModel",
    "SimulationSetup",
    "execute_schedule",
    "execute_schedule_dataflow",
    "refine_schedule_order",
    "simulation_engine",
    "CompiledGraph",
    "compile_schedule",
    "ExecutionResult",
    "ExecutionSummary",
    "LevelState",
    "Perturbation",
    "DeadlockError",
    "MemoryReport",
    "memory_report",
    "live_microbatch_peaks",
    "render_timeline",
    "render_order",
]
