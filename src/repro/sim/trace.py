"""ASCII rendering of executed schedules (the paper's timeline figures).

``render_timeline`` paints each device's compute stream onto a fixed-
width character grid, one row per device: idle columns are ``.``, busy
columns show either the pass-type letter or the microbatch number
modulo 10 — the latter reproduces the look of the paper's Figures 1
and 10.
"""

from __future__ import annotations

from repro.scheduling.passes import PassType
from repro.scheduling.schedule import Schedule
from repro.sim.executor import ExecutionResult

_TYPE_CHARS = {
    PassType.F: "F",
    PassType.B: "B",
    PassType.W: "W",
    PassType.S: "S",
    PassType.T: "T",
    PassType.IF: "i",
    PassType.IB: "b",
    PassType.VF: "V",
    PassType.VB: "v",
}


def render_timeline(
    result: ExecutionResult,
    width: int = 120,
    mode: str = "type",
    time_range: tuple[float, float] | None = None,
) -> str:
    """Paint the executed schedule as one text row per device.

    ``mode`` is ``"type"`` (letters per pass kind) or ``"microbatch"``
    (digits, microbatch % 10, paper-figure style).  ``time_range``
    restricts the window, e.g. to show the steady state.
    """
    if mode not in ("type", "microbatch"):
        raise ValueError(f"mode must be 'type' or 'microbatch', got {mode}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if time_range is None:
        t0 = min(start for start, _ in result.pass_times.values())
        t1 = max(end for _, end in result.pass_times.values())
    else:
        t0, t1 = time_range
    if t1 <= t0:
        raise ValueError(f"empty time range ({t0}, {t1})")
    scale = width / (t1 - t0)
    num_devices = result.schedule.num_devices
    rows = [["."] * width for _ in range(num_devices)]
    for p, (start, end) in sorted(
        result.pass_times.items(), key=lambda item: item[1]
    ):
        lo = max(0, int((start - t0) * scale))
        hi = min(width, max(lo + 1, int((end - t0) * scale)))
        if lo >= width or hi <= 0:
            continue
        char = (
            _TYPE_CHARS[p.type]
            if mode == "type"
            else str(p.microbatch % 10)
        )
        for col in range(lo, hi):
            rows[p.device][col] = char
    lines = [
        f"device {d:>2} |{''.join(row)}|" for d, row in enumerate(rows)
    ]
    header = f"time [{t0:.4g}, {t1:.4g}]s  ({result.schedule.name})"
    return "\n".join([header] + lines)


def render_order(schedule: Schedule, max_microbatch: int = 4) -> str:
    """Compact per-device pass order for the first microbatches."""
    lines = []
    for device, order in enumerate(schedule.device_orders):
        shown = [str(p) for p in order if p.microbatch < max_microbatch]
        lines.append(f"device {device:>2}: " + " ".join(shown))
    return "\n".join(lines)
