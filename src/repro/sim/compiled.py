"""Compiled schedule graphs: lower once, execute on flat integer arrays.

The discrete-event executor of :mod:`repro.sim.executor` is the hot
path of every planner call — :func:`repro.planner.planner.plan`
simulates its top-k candidates, and each
:func:`~repro.sim.executor.refine_schedule_order` pass used to run
*three additional* full executions, every one of which rebuilt the
dependency DAG as dicts keyed by tuples and :class:`Pass` dataclasses.

This module applies the compile-then-replay discipline schedule-search
systems (TeraPipe, BaPipe) use to keep their search loops affordable:

* :func:`compile_schedule` lowers a ``(Schedule, RuntimeModel)`` pair
  **once** into a :class:`CompiledGraph` — integer node ids (passes
  first, in flattened device order, then collective barrier nodes),
  CSR-style successor/lag arrays, a flat durations array, and
  per-device pass-index lists;
* :meth:`CompiledGraph.execute` runs the in-order longest-path
  evaluation over those arrays (the topological order itself is
  computed once and replayed);
* :meth:`CompiledGraph.execute_dataflow` runs the work-conserving
  event-driven mode on the same arrays, re-scanning only devices whose
  dependency state or free time actually changed instead of sweeping
  every device per event;
* :meth:`CompiledGraph.rebind` re-prices durations and transfer lags
  for a different runtime **without re-lowering the topology**, and
  :meth:`CompiledGraph.with_orders` re-threads the device chains for a
  reordered schedule while sharing every structural array — which is
  exactly what :meth:`CompiledGraph.refine` needs for its before/after
  comparison.

Results are bit-identical to the reference executor
(:mod:`repro.sim.reference_executor`): the same floating-point
operations run in an order whose reductions (``max`` relaxations,
per-device busy sums) are associativity-safe, and the equivalence
suite (``tests/sim/test_compiled_equivalence.py``) holds the two
implementations together.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import defaultdict, deque

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule
from repro.sim.executor import (
    FLEXIBLE_TYPES,
    DeadlockError,
    ExecutionResult,
    _live_f_caps,
)


class CompiledGraph:
    """A schedule's dependency DAG lowered to flat arrays.

    Node ids ``0 .. num_passes-1`` are compute passes in flattened
    ``device_orders`` order; ids ``num_passes .. num_nodes-1`` are
    collective barrier nodes in registration order.  Structural arrays
    (successor CSR, per-device streams) depend only on the schedule;
    ``durations`` and ``succ_lag`` depend on the runtime and can be
    re-bound without re-lowering (:meth:`rebind`).
    """

    __slots__ = (
        "schedule",
        "runtime",
        "num_passes",
        "num_nodes",
        "node_pass",
        "node_device",
        "node_type",
        "node_chunk",
        "node_flexible",
        "coll_keys",
        "coll_comm",
        "coll_override",
        "num_comms",
        "durations",
        "succ_off",
        "succ_node",
        "succ_lag",
        "succ_p2p",
        "base_indeg",
        "device_nodes",
        "_pass_id",
        "_chain_next",
        "_topo",
        "_inorder",
    )

    def __init__(self) -> None:
        # Populated by compile_schedule / rebind / with_orders.
        self._chain_next: list[int] | None = None
        self._topo: list[int] | None = None
        self._inorder: ExecutionResult | None = None

    # ------------------------------------------------------------------
    # Binding (runtime-dependent arrays)
    # ------------------------------------------------------------------

    def _bind(self, runtime) -> None:
        """(Re)compute durations and transfer lags from ``runtime``."""
        self.runtime = runtime
        durations = [0.0] * self.num_nodes
        for i, p in enumerate(self.node_pass):
            durations[i] = runtime.pass_duration(p)
        coll_duration: dict[int, float] = {}
        for j, (kind, _mb) in enumerate(self.coll_keys):
            override = self.coll_override[j]
            if override is not None:
                durations[self.num_passes + j] = override
            else:
                comm = self.coll_comm[j]
                if comm not in coll_duration:
                    coll_duration[comm] = runtime.collective_duration(kind)
                durations[self.num_passes + j] = coll_duration[comm]
        p2p: dict[tuple[int, int], float] = {}
        lags = [0.0] * len(self.succ_node)
        for k, pair in enumerate(self.succ_p2p):
            if pair is not None:
                if pair not in p2p:
                    p2p[pair] = runtime.p2p_duration(*pair)
                lags[k] = p2p[pair]
        self.durations = durations
        self.succ_lag = lags
        # Topology (and its cached topological order) is unaffected by a
        # rebind; only the cached execution result must be dropped.
        self._inorder = None

    def rebind(self, runtime) -> CompiledGraph:
        """A graph sharing this topology with durations from ``runtime``.

        The expensive lowering (node numbering, edge CSR, device
        streams) is reused; only the duration and lag arrays are
        recomputed.  The cached topological order survives, so a
        rebound graph replays at full speed immediately.
        """
        clone = CompiledGraph()
        clone.schedule = self.schedule
        for name in (
            "num_passes", "num_nodes", "node_pass", "node_device",
            "node_type", "node_chunk", "node_flexible", "coll_keys",
            "coll_comm", "coll_override", "num_comms", "succ_off",
            "succ_node", "succ_p2p", "base_indeg", "device_nodes",
            "_pass_id",
        ):
            setattr(clone, name, getattr(self, name))
        clone._chain_next = self._chain_next
        clone._topo = self._topo
        clone._bind(runtime)
        return clone

    def with_orders(
        self, device_orders: list[list[Pass]], schedule: Schedule | None = None
    ) -> CompiledGraph:
        """A graph for the same passes executed in a different order.

        Only the per-device streams (and therefore the implicit device
        chains of the in-order mode) change; every structural array and
        the bound durations are shared.  ``schedule`` defaults to this
        graph's schedule with the new orders substituted.
        """
        if schedule is None:
            schedule = dataclasses.replace(
                self.schedule, device_orders=[list(o) for o in device_orders]
            )
        clone = CompiledGraph()
        clone.schedule = schedule
        for name in (
            "runtime", "num_passes", "num_nodes", "node_pass",
            "node_device", "node_type", "node_chunk", "node_flexible",
            "coll_keys", "coll_comm", "coll_override", "num_comms",
            "durations", "succ_off", "succ_node", "succ_lag",
            "succ_p2p", "base_indeg", "_pass_id",
        ):
            setattr(clone, name, getattr(self, name))
        pass_id = self._pass_id
        clone.device_nodes = [[pass_id[p] for p in order] for order in device_orders]
        return clone

    # ------------------------------------------------------------------
    # In-order execution (compile the topological order, then replay)
    # ------------------------------------------------------------------

    def _describe(self, node: int) -> tuple:
        """Reference-style node key, for deadlock diagnostics only."""
        if node >= self.num_passes:
            kind, mb = self.coll_keys[node - self.num_passes]
            return ("coll", kind.value, mb)
        device = self.node_device[node]
        return ("pass", device, self.device_nodes[device].index(node))

    def _topology(self) -> tuple[list[int], list[int]]:
        """Topological order including device chains; cached."""
        if self._topo is not None and self._chain_next is not None:
            return self._topo, self._chain_next
        n = self.num_nodes
        chain_next = [-1] * n
        indeg = list(self.base_indeg)
        for nodes in self.device_nodes:
            for a, b in zip(nodes, nodes[1:]):
                chain_next[a] = b
                indeg[b] += 1
        off, nxt = self.succ_off, self.succ_node
        queue = deque(i for i in range(n) if indeg[i] == 0)
        topo: list[int] = []
        while queue:
            i = queue.popleft()
            topo.append(i)
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
            j = chain_next[i]
            if j >= 0:
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
        if len(topo) != n:
            blocked = [self._describe(i) for i in range(n) if indeg[i] > 0]
            raise DeadlockError(
                f"schedule '{self.schedule.name}' deadlocked; "
                f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
            )
        self._chain_next = chain_next
        self._topo = topo
        return topo, chain_next

    def replay(self) -> ExecutionResult:
        """One in-order execution over the flat arrays (uncached).

        Longest-path evaluation in precompiled topological order: a
        single forward sweep with ``max`` relaxations, no dict lookups
        and no queue management.
        """
        topo, chain_next = self._topology()
        num_passes = self.num_passes
        dur = self.durations
        off, nxt, lag = self.succ_off, self.succ_node, self.succ_lag
        ready = [0.0] * self.num_nodes
        end = [0.0] * self.num_nodes
        for i in topo:
            e = ready[i] + dur[i]
            end[i] = e
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                r = e + lag[k]
                if r > ready[j]:
                    ready[j] = r
            j = chain_next[i] if i < num_passes else -1
            if j >= 0 and e > ready[j]:
                ready[j] = e
        result = self._collect(ready, end)
        self._inorder = result
        return result

    def execute(self) -> ExecutionResult:
        """In-order execution result; cached across calls.

        The refinement flow shares this single run between the
        zero-bubble memory-cap pre-pass, the "before" side of the
        refinement check, and the metrics collection that used to be a
        separate execution.
        """
        if self._inorder is None:
            self.replay()
        return self._inorder

    def _collect(self, start: list[float], end: list[float]) -> ExecutionResult:
        schedule = self.schedule
        pass_times: dict[Pass, tuple[float, float]] = {}
        busy = [0.0] * schedule.num_devices
        node_pass = self.node_pass
        # Walk passes in the *current* stream order (which differs from
        # node-id order after with_orders) so the busy sums accumulate in
        # exactly the reference executor's order — float addition is not
        # associative, and the equivalence suite compares bit-for-bit.
        for device, nodes in enumerate(self.device_nodes):
            for i in nodes:
                s, e = start[i], end[i]
                pass_times[node_pass[i]] = (s, e)
                busy[device] += e - s
        num_passes = self.num_passes
        collective_times = {
            key: (start[num_passes + j], end[num_passes + j])
            for j, key in enumerate(self.coll_keys)
        }
        iteration_time = max(end) - min(start)
        return ExecutionResult(
            schedule=schedule,
            pass_times=pass_times,
            collective_times=collective_times,
            iteration_time=iteration_time,
            device_busy=busy,
        )

    # ------------------------------------------------------------------
    # Work-conserving (dataflow) execution
    # ------------------------------------------------------------------

    def execute_dataflow(
        self, lookahead: int = 4, mode: str = "strict"
    ) -> ExecutionResult:
        """Work-conserving simulation on the compiled arrays.

        Semantics match
        :func:`repro.sim.reference_executor.reference_execute_schedule_dataflow`
        exactly (same dispatch rules, same collective serialization,
        same tie-breaking); the difference is that after each event
        only devices whose dependency state or free time changed are
        re-scanned, instead of the reference's O(devices) sweep per
        completion.
        """
        if lookahead < 1:
            raise ValueError(f"lookahead must be ≥ 1, got {lookahead}")
        if mode not in ("strict", "zero-bubble"):
            raise ValueError(
                f"mode must be 'strict' or 'zero-bubble', got {mode!r}"
            )
        schedule = self.schedule
        num_devices = schedule.num_devices
        num_passes = self.num_passes
        n = self.num_nodes
        dur = self.durations
        off, nxt, lag = self.succ_off, self.succ_node, self.succ_lag
        node_device = self.node_device
        node_type = self.node_type
        node_chunk = self.node_chunk
        node_flexible = self.node_flexible
        strict = mode == "strict"

        f_caps: list[dict[int, int]] | None = None
        release_type = (
            PassType.W if schedule.has_weight_passes else PassType.B
        )
        if mode == "zero-bubble":
            f_caps = _live_f_caps(schedule, self.execute())
        live_f: list[dict[int, int]] = [
            defaultdict(int) for _ in range(num_devices)
        ]

        num_deps = list(self.base_indeg)
        dep_ready = [0.0] * n
        start_arr = [0.0] * n
        end_arr = [0.0] * n
        seen = [False] * n
        pending: list[deque[int]] = [deque(nodes) for nodes in self.device_nodes]
        device_free = [0.0] * num_devices
        comm_free = [0.0] * self.num_comms

        events: list[tuple[float, int, int]] = []
        counter = 0
        # Devices become eligible again the moment simulated time reaches
        # their busy-until mark — which can happen at an event of *another*
        # node sharing that timestamp, not just at their own completion.
        # A min-heap of (free_time, device) reproduces the reference
        # executor's every-event sweep exactly while only re-scanning
        # devices whose state could actually have changed.
        free_heap: list[tuple[float, int]] = []

        def finish_at(i: int, start: float) -> None:
            nonlocal counter
            e = start + dur[i]
            start_arr[i] = start
            end_arr[i] = e
            seen[i] = True
            counter += 1
            heapq.heappush(events, (e, counter, i))

        def launch_collective(j: int, now: float) -> None:
            comm = self.coll_comm[j - num_passes]
            start = max(dep_ready[j], comm_free[comm], now)
            comm_free[comm] = start + dur[j]
            finish_at(j, start)

        def try_dispatch(device: int, now: float) -> None:
            if device_free[device] > now:
                return
            queue = pending[device]
            window = lookahead if lookahead < len(queue) else len(queue)
            for offset in range(window):
                i = queue[offset]
                if strict:
                    if offset > 0 and not node_flexible[i]:
                        continue
                elif node_type[i] is PassType.F and f_caps is not None:
                    cap = f_caps[device].get(node_chunk[i], 0)
                    if live_f[device][node_chunk[i]] >= cap:
                        continue
                if num_deps[i] == 0:
                    start = max(now, dep_ready[i], device_free[device])
                    device_free[device] = start + dur[i]
                    heapq.heappush(free_heap, (device_free[device], device))
                    del queue[offset]
                    if not strict:
                        if node_type[i] is PassType.F:
                            live_f[device][node_chunk[i]] += 1
                        elif node_type[i] is release_type:
                            live_f[device][node_chunk[i]] -= 1
                    finish_at(i, start)
                    return

        # Seed: collectives with no dependencies, then every device.
        for j in range(num_passes, n):
            if num_deps[j] == 0:
                launch_collective(j, 0.0)
        for device in range(num_devices):
            try_dispatch(device, 0.0)

        executed = 0
        while events:
            now, _, i = heapq.heappop(events)
            executed += 1
            e = end_arr[i]
            dirty: set[int] = set()
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                r = e + lag[k]
                if r > dep_ready[j]:
                    dep_ready[j] = r
                num_deps[j] -= 1
                if num_deps[j] == 0:
                    if j >= num_passes:
                        launch_collective(j, now)
                    else:
                        dirty.add(node_device[j])
            while free_heap and free_heap[0][0] <= now:
                dirty.add(heapq.heappop(free_heap)[1])
            for device in sorted(dirty):
                try_dispatch(device, now)
        if executed != n:
            blocked = [self._describe(i) for i in range(n) if not seen[i]]
            raise DeadlockError(
                f"schedule '{self.schedule.name}' deadlocked in dataflow mode; "
                f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
            )
        return self._collect(start_arr, end_arr)

    # ------------------------------------------------------------------
    # Refinement (shared compiled graph across all phases)
    # ------------------------------------------------------------------

    def refine(
        self, lookahead: int = 64, mode: str = "strict"
    ) -> tuple[Schedule, ExecutionResult, CompiledGraph]:
        """Freeze the dataflow order; return the better schedule + result.

        Returns ``(schedule, in_order_result, graph)`` where ``result``
        is the in-order execution of the *returned* schedule and
        ``graph`` is its compiled form — so callers (``run_method``,
        the planner's top-k loop) never re-execute or re-lower.  One
        compile now covers the zero-bubble pre-pass, the dataflow run
        and both sides of the before/after check; only the reordered
        device chains are re-threaded (:meth:`with_orders`).
        """
        flow = self.execute_dataflow(lookahead=lookahead, mode=mode)
        new_orders = [
            [p for p, _, _ in flow.passes_on(device)]
            for device in range(self.schedule.num_devices)
        ]
        refined = dataclasses.replace(self.schedule, device_orders=new_orders)
        refined.validate()
        refined_graph = self.with_orders(new_orders, refined)
        before = self.execute()
        after = refined_graph.execute()
        if after.iteration_time <= before.iteration_time:
            return refined, after, refined_graph
        return self.schedule, before, self


def compile_schedule(schedule: Schedule, runtime) -> CompiledGraph:
    """Lower ``(schedule, runtime)`` into a :class:`CompiledGraph`.

    Mirrors the edge construction of the reference executor's
    ``_build_graph`` exactly (stage P2P chains, collective barriers
    serialized per communicator, input-layer and interlaced couplings),
    but emits integer ids and flat arrays instead of dict-of-tuple
    graphs.  Device-chain edges are *implicit* (consecutive entries of
    ``device_nodes``), which is what lets :meth:`CompiledGraph.with_orders`
    reorder a schedule without touching the CSR.
    """
    layout = schedule.layout
    m = schedule.num_microbatches

    graph = CompiledGraph()
    graph.schedule = schedule

    node_pass: list[Pass] = []
    node_device: list[int] = []
    device_nodes: list[list[int]] = []
    pass_id: dict[Pass, int] = {}
    for device, order in enumerate(schedule.device_orders):
        ids = []
        for p in order:
            ids.append(len(node_pass))
            pass_id[p] = len(node_pass)
            node_pass.append(p)
            node_device.append(device)
        device_nodes.append(ids)
    num_passes = len(node_pass)

    coll_keys: list[tuple[CollectiveKind, int]] = []
    coll_comm: list[int] = []
    coll_override: list[float | None] = []
    coll_id: dict[tuple[str, int], int] = {}
    comm_index: dict[str, int] = {}
    edges: list[tuple[int, int, tuple[int, int] | None]] = []

    # (type, device, chunk) -> node id per microbatch.  Validation
    # guarantees one pass per stream per microbatch, so edge lowering can
    # index streams directly instead of hashing a fresh Pass per lookup.
    streams: dict[tuple[PassType, int, int], list[int]] = {}
    for i, p in enumerate(node_pass):
        streams.setdefault((p.type, p.device, p.chunk), [-1] * m)[p.microbatch] = i

    def node_of(type_: PassType, mb: int, device: int, chunk: int = 0) -> int:
        node = streams[(type_, device, chunk)][mb]
        if node < 0:
            # A hole in an otherwise-present stream: keep the reference
            # executor's behaviour of rejecting malformed schedules
            # instead of silently wiring the edge to the last node.
            raise KeyError(
                f"edge references unknown node: {Pass(type_, mb, device, chunk)}"
            )
        return node

    def add_collective_chain(
        kind: CollectiveKind, duration: float | None = None
    ) -> None:
        comm = comm_index.setdefault(kind.value, len(comm_index))
        for mb in range(m):
            key = (kind.value, mb)
            if key in coll_id:
                raise ValueError(f"duplicate node {('coll',) + key}")
            node = num_passes + len(coll_keys)
            coll_id[key] = node
            coll_keys.append((kind, mb))
            coll_comm.append(comm)
            coll_override.append(duration)
            if mb > 0:
                edges.append((coll_id[(kind.value, mb - 1)], node, None))

    # Transformer stage chains (P2P activation/gradient transfers).
    stages = layout.num_stages
    holders = [layout.holder_of_stage(s) for s in range(stages)]
    for mb in range(m):
        for s in range(1, stages):
            src_dev, src_chunk = holders[s - 1]
            dst_dev, dst_chunk = holders[s]
            pair = (src_dev, dst_dev)
            edges.append(
                (
                    node_of(PassType.F, mb, src_dev, src_chunk),
                    node_of(PassType.F, mb, dst_dev, dst_chunk),
                    pair,
                )
            )
            edges.append(
                (
                    node_of(PassType.B, mb, dst_dev, dst_chunk),
                    node_of(PassType.B, mb, src_dev, src_chunk),
                    pair,
                )
            )
        for s in range(stages):
            dev, chunk = holders[s]
            edges.append(
                (
                    node_of(PassType.F, mb, dev, chunk),
                    node_of(PassType.B, mb, dev, chunk),
                    None,
                )
            )
            if schedule.has_weight_passes:
                edges.append(
                    (
                        node_of(PassType.B, mb, dev, chunk),
                        node_of(PassType.W, mb, dev, chunk),
                        None,
                    )
                )

    last_dev, last_chunk = holders[-1]
    first_dev, first_chunk = holders[0]
    devices = range(layout.num_devices)

    # Collectives for the partitioned vocabulary layers.
    if schedule.vocab_algorithm is not None:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS)
        if schedule.vocab_algorithm == 1:
            add_collective_chain(CollectiveKind.C2_GRAD_REDUCE)
        for mb in range(m):
            c0 = coll_id[(CollectiveKind.C0_BROADCAST.value, mb)]
            c1 = coll_id[(CollectiveKind.C1_STATS.value, mb)]
            edges.append((node_of(PassType.F, mb, last_dev, last_chunk), c0, None))
            for d in devices:
                edges.append((c0, node_of(PassType.S, mb, d), None))
                edges.append((node_of(PassType.S, mb, d), c1, None))
                edges.append((c1, node_of(PassType.T, mb, d), None))
            last_b = node_of(PassType.B, mb, last_dev, last_chunk)
            if schedule.vocab_algorithm == 1:
                c2 = coll_id[(CollectiveKind.C2_GRAD_REDUCE.value, mb)]
                for d in devices:
                    edges.append((node_of(PassType.T, mb, d), c2, None))
                edges.append((c2, last_b, None))
            else:
                edges.append((c1, last_b, None))

    # Input-layer passes (Appendix C).
    if schedule.has_input_passes:
        add_collective_chain(CollectiveKind.INPUT_ALLREDUCE)
        add_collective_chain(CollectiveKind.INPUT_BROADCAST)
        for mb in range(m):
            iar = coll_id[(CollectiveKind.INPUT_ALLREDUCE.value, mb)]
            ibc = coll_id[(CollectiveKind.INPUT_BROADCAST.value, mb)]
            for d in devices:
                edges.append((node_of(PassType.IF, mb, d), iar, None))
                edges.append((ibc, node_of(PassType.IB, mb, d), None))
            edges.append((iar, node_of(PassType.F, mb, first_dev, first_chunk), None))
            edges.append((node_of(PassType.B, mb, first_dev, first_chunk), ibc, None))

    # Interlaced synchronous segments (barriers via 0-duration colls).
    if schedule.interlaced:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS, duration=0.0)
        add_collective_chain(CollectiveKind.C2_GRAD_REDUCE, duration=0.0)
        for mb in range(m):
            c0 = coll_id[(CollectiveKind.C0_BROADCAST.value, mb)]
            c1 = coll_id[(CollectiveKind.C1_STATS.value, mb)]
            c2 = coll_id[(CollectiveKind.C2_GRAD_REDUCE.value, mb)]
            edges.append((node_of(PassType.F, mb, last_dev, last_chunk), c0, None))
            for d in devices:
                edges.append((c0, node_of(PassType.VF, mb, d), None))
                edges.append((node_of(PassType.VF, mb, d), c1, None))
                edges.append((c1, node_of(PassType.VB, mb, d), None))
                edges.append((node_of(PassType.VB, mb, d), c2, None))
            edges.append((c2, node_of(PassType.B, mb, last_dev, last_chunk), None))

    num_nodes = num_passes + len(coll_keys)

    # CSR over the base edges, preserving insertion order per source so
    # the dataflow mode relaxes successors exactly like the reference.
    counts = [0] * num_nodes
    for src, _, _ in edges:
        counts[src] += 1
    succ_off = [0] * (num_nodes + 1)
    for i in range(num_nodes):
        succ_off[i + 1] = succ_off[i] + counts[i]
    cursor = list(succ_off[:num_nodes])
    succ_node = [0] * len(edges)
    succ_p2p: list[tuple[int, int] | None] = [None] * len(edges)
    base_indeg = [0] * num_nodes
    for src, dst, pair in edges:
        k = cursor[src]
        cursor[src] = k + 1
        succ_node[k] = dst
        succ_p2p[k] = pair
        base_indeg[dst] += 1

    graph.num_passes = num_passes
    graph.num_nodes = num_nodes
    graph.node_pass = node_pass
    graph.node_device = node_device
    graph.node_type = [p.type for p in node_pass]
    graph.node_chunk = [p.chunk for p in node_pass]
    graph.node_flexible = [p.type in FLEXIBLE_TYPES for p in node_pass]
    graph.coll_keys = coll_keys
    graph.coll_comm = coll_comm
    graph.coll_override = coll_override
    graph.num_comms = len(comm_index)
    graph.succ_off = succ_off
    graph.succ_node = succ_node
    graph.succ_p2p = succ_p2p
    graph.base_indeg = base_indeg
    graph.device_nodes = device_nodes
    graph._pass_id = pass_id
    graph._bind(runtime)
    return graph
