"""Compiled schedule graphs: lower once, execute on flat integer arrays.

The discrete-event executor of :mod:`repro.sim.executor` is the hot
path of every planner call — :func:`repro.planner.planner.plan`
simulates its top-k candidates, and each
:func:`~repro.sim.executor.refine_schedule_order` pass used to run
*three additional* full executions, every one of which rebuilt the
dependency DAG as dicts keyed by tuples and :class:`Pass` dataclasses.

This module applies the compile-then-replay discipline schedule-search
systems (TeraPipe, BaPipe) use to keep their search loops affordable:

* :func:`compile_schedule` lowers a ``(Schedule, RuntimeModel)`` pair
  **once** into a :class:`CompiledGraph` — integer node ids (passes
  first, in flattened device order, then collective barrier nodes),
  CSR-style successor/lag arrays, a flat durations array, and
  per-device pass-index lists;
* :meth:`CompiledGraph.execute` runs the in-order longest-path
  evaluation over those arrays (the topological order itself is
  computed once and replayed);
* :meth:`CompiledGraph.execute_dataflow` runs the work-conserving
  event-driven mode on the same arrays, re-scanning only devices whose
  dependency state or free time actually changed instead of sweeping
  every device per event;
* :meth:`CompiledGraph.rebind` re-prices durations and transfer lags
  for a different runtime **without re-lowering the topology**, and
  :meth:`CompiledGraph.with_orders` re-threads the device chains for a
  reordered schedule while sharing every structural array — which is
  exactly what :meth:`CompiledGraph.refine` needs for its before/after
  comparison.

Results are bit-identical to the reference executor
(:mod:`repro.sim.reference_executor`): the same floating-point
operations run in an order whose reductions (``max`` relaxations,
per-device busy sums) are associativity-safe, and the equivalence
suite (``tests/sim/test_compiled_equivalence.py``) holds the two
implementations together.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import defaultdict, deque

try:  # NumPy accelerates execute_many; the pure-Python path is exact too.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

from dataclasses import dataclass

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule
from repro.sim.executor import (
    FLEXIBLE_TYPES,
    BubbleFractions,
    DeadlockError,
    ExecutionResult,
    _live_f_caps,
)


@dataclass(frozen=True)
class Perturbation:
    """A sparse rebinding: the slots of a bound graph a what-if touches.

    ``durations`` maps node ids to *new absolute* durations and
    ``lags`` maps edge indices (into ``succ_lag``) to new absolute
    transfer lags — everything not listed keeps its checkpoint value.
    Entries equal to the checkpoint value are allowed and simply do
    not dirty anything, so callers can hand over whole perturbed rows
    via :meth:`from_rows` and let the diff find the support.
    """

    durations: tuple[tuple[int, float], ...] = ()
    lags: tuple[tuple[int, float], ...] = ()

    @classmethod
    def from_maps(cls, durations=None, lags=None) -> "Perturbation":
        """Build from ``{node: duration}`` / ``{edge: lag}`` mappings."""
        return cls(
            durations=tuple(sorted((durations or {}).items())),
            lags=tuple(sorted((lags or {}).items())),
        )

    @classmethod
    def from_rows(cls, graph: "CompiledGraph", dur_row, lag_row=None) -> "Perturbation":
        """The sparse difference between full rows and ``graph``'s binding.

        ``dur_row`` (length ``num_nodes``) and optionally ``lag_row``
        (length ``num_edges``) are compared against the graph's bound
        ``durations`` / ``succ_lag``; only differing slots survive.
        This is how a Monte Carlo sample row (mostly-ones factors)
        becomes a support-sized delta.
        """
        return cls(
            durations=_row_diff(graph.durations, dur_row),
            lags=() if lag_row is None else _row_diff(graph.succ_lag, lag_row),
        )

    @property
    def support(self) -> int:
        """Number of touched slots (nodes + edges)."""
        return len(self.durations) + len(self.lags)


def _row_diff(base, row) -> tuple[tuple[int, float], ...]:
    """Sparse ``(index, new_value)`` pairs where ``row`` differs from
    ``base``; vectorized when NumPy is present (the comparison is exact
    either way — a slot is in the support iff the floats differ)."""
    if _np is not None:
        base_arr = _np.asarray(base, dtype=_np.float64)
        row_arr = _np.asarray(row, dtype=_np.float64)
        changed = _np.flatnonzero(row_arr != base_arr)
        return tuple(
            (int(i), float(row_arr[i])) for i in changed
        )
    return tuple(
        (i, float(v)) for i, (b, v) in enumerate(zip(base, row)) if v != b
    )


class LevelState:
    """Checkpointed relaxation state of one bound :class:`CompiledGraph`.

    Holds working copies of the graph's bound duration/lag rows and the
    baseline longest-path solution (``ready``/``end`` per node, plus
    the per-device busy sums in collection order).  ``execute_delta``
    perturbs these arrays in place while keeping an undo log; a
    :meth:`rollback` (applied automatically unless a caller opts into
    cumulative deltas) restores the baseline bit for bit.  The graph's
    own ``durations``/``succ_lag`` are never mutated.
    """

    __slots__ = ("dur", "lag", "ready", "end", "busy", "_log")

    def __init__(self, dur, lag, ready, end, busy) -> None:
        self.dur = dur
        self.lag = lag
        self.ready = ready
        self.end = end
        self.busy = busy
        self._log: list[tuple[list, int, float]] = []

    @property
    def pristine(self) -> bool:
        """Whether the state currently equals the checkpoint baseline."""
        return not self._log

    def rollback(self) -> None:
        """Undo every applied delta, restoring the baseline exactly.

        The undo log replays old values in reverse application order,
        so the arrays return to the checkpointed floats bit for bit.
        Idempotent: rolling back a pristine state is a no-op.
        """
        log = self._log
        while log:
            array, index, value = log.pop()
            array[index] = value


@dataclass(frozen=True)
class ExecutionSummary(BubbleFractions):
    """The observables Monte Carlo statistics need, without the per-pass
    timing dictionaries of a full :class:`ExecutionResult`.

    Produced by :meth:`CompiledGraph.execute_many_summary`; the values
    are bit-identical to the corresponding fields of the full results
    (same sweep, same float accumulation order), only the per-pass and
    per-collective time maps are skipped — which is most of the
    collection cost once K reaches Monte Carlo sample counts.  Bubble
    accessors come from the shared
    :class:`~repro.sim.executor.BubbleFractions` base.
    """

    iteration_time: float
    device_busy: tuple[float, ...]


class CompiledGraph:
    """A schedule's dependency DAG lowered to flat arrays.

    Node ids ``0 .. num_passes-1`` are compute passes in flattened
    ``device_orders`` order; ids ``num_passes .. num_nodes-1`` are
    collective barrier nodes in registration order.  Structural arrays
    (successor CSR, per-device streams) depend only on the schedule;
    ``durations`` and ``succ_lag`` depend on the runtime and can be
    re-bound without re-lowering (:meth:`rebind`).
    """

    __slots__ = (
        "schedule",
        "runtime",
        "num_passes",
        "num_nodes",
        "node_pass",
        "node_device",
        "node_type",
        "node_chunk",
        "node_flexible",
        "coll_keys",
        "coll_comm",
        "coll_override",
        "num_comms",
        "durations",
        "succ_off",
        "succ_node",
        "succ_lag",
        "succ_p2p",
        "base_indeg",
        "device_nodes",
        "_pass_id",
        "_chain_next",
        "_topo",
        "_inorder",
        "_batch",
        "_pricing",
        "_cplan",
        "_rev",
        "_levelstate",
    )

    def __init__(self) -> None:
        # Populated by compile_schedule / rebind / with_orders.
        self._chain_next: list[int] | None = None
        self._topo: list[int] | None = None
        self._inorder: ExecutionResult | None = None
        self._batch: list | None = None
        self._pricing: tuple | None = None
        self._cplan: tuple | None = None
        self._rev: tuple | None = None
        self._levelstate: LevelState | None = None

    # ------------------------------------------------------------------
    # Binding (runtime-dependent arrays)
    # ------------------------------------------------------------------

    def binding_rows(self, runtime) -> tuple[list[float], list[float]]:
        """Durations and edge lags this graph would carry under ``runtime``.

        Pure pricing — ``self`` is not mutated.  The returned
        ``(durations, lags)`` pair is one row of the matrices
        :meth:`execute_many` consumes, which is how one compiled graph
        prices many hardware/efficiency bindings in a single batch.
        """
        durations = [0.0] * self.num_nodes
        for i, p in enumerate(self.node_pass):
            durations[i] = runtime.pass_duration(p)
        coll_duration: dict[int, float] = {}
        for j, (kind, _mb) in enumerate(self.coll_keys):
            override = self.coll_override[j]
            if override is not None:
                durations[self.num_passes + j] = override
            else:
                comm = self.coll_comm[j]
                if comm not in coll_duration:
                    coll_duration[comm] = runtime.collective_duration(kind)
                durations[self.num_passes + j] = coll_duration[comm]
        p2p: dict[tuple[int, int], float] = {}
        lags = [0.0] * len(self.succ_node)
        for k, pair in enumerate(self.succ_p2p):
            if pair is not None:
                if pair not in p2p:
                    p2p[pair] = runtime.p2p_duration(*pair)
                lags[k] = p2p[pair]
        return durations, lags

    def _pricing_plan(self) -> tuple:
        """Stream-level pricing plan: durations are per *stream*, not
        per node, so K bindings price ``O(streams)`` Python calls and a
        vectorized gather instead of ``O(nodes)`` calls each.

        Returns ``(stream_reps, node_value_idx, comm_first_kind,
        pair_list, edge_value_idx)``:

        * ``stream_reps`` — one representative :class:`Pass` per
          distinct ``(type, device, chunk)`` stream;
        * ``node_value_idx`` — for every node, the index into the
          per-binding value list ``stream values + collective values``;
        * ``comm_first_kind`` — per communicator, the kind its duration
          is priced from (matching :meth:`binding_rows`' first-seen
          memoization exactly);
        * ``pair_list`` / ``edge_value_idx`` — distinct P2P pairs and,
          per edge, the index into ``[0.0] + pair durations``.
        """
        if self._pricing is not None:
            return self._pricing
        stream_index: dict[tuple, int] = {}
        stream_reps: list[Pass] = []
        node_value_idx: list[int] = []
        for p in self.node_pass:
            key = (p.type, p.device, p.chunk)
            idx = stream_index.get(key)
            if idx is None:
                idx = len(stream_reps)
                stream_index[key] = idx
                stream_reps.append(p)
            node_value_idx.append(idx)
        num_streams = len(stream_reps)
        comm_first_kind: list[CollectiveKind | None] = [None] * self.num_comms
        for j, (kind, _mb) in enumerate(self.coll_keys):
            comm = self.coll_comm[j]
            if comm_first_kind[comm] is None:
                comm_first_kind[comm] = kind
            node_value_idx.append(num_streams + j)
        pair_index: dict[tuple[int, int], int] = {}
        pair_list: list[tuple[int, int]] = []
        edge_value_idx: list[int] = []
        for pair in self.succ_p2p:
            if pair is None:
                edge_value_idx.append(0)
            else:
                idx = pair_index.get(pair)
                if idx is None:
                    idx = len(pair_list)
                    pair_index[pair] = idx
                    pair_list.append(pair)
                edge_value_idx.append(1 + idx)
        node_idx = None
        edge_idx = None
        if _np is not None:
            node_idx = _np.asarray(node_value_idx, dtype=_np.intp)
            edge_idx = _np.asarray(edge_value_idx, dtype=_np.intp)
        self._pricing = (
            stream_reps, node_value_idx, comm_first_kind, pair_list,
            edge_value_idx, node_idx, edge_idx,
        )
        return self._pricing

    def _stream_values(self, runtime) -> tuple[list[float], list[float]]:
        """Per-slot value lists (node values, ``[0.0]`` + pair lags).

        One ``pass_duration`` call per distinct stream instead of per
        node — valid because runtimes price passes by ``(type, device,
        chunk)`` (the :class:`~repro.sim.runtime.RuntimeModel` contract;
        its memo key is exactly that stream).
        """
        stream_reps, _, comm_first_kind, pair_list, _, _, _ = (
            self._pricing_plan()
        )
        values = [runtime.pass_duration(p) for p in stream_reps]
        comm_values = [
            0.0 if kind is None else runtime.collective_duration(kind)
            for kind in comm_first_kind
        ]
        for j in range(len(self.coll_keys)):
            override = self.coll_override[j]
            values.append(
                override if override is not None
                else comm_values[self.coll_comm[j]]
            )
        pair_values = [0.0] + [
            runtime.p2p_duration(*pair) for pair in pair_list
        ]
        return values, pair_values

    def binding_matrix(self, runtimes) -> tuple[list, list]:
        """K duration rows and K lag rows, priced stream-wise.

        Bit-identical to ``[self.binding_rows(r) for r in runtimes]``
        (the same ``pass_duration``/``collective_duration``/
        ``p2p_duration`` values land in the same slots); the per-stream
        dedup plus vectorized gather is what makes pricing K bindings
        cheap enough for :meth:`execute_bindings` to amortize.
        """
        plan = self._pricing_plan()
        node_list, edge_list = plan[1], plan[4]
        node_idx, edge_idx = plan[5], plan[6]
        duration_rows: list = []
        lag_rows: list = []
        for runtime in runtimes:
            values, pair_values = self._stream_values(runtime)
            if _np is not None:
                duration_rows.append(
                    _np.take(_np.asarray(values, dtype=_np.float64), node_idx)
                )
                lag_rows.append(
                    _np.take(
                        _np.asarray(pair_values, dtype=_np.float64), edge_idx
                    )
                )
            else:
                duration_rows.append([values[i] for i in node_list])
                lag_rows.append([pair_values[i] for i in edge_list])
        return duration_rows, lag_rows

    def _bind(self, runtime) -> None:
        """(Re)compute durations and transfer lags from ``runtime``.

        Stream-level pricing: the same values :meth:`binding_rows`
        computes per node, gathered from one ``pass_duration`` call per
        distinct stream (see :meth:`_stream_values`).
        """
        self.runtime = runtime
        plan = self._pricing_plan()
        values, pair_values = self._stream_values(runtime)
        self.durations = [values[i] for i in plan[1]]
        self.succ_lag = [pair_values[i] for i in plan[4]]
        # Topology (and its cached topological order) is unaffected by a
        # rebind; the cached execution result and the checkpointed
        # relaxation state price the old binding and must be dropped.
        self._inorder = None
        self._levelstate = None

    def rebind(self, runtime, schedule: Schedule | None = None) -> CompiledGraph:
        """A graph sharing this topology with durations from ``runtime``.

        The expensive lowering (node numbering, edge CSR, device
        streams) is reused; only the duration and lag arrays are
        recomputed.  The cached topological order survives, so a
        rebound graph replays at full speed immediately.

        ``schedule`` optionally re-attaches the clone (and therefore its
        execution results) to a structurally identical
        :class:`~repro.scheduling.schedule.Schedule` instance — equal
        :meth:`~repro.scheduling.schedule.Schedule.structure_key`, e.g.
        the caller's own copy of a cached schedule.  Passing a
        structurally different schedule is undefined behaviour.
        """
        clone = CompiledGraph()
        clone.schedule = self.schedule if schedule is None else schedule
        for name in (
            "num_passes", "num_nodes", "node_pass", "node_device",
            "node_type", "node_chunk", "node_flexible", "coll_keys",
            "coll_comm", "coll_override", "num_comms", "succ_off",
            "succ_node", "succ_p2p", "base_indeg", "device_nodes",
            "_pass_id",
        ):
            setattr(clone, name, getattr(self, name))
        clone._chain_next = self._chain_next
        clone._topo = self._topo
        clone._batch = self._batch
        clone._pricing = self._pricing
        clone._cplan = self._cplan
        # The reverse plan is structural (CSR + device chains), both
        # shared here; the LevelState checkpoint is binding-dependent
        # and is intentionally *not* carried over (_bind resets it).
        clone._rev = self._rev
        clone._bind(runtime)
        return clone

    def with_orders(
        self, device_orders: list[list[Pass]], schedule: Schedule | None = None
    ) -> CompiledGraph:
        """A graph for the same passes executed in a different order.

        Only the per-device streams (and therefore the implicit device
        chains of the in-order mode) change; every structural array and
        the bound durations are shared.  ``schedule`` defaults to this
        graph's schedule with the new orders substituted.
        """
        if schedule is None:
            schedule = dataclasses.replace(
                self.schedule, device_orders=[list(o) for o in device_orders]
            )
        clone = CompiledGraph()
        clone.schedule = schedule
        for name in (
            "runtime", "num_passes", "num_nodes", "node_pass",
            "node_device", "node_type", "node_chunk", "node_flexible",
            "coll_keys", "coll_comm", "coll_override", "num_comms",
            "durations", "succ_off", "succ_node", "succ_lag",
            "succ_p2p", "base_indeg", "_pass_id",
        ):
            setattr(clone, name, getattr(self, name))
        pass_id = self._pass_id
        clone.device_nodes = [[pass_id[p] for p in order] for order in device_orders]
        # Pricing is order-independent and can be shared; the batch and
        # collect plans depend on the device chains and must rebuild.
        clone._pricing = self._pricing
        return clone

    # ------------------------------------------------------------------
    # In-order execution (compile the topological order, then replay)
    # ------------------------------------------------------------------

    def _describe(self, node: int) -> tuple:
        """Reference-style node key, for deadlock diagnostics only."""
        if node >= self.num_passes:
            kind, mb = self.coll_keys[node - self.num_passes]
            return ("coll", kind.value, mb)
        device = self.node_device[node]
        return ("pass", device, self.device_nodes[device].index(node))

    def _topology(self) -> tuple[list[int], list[int]]:
        """Topological order including device chains; cached."""
        if self._topo is not None and self._chain_next is not None:
            return self._topo, self._chain_next
        n = self.num_nodes
        chain_next = [-1] * n
        indeg = list(self.base_indeg)
        for nodes in self.device_nodes:
            for a, b in zip(nodes, nodes[1:]):
                chain_next[a] = b
                indeg[b] += 1
        off, nxt = self.succ_off, self.succ_node
        queue = deque(i for i in range(n) if indeg[i] == 0)
        topo: list[int] = []
        while queue:
            i = queue.popleft()
            topo.append(i)
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
            j = chain_next[i]
            if j >= 0:
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
        if len(topo) != n:
            blocked = [self._describe(i) for i in range(n) if indeg[i] > 0]
            raise DeadlockError(
                f"schedule '{self.schedule.name}' deadlocked; "
                f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
            )
        self._chain_next = chain_next
        self._topo = topo
        return topo, chain_next

    def _sweep(self, dur: list[float], lag: list[float]) -> tuple[list[float], list[float]]:
        """One longest-path forward sweep; returns (start, end) arrays.

        A node's ready time is final when the sweep reaches it (all
        predecessors precede it in topological order), so the ready
        array doubles as the start-time array.
        """
        topo, chain_next = self._topology()
        num_passes = self.num_passes
        off, nxt = self.succ_off, self.succ_node
        ready = [0.0] * self.num_nodes
        end = [0.0] * self.num_nodes
        for i in topo:
            e = ready[i] + dur[i]
            end[i] = e
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                r = e + lag[k]
                if r > ready[j]:
                    ready[j] = r
            j = chain_next[i] if i < num_passes else -1
            if j >= 0 and e > ready[j]:
                ready[j] = e
        return ready, end

    def replay(self) -> ExecutionResult:
        """One in-order execution over the flat arrays (uncached).

        Longest-path evaluation in precompiled topological order: a
        single forward sweep with ``max`` relaxations, no dict lookups
        and no queue management.
        """
        ready, end = self._sweep(self.durations, self.succ_lag)
        result = self._collect(ready, end)
        self._inorder = result
        return result

    def _batch_plan(self) -> tuple:
        """Level-parallel relaxation plan for the vectorized kernel.

        The topological order is grouped into *depth levels* (every
        edge, including the implicit device-chain edges, crosses from a
        lower to a strictly higher level), so all K bindings of a whole
        level relax in a handful of NumPy calls instead of per-node
        Python steps.  Nodes are renumbered level-contiguously (the
        ``perm`` / ``inverse`` arrays translate), which turns the
        per-level gathers into slices.  Per level the plan precomputes:

        * the ``(start, stop)`` slice of the level in permuted space;
        * ``src_pos`` — for each outgoing edge, the source's position
          within the level slice (``None`` when that's the identity);
        * ``edge_idx`` — the lag column of each edge (chain edges map
          to a sentinel zero-lag column ``num_edges``), or ``None``
          when every edge of the level is lag-free;
        * ``seg_starts`` — the edges sorted by destination and
          segmented, so ``np.maximum.reduceat`` collapses barrier
          fan-in (several edges, one destination) to a per-destination
          max before the scatter (``None`` when destinations are
          already unique) — max-relaxations commute, keeping results
          bit-identical to the scalar sweep;
        * ``dst_unique`` — the distinct destinations, in permuted ids.
        """
        if self._batch is not None:
            return self._batch
        topo, chain_next = self._topology()
        off, nxt = self.succ_off, self.succ_node
        num_edges = len(nxt)
        level = [0] * self.num_nodes
        for i in topo:
            nxt_level = level[i] + 1
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                if nxt_level > level[j]:
                    level[j] = nxt_level
            j = chain_next[i] if i < self.num_passes else -1
            if j >= 0 and nxt_level > level[j]:
                level[j] = nxt_level
        buckets: dict[int, list[int]] = {}
        for i in topo:
            buckets.setdefault(level[i], []).append(i)
        perm: list[int] = []
        for depth in sorted(buckets):
            perm.extend(buckets[depth])
        inverse = [0] * self.num_nodes
        for position, node in enumerate(perm):
            inverse[node] = position
        levels: list[tuple] = []
        start = 0
        lag_free = [pair is None for pair in self.succ_p2p]
        for depth in sorted(buckets):
            nodes = buckets[depth]
            stop = start + len(nodes)
            edges: list[tuple[int, int, int]] = []  # (dst_perm, edge_idx, src_pos)
            for q, node in enumerate(nodes):
                for k in range(off[node], off[node + 1]):
                    edges.append((inverse[nxt[k]], k, q))
                j = chain_next[node] if node < self.num_passes else -1
                if j >= 0:
                    edges.append((inverse[j], num_edges, q))
            edges.sort(key=lambda e: e[0])
            src_pos = [e[2] for e in edges]
            seg_starts = [
                k for k, edge in enumerate(edges)
                if k == 0 or edge[0] != edges[k - 1][0]
            ]
            structurally_lag_free = all(
                e[1] == num_edges or lag_free[e[1]] for e in edges
            )
            levels.append(
                (
                    start,
                    stop,
                    None
                    if (
                        len(edges) == stop - start
                        and src_pos == list(range(len(edges)))
                    )
                    else _np.asarray(src_pos, dtype=_np.intp),
                    _np.asarray([e[1] for e in edges], dtype=_np.intp)
                    if edges else _np.asarray([], dtype=_np.intp),
                    structurally_lag_free,
                    None if len(seg_starts) == len(edges)
                    else _np.asarray(seg_starts, dtype=_np.intp),
                    _np.asarray(
                        [edges[k][0] for k in seg_starts], dtype=_np.intp
                    ),
                )
            )
            start = stop
        self._batch = (
            _np.asarray(perm, dtype=_np.intp),
            _np.asarray(inverse, dtype=_np.intp),
            # Edges whose structural lag is always zero (non-P2P): the
            # lag-free level skip is only valid when the bound lag rows
            # are actually zero there (binding_rows always is; explicit
            # caller lags are checked per execute_many call).
            _np.asarray(
                [k for k, free in enumerate(lag_free) if free],
                dtype=_np.intp,
            ),
            levels,
        )
        return self._batch

    def _execute_rows(self, durations, lags, collect_row, collect_column):
        """Shared K-binding sweep behind :meth:`execute_many` and
        :meth:`execute_many_summary`.

        ``collect_row(start, end)`` consumes one scalar-path sweep
        (plain lists in node-id space); ``collect_column(start, end)``
        consumes one row-contiguous NumPy column pair of the batched
        sweep.  Both receive exactly the values the corresponding
        single-binding :meth:`replay` would have produced.
        """
        rows = durations if isinstance(durations, list) else list(durations)
        k_rows = len(rows)
        if lags is not None:
            lag_rows = lags if isinstance(lags, list) else list(lags)
            if len(lag_rows) != k_rows:
                raise ValueError(
                    f"{k_rows} duration rows but {len(lag_rows)} lag rows"
                )
        if k_rows == 0:
            return []
        num_edges = len(self.succ_node)
        if _np is None or k_rows == 1:
            results = []
            for k in range(k_rows):
                dur = list(rows[k])
                if len(dur) != self.num_nodes:
                    raise ValueError(
                        f"duration row {k} has {len(dur)} entries, "
                        f"expected {self.num_nodes}"
                    )
                lag = self.succ_lag if lags is None else list(lag_rows[k])
                if len(lag) != num_edges:
                    raise ValueError(
                        f"lag row {k} has {len(lag)} entries, "
                        f"expected {num_edges}"
                    )
                state = self._levelstate
                if k_rows == 1 and state is not None and state.pristine:
                    # K=1 with a resident pristine checkpoint: diff the
                    # row against the baseline and replay only the cone
                    # instead of re-sweeping the whole topology.  The
                    # collectors see the exact merged (ready, end)
                    # arrays a full sweep would produce.  Dense diffs
                    # (or cones the walk finds to be dense) fall
                    # through to the plain sweep below — the adaptive
                    # policy of :meth:`execute_delta`.
                    perturbation = Perturbation(
                        durations=_row_diff(state.dur, dur),
                        lags=() if lags is None else _row_diff(state.lag, lag),
                    )
                    budget = self._delta_budget(perturbation.support)
                    changed = (
                        None
                        if budget is None
                        else self._delta_relax(
                            state, perturbation, budget=budget
                        )
                    )
                    if changed is not None:
                        result = collect_row(state.ready, state.end)
                        state.rollback()
                        results.append(result)
                        continue
                ready, end = self._sweep(dur, lag)
                results.append(collect_row(ready, end))
            return results

        dur = _np.asarray(rows, dtype=_np.float64)
        if dur.shape != (k_rows, self.num_nodes):
            raise ValueError(
                f"durations must be K×{self.num_nodes}, got {dur.shape}"
            )
        dur = _np.ascontiguousarray(dur.T)  # (nodes, K): level rows contiguous
        # One extra all-zero row holds the device-chain edges' lag.
        lag_cols = _np.zeros((num_edges + 1, k_rows), dtype=_np.float64)
        if lags is None:
            lag_cols[:num_edges, :] = _np.asarray(
                self.succ_lag, dtype=_np.float64
            )[:, None]
        else:
            lag_block = _np.asarray(lag_rows, dtype=_np.float64)
            if lag_block.shape != (k_rows, num_edges):
                raise ValueError(
                    f"lags must be K×{num_edges}, got {lag_block.shape}"
                )
            lag_cols[:num_edges, :] = lag_block.T
        perm, inverse_perm, structural_zero_edges, levels = self._batch_plan()
        # Zero-lag level skips are structural; verify the bound lags
        # honour them (binding_rows/binding_matrix always do — only
        # hand-built lag matrices can put weight on a non-P2P edge).
        lag_skip_valid = (
            structural_zero_edges.size == 0
            or not lag_cols[structural_zero_edges].any()
        )
        dur = dur[perm]
        ready = _np.zeros((self.num_nodes, k_rows), dtype=_np.float64)
        end = _np.empty((self.num_nodes, k_rows), dtype=_np.float64)
        maximum = _np.maximum
        reduceat = _np.maximum.reduceat
        for start, stop, src_pos, edge_idx, lag_free, seg_starts, dst_unique in levels:
            finished = ready[start:stop] + dur[start:stop]
            end[start:stop] = finished
            if edge_idx.size == 0:
                continue
            candidate = finished if src_pos is None else finished[src_pos]
            if not (lag_free and lag_skip_valid):
                candidate = candidate + lag_cols[edge_idx]
            if seg_starts is not None:
                candidate = reduceat(candidate, seg_starts, axis=0)
            ready[dst_unique] = maximum(ready[dst_unique], candidate)
        # Back to node-id space (one gather for all K bindings), then
        # row-contiguous per binding so the collect gathers are slices.
        ready = _np.ascontiguousarray(ready[inverse_perm].T)
        end = _np.ascontiguousarray(end[inverse_perm].T)
        return [collect_column(ready[k], end[k]) for k in range(k_rows)]

    def execute_many(
        self,
        durations,
        lags=None,
    ) -> list[ExecutionResult]:
        """In-order execution of K bindings over one shared topology.

        ``durations`` is a K×num_nodes matrix (any sequence-of-rows or
        NumPy array); row k holds the node durations of binding k, as
        produced by :meth:`binding_rows`.  ``lags`` is an optional
        K×num_edges matrix of per-edge transfer lags; when omitted,
        every binding reuses this graph's currently bound lags.

        With NumPy available the longest-path relaxation runs once over
        the shared precomputed topological order with all K bindings
        relaxed per vectorized step; otherwise a pure-Python loop sweeps
        each row.  Both paths are bit-identical to calling
        :meth:`replay` per binding — max-relaxations commute and the
        per-element float operations are the same IEEE ops in the same
        order.
        """
        return self._execute_rows(
            durations, lags, self._collect, self._collect_column
        )

    def execute_many_summary(
        self,
        durations,
        lags=None,
    ) -> list[ExecutionSummary]:
        """:meth:`execute_many`, collecting only the summary observables.

        Runs the identical batched sweep but materializes one
        :class:`ExecutionSummary` (iteration time + per-device busy
        seconds) per binding instead of a full per-pass timing map.
        For Monte Carlo sample counts the timing maps dominate
        collection cost and memory, and robustness statistics never
        read them; the summary values are bit-identical to the full
        results' (:mod:`repro.scenarios.perturb` relies on this).
        """
        return self._execute_rows(
            durations, lags, self._summarize, self._summarize_column
        )

    def _summarize(self, start, end) -> ExecutionSummary:
        """Summary observables of one sweep, matching :meth:`_collect`'s
        float accumulation order exactly (stream-order busy sums)."""
        busy: list[float] = []
        for nodes in self.device_nodes:
            total = 0.0
            for i in nodes:
                total += end[i] - start[i]
            busy.append(total)
        return ExecutionSummary(
            iteration_time=max(end) - min(start),
            device_busy=tuple(busy),
        )

    def _summarize_column(self, start_col, end_col) -> ExecutionSummary:
        """:meth:`_summarize` for one NumPy column of the batched sweep.

        Converting to plain lists first makes the busy sums accumulate
        with the same scalar float adds (and order) as :meth:`_collect`
        / :meth:`_collect_column`; max/min are order-independent exact
        ops, so the delegated iteration time equals
        ``float(end_col.max() - start_col.min())`` bit for bit.
        """
        return self._summarize(start_col.tolist(), end_col.tolist())

    def _collect_plan(self) -> tuple:
        """Gather plan for :meth:`_collect_column`: the flattened stream
        order (``None`` when it is the identity over pass node ids, the
        straight-from-compile case), its :class:`Pass` objects, and
        per-device stream lengths."""
        if self._cplan is not None:
            return self._cplan
        flat_order: list[int] = []
        counts: list[int] = []
        for nodes in self.device_nodes:
            flat_order.extend(nodes)
            counts.append(len(nodes))
        node_pass = self.node_pass
        flat_passes = [node_pass[i] for i in flat_order]
        identity = flat_order == list(range(self.num_passes))
        self._cplan = (
            None if identity
            else (
                _np.asarray(flat_order, dtype=_np.intp)
                if _np is not None else flat_order
            ),
            flat_passes,
            counts,
        )
        return self._cplan

    def _collect_column(self, start_col, end_col) -> ExecutionResult:
        """:meth:`_collect` for one NumPy column of the batched sweep.

        Same observables, bit for bit: the per-device busy sums
        accumulate in the same stream order with the same float adds,
        and the gathered start/end values are exactly the sweep's.
        """
        flat_order, flat_passes, counts = self._collect_plan()
        if flat_order is None:
            starts = start_col[: self.num_passes].tolist()
            ends = end_col[: self.num_passes].tolist()
        else:
            starts = start_col.take(flat_order).tolist()
            ends = end_col.take(flat_order).tolist()
        pass_times = dict(zip(flat_passes, zip(starts, ends)))
        busy: list[float] = []
        position = 0
        for count in counts:
            total = 0.0
            stop = position + count
            for s, e in zip(starts[position:stop], ends[position:stop]):
                total += e - s
            busy.append(total)
            position = stop
        num_passes = self.num_passes
        coll_starts = start_col[num_passes:].tolist()
        coll_ends = end_col[num_passes:].tolist()
        collective_times = {
            key: (coll_starts[j], coll_ends[j])
            for j, key in enumerate(self.coll_keys)
        }
        iteration_time = float(end_col.max() - start_col.min())
        return ExecutionResult(
            schedule=self.schedule,
            pass_times=pass_times,
            collective_times=collective_times,
            iteration_time=iteration_time,
            device_busy=busy,
        )

    def execute_bindings(self, runtimes) -> list[ExecutionResult]:
        """Price and execute this topology under each runtime in one batch.

        Convenience wrapper: :meth:`binding_matrix` (stream-level
        pricing), then one :meth:`execute_many` call.  Equivalent to
        (but much faster than) ``[self.rebind(r).execute() for r in
        runtimes]``.  Runtimes must price passes per stream — i.e.
        ``pass_duration`` may not depend on the microbatch index, the
        contract :class:`~repro.sim.runtime.RuntimeModel` follows.
        """
        duration_rows, lag_rows = self.binding_matrix(runtimes)
        return self.execute_many(duration_rows, lag_rows)

    def execute(self) -> ExecutionResult:
        """In-order execution result; cached across calls.

        The refinement flow shares this single run between the
        zero-bubble memory-cap pre-pass, the "before" side of the
        refinement check, and the metrics collection that used to be a
        separate execution.
        """
        if self._inorder is None:
            self.replay()
        return self._inorder

    def _collect(self, start: list[float], end: list[float]) -> ExecutionResult:
        schedule = self.schedule
        pass_times: dict[Pass, tuple[float, float]] = {}
        busy = [0.0] * schedule.num_devices
        node_pass = self.node_pass
        # Walk passes in the *current* stream order (which differs from
        # node-id order after with_orders) so the busy sums accumulate in
        # exactly the reference executor's order — float addition is not
        # associative, and the equivalence suite compares bit-for-bit.
        for device, nodes in enumerate(self.device_nodes):
            for i in nodes:
                s, e = start[i], end[i]
                pass_times[node_pass[i]] = (s, e)
                busy[device] += e - s
        num_passes = self.num_passes
        collective_times = {
            key: (start[num_passes + j], end[num_passes + j])
            for j, key in enumerate(self.coll_keys)
        }
        iteration_time = max(end) - min(start)
        return ExecutionResult(
            schedule=schedule,
            pass_times=pass_times,
            collective_times=collective_times,
            iteration_time=iteration_time,
            device_busy=busy,
        )

    # ------------------------------------------------------------------
    # Incremental (delta) replay
    # ------------------------------------------------------------------

    def _reverse_plan(self) -> tuple:
        """Predecessor view of the topology, for cone re-relaxation.

        Returns ``(pred_off, pred_src, pred_edge, chain_prev,
        topo_pos)``: a CSR over *incoming* explicit edges (``pred_edge``
        indexes the shared lag array), the implicit device-chain
        predecessor per pass node (``-1`` when none), and each node's
        position in the cached topological order.  Structural — shared
        by :meth:`rebind` alongside the forward plans.
        """
        if self._rev is not None:
            return self._rev
        topo, chain_next = self._topology()
        n = self.num_nodes
        off, nxt = self.succ_off, self.succ_node
        counts = [0] * n
        for j in nxt:
            counts[j] += 1
        pred_off = [0] * (n + 1)
        for i in range(n):
            pred_off[i + 1] = pred_off[i] + counts[i]
        cursor = list(pred_off[:n])
        num_edges = len(nxt)
        pred_src = [0] * num_edges
        pred_edge = [0] * num_edges
        for i in range(n):
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                slot = cursor[j]
                cursor[j] = slot + 1
                pred_src[slot] = i
                pred_edge[slot] = k
        chain_prev = [-1] * n
        for i, j in enumerate(chain_next):
            if j >= 0:
                chain_prev[j] = i
        topo_pos = [0] * n
        for position, node in enumerate(topo):
            topo_pos[node] = position
        self._rev = (pred_off, pred_src, pred_edge, chain_prev, topo_pos)
        return self._rev

    def checkpoint(self) -> LevelState:
        """Materialize (or return) the resident :class:`LevelState`.

        Runs one baseline sweep over the currently bound durations and
        lags, then snapshots everything :meth:`execute_delta` needs:
        working copies of the binding rows, the per-node ready/end
        solution, and the per-device busy sums in collection order.
        Cached until the binding changes (:meth:`rebind` / a fresh
        :meth:`_bind` drop it).  Raises :class:`DeadlockError` exactly
        when :meth:`execute` would — deadlocks are structural, so a
        graph that checkpointed successfully cannot deadlock under any
        delta.
        """
        if self._levelstate is not None:
            return self._levelstate
        ready, end = self._sweep(self.durations, self.succ_lag)
        busy: list[float] = []
        for nodes in self.device_nodes:
            total = 0.0
            for i in nodes:
                total += end[i] - ready[i]
            busy.append(total)
        self._levelstate = LevelState(
            dur=list(self.durations),
            lag=list(self.succ_lag),
            ready=ready,
            end=end,
            busy=tuple(busy),
        )
        return self._levelstate

    def device_perturbation(self, device: int, factor: float) -> Perturbation:
        """Scale every pass of ``device`` by ``factor`` (a straggler).

        Priced against the graph's bound durations — the checkpoint
        baseline — so repeated what-ifs with different factors all
        describe absolute single-device rebindings, not compounding
        ones.
        """
        if not 0 <= device < len(self.device_nodes):
            raise ValueError(
                f"device must be in [0, {len(self.device_nodes)}), got {device}"
            )
        dur = self.durations
        return Perturbation(
            durations=tuple(
                (i, factor * dur[i]) for i in self.device_nodes[device]
            )
        )

    def _delta_budget(self, support: int) -> int | None:
        """Walk budget (processed nodes) for one adaptive delta query.

        ``None`` means the support alone predicts a dense cone — on a
        tight pipeline a perturbation touching more than a sliver of
        the nodes shifts nearly everything downstream, and the scalar
        sweep's per-node constant is several times smaller than the
        cone walk's — so the caller should go straight to a full
        resweep of the perturbed rows.  Otherwise the walk runs, but
        gives up (and the caller resweeps) once the cone it has
        actually uncovered stops being narrow.
        """
        if support > max(32, self.num_nodes // 16):
            return None
        return max(64, self.num_nodes // 8)

    def _delta_resweep(
        self, state: LevelState, perturbation: Perturbation
    ) -> tuple[list[float], list[float]]:
        """Full scalar sweep of ``state``'s rows under ``perturbation``.

        The dense-cone escape hatch: builds the perturbed duration/lag
        rows off to the side (``state`` is not touched) and re-relaxes
        the whole topology with :meth:`_sweep` — the definitionally
        bit-identical path.
        """
        dur = list(state.dur)
        for i, value in perturbation.durations:
            dur[i] = value
        lag = state.lag
        if perturbation.lags:
            lag = list(lag)
            for k, value in perturbation.lags:
                lag[k] = value
        return self._sweep(dur, lag)

    def _delta_relax(
        self,
        state: LevelState,
        perturbation: Perturbation,
        budget: int | None = None,
    ) -> list[int] | None:
        """Re-relax the affected successor cone of ``perturbation``.

        Applies the perturbed durations/lags to ``state`` (undo-logged),
        then walks only dirty nodes in topological-position order: a
        node whose ready time is stale is re-maxed over **all** its
        predecessors (max-relaxation is an exact, order-independent
        reduction, so this reproduces the full sweep's float bit for
        bit), and propagation stops at nodes whose ``(ready, end)``
        did not change — the cone limit.  Returns the node ids whose
        start or end moved, for the incremental collectors.

        With a ``budget``, the walk aborts once it has processed that
        many nodes: every edit made so far is unwound (``state`` is
        exactly as on entry) and ``None`` is returned, signalling the
        caller that the cone is dense and a full resweep is cheaper.
        """
        dur, lag = state.dur, state.lag
        ready, end = state.ready, state.end
        log = state._log
        mark = len(log)
        pred_off, pred_src, pred_edge, chain_prev, topo_pos = self._reverse_plan()
        topo, chain_next = self._topology()
        off, nxt = self.succ_off, self.succ_node
        num_passes = self.num_passes

        heap: list[int] = []
        pending: dict[int, bool] = {}  # node -> ready needs recompute

        def enqueue(node: int, ready_dirty: bool) -> None:
            flag = pending.get(node)
            if flag is None:
                pending[node] = ready_dirty
                heapq.heappush(heap, topo_pos[node])
            elif ready_dirty and not flag:
                pending[node] = True

        for i, value in perturbation.durations:
            if value != dur[i]:
                log.append((dur, i, dur[i]))
                dur[i] = value
                enqueue(i, False)
        for k, value in perturbation.lags:
            if value != lag[k]:
                log.append((lag, k, lag[k]))
                lag[k] = value
                enqueue(nxt[k], True)

        changed: list[int] = []
        processed = 0
        while heap:
            if budget is not None:
                processed += 1
                if processed > budget:
                    while len(log) > mark:
                        array, index, value = log.pop()
                        array[index] = value
                    return None
            i = topo[heapq.heappop(heap)]
            ready_dirty = pending.pop(i)
            r = ready[i]
            if ready_dirty:
                r = 0.0
                for k in range(pred_off[i], pred_off[i + 1]):
                    v = end[pred_src[k]] + lag[pred_edge[k]]
                    if v > r:
                        r = v
                cp = chain_prev[i]
                if cp >= 0:
                    v = end[cp]
                    if v > r:
                        r = v
            e = r + dur[i]
            moved = False
            if r != ready[i]:
                log.append((ready, i, ready[i]))
                ready[i] = r
                moved = True
            if e != end[i]:
                log.append((end, i, end[i]))
                end[i] = e
                moved = True
                for k in range(off[i], off[i + 1]):
                    enqueue(nxt[k], True)
                if i < num_passes:
                    j = chain_next[i]
                    if j >= 0:
                        enqueue(j, True)
            if moved:
                changed.append(i)
        return changed

    def execute_delta(
        self, perturbation: Perturbation, *, rollback: bool = True
    ) -> ExecutionResult:
        """In-order execution under a sparse perturbation, incrementally.

        Equivalent — bit for bit, per-pass timing maps included — to
        rebinding the perturbed durations/lags and calling
        :meth:`execute` fresh, but only the perturbation's successor
        cone is re-relaxed from the resident checkpoint
        (:meth:`checkpoint` is created on demand).  With ``rollback``
        (the default) the state returns to the baseline before this
        method returns, so every call prices an independent what-if;
        ``rollback=False`` leaves the delta applied, letting deltas
        compose until :meth:`LevelState.rollback`.

        The query is *adaptive*: when the perturbation's support (or
        the cone the walk uncovers) predicts that most of the graph
        shifts — a whole-device straggler on a tight pipeline dirties
        nearly every downstream node — the incremental walk is
        abandoned for one full scalar resweep of the perturbed rows,
        whose per-node constant is several times smaller.  Either path
        produces the same floats; ``rollback=False`` always takes the
        exact walk so composed deltas stay incremental.
        """
        state = self.checkpoint()
        if rollback:
            budget = self._delta_budget(perturbation.support)
            changed = (
                None
                if budget is None
                else self._delta_relax(state, perturbation, budget=budget)
            )
            if changed is None:
                ready, end = self._delta_resweep(state, perturbation)
                state.rollback()
                return self._collect(ready, end)
            result = self._collect(state.ready, state.end)
            state.rollback()
            return result
        self._delta_relax(state, perturbation)
        return self._collect(state.ready, state.end)

    def execute_delta_summary(
        self, perturbation: Perturbation, *, rollback: bool = True
    ) -> ExecutionSummary:
        """:meth:`execute_delta`, collecting only summary observables.

        The incremental collector: devices none of whose passes moved
        keep their checkpointed busy sums (the same floats summed in
        the same order are the same float), only dirty devices
        re-accumulate, and the iteration time re-reduces with the same
        exact ``max``/``min`` as :meth:`_summarize`.  This is the
        sub-millisecond what-if path — cost scales with the
        perturbation's cone when the cone is narrow, and degrades to
        one full resweep (never the slower cone walk) when it is not;
        see :meth:`execute_delta` for the adaptive policy.
        """
        state = self.checkpoint()
        if rollback:
            budget = self._delta_budget(perturbation.support)
            changed = (
                None
                if budget is None
                else self._delta_relax(state, perturbation, budget=budget)
            )
            if changed is None:
                ready, end = self._delta_resweep(state, perturbation)
                state.rollback()
                return self._summarize(ready, end)
        else:
            changed = self._delta_relax(state, perturbation)
        ready, end = state.ready, state.end
        num_passes = self.num_passes
        node_device = self.node_device
        dirty_devices = {node_device[i] for i in changed if i < num_passes}
        busy = list(state.busy)
        for device in dirty_devices:
            total = 0.0
            for i in self.device_nodes[device]:
                total += end[i] - ready[i]
            busy[device] = total
        summary = ExecutionSummary(
            iteration_time=max(end) - min(ready),
            device_busy=tuple(busy),
        )
        if rollback:
            state.rollback()
        return summary

    # ------------------------------------------------------------------
    # Work-conserving (dataflow) execution
    # ------------------------------------------------------------------

    def execute_dataflow(
        self, lookahead: int = 4, mode: str = "strict"
    ) -> ExecutionResult:
        """Work-conserving simulation on the compiled arrays.

        Semantics match
        :func:`repro.sim.reference_executor.reference_execute_schedule_dataflow`
        exactly (same dispatch rules, same collective serialization,
        same tie-breaking); the difference is that after each event
        only devices whose dependency state or free time changed are
        re-scanned, instead of the reference's O(devices) sweep per
        completion.
        """
        if lookahead < 1:
            raise ValueError(f"lookahead must be ≥ 1, got {lookahead}")
        if mode not in ("strict", "zero-bubble"):
            raise ValueError(
                f"mode must be 'strict' or 'zero-bubble', got {mode!r}"
            )
        schedule = self.schedule
        num_devices = schedule.num_devices
        num_passes = self.num_passes
        n = self.num_nodes
        dur = self.durations
        off, nxt, lag = self.succ_off, self.succ_node, self.succ_lag
        node_device = self.node_device
        node_type = self.node_type
        node_chunk = self.node_chunk
        node_flexible = self.node_flexible
        strict = mode == "strict"

        f_caps: list[dict[int, int]] | None = None
        release_type = (
            PassType.W if schedule.has_weight_passes else PassType.B
        )
        if mode == "zero-bubble":
            f_caps = _live_f_caps(schedule, self.execute())
        live_f: list[dict[int, int]] = [
            defaultdict(int) for _ in range(num_devices)
        ]

        num_deps = list(self.base_indeg)
        dep_ready = [0.0] * n
        start_arr = [0.0] * n
        end_arr = [0.0] * n
        seen = [False] * n
        pending: list[deque[int]] = [deque(nodes) for nodes in self.device_nodes]
        device_free = [0.0] * num_devices
        comm_free = [0.0] * self.num_comms

        events: list[tuple[float, int, int]] = []
        counter = 0
        # Devices become eligible again the moment simulated time reaches
        # their busy-until mark — which can happen at an event of *another*
        # node sharing that timestamp, not just at their own completion.
        # A min-heap of (free_time, device) reproduces the reference
        # executor's every-event sweep exactly while only re-scanning
        # devices whose state could actually have changed.
        free_heap: list[tuple[float, int]] = []

        def finish_at(i: int, start: float) -> None:
            nonlocal counter
            e = start + dur[i]
            start_arr[i] = start
            end_arr[i] = e
            seen[i] = True
            counter += 1
            heapq.heappush(events, (e, counter, i))

        def launch_collective(j: int, now: float) -> None:
            comm = self.coll_comm[j - num_passes]
            start = max(dep_ready[j], comm_free[comm], now)
            comm_free[comm] = start + dur[j]
            finish_at(j, start)

        def try_dispatch(device: int, now: float) -> None:
            if device_free[device] > now:
                return
            queue = pending[device]
            window = lookahead if lookahead < len(queue) else len(queue)
            for offset in range(window):
                i = queue[offset]
                if strict:
                    if offset > 0 and not node_flexible[i]:
                        continue
                elif node_type[i] is PassType.F and f_caps is not None:
                    cap = f_caps[device].get(node_chunk[i], 0)
                    if live_f[device][node_chunk[i]] >= cap:
                        continue
                if num_deps[i] == 0:
                    start = max(now, dep_ready[i], device_free[device])
                    device_free[device] = start + dur[i]
                    heapq.heappush(free_heap, (device_free[device], device))
                    del queue[offset]
                    if not strict:
                        if node_type[i] is PassType.F:
                            live_f[device][node_chunk[i]] += 1
                        elif node_type[i] is release_type:
                            live_f[device][node_chunk[i]] -= 1
                    finish_at(i, start)
                    return

        # Seed: collectives with no dependencies, then every device.
        for j in range(num_passes, n):
            if num_deps[j] == 0:
                launch_collective(j, 0.0)
        for device in range(num_devices):
            try_dispatch(device, 0.0)

        executed = 0
        while events:
            now, _, i = heapq.heappop(events)
            executed += 1
            e = end_arr[i]
            dirty: set[int] = set()
            for k in range(off[i], off[i + 1]):
                j = nxt[k]
                r = e + lag[k]
                if r > dep_ready[j]:
                    dep_ready[j] = r
                num_deps[j] -= 1
                if num_deps[j] == 0:
                    if j >= num_passes:
                        launch_collective(j, now)
                    else:
                        dirty.add(node_device[j])
            while free_heap and free_heap[0][0] <= now:
                dirty.add(heapq.heappop(free_heap)[1])
            for device in sorted(dirty):
                try_dispatch(device, now)
        if executed != n:
            blocked = [self._describe(i) for i in range(n) if not seen[i]]
            raise DeadlockError(
                f"schedule '{self.schedule.name}' deadlocked in dataflow mode; "
                f"{len(blocked)} nodes blocked, e.g. {blocked[:5]}"
            )
        return self._collect(start_arr, end_arr)

    # ------------------------------------------------------------------
    # Refinement (shared compiled graph across all phases)
    # ------------------------------------------------------------------

    def refine(
        self, lookahead: int = 64, mode: str = "strict"
    ) -> tuple[Schedule, ExecutionResult, CompiledGraph]:
        """Freeze the dataflow order; return the better schedule + result.

        Returns ``(schedule, in_order_result, graph)`` where ``result``
        is the in-order execution of the *returned* schedule and
        ``graph`` is its compiled form — so callers (``run_method``,
        the planner's top-k loop) never re-execute or re-lower.  One
        compile now covers the zero-bubble pre-pass, the dataflow run
        and both sides of the before/after check; only the reordered
        device chains are re-threaded (:meth:`with_orders`).
        """
        flow = self.execute_dataflow(lookahead=lookahead, mode=mode)
        new_orders = [
            [p for p, _, _ in flow.passes_on(device)]
            for device in range(self.schedule.num_devices)
        ]
        refined = dataclasses.replace(self.schedule, device_orders=new_orders)
        refined.validate()
        refined_graph = self.with_orders(new_orders, refined)
        before = self.execute()
        after = refined_graph.execute()
        if after.iteration_time <= before.iteration_time:
            return refined, after, refined_graph
        return self.schedule, before, self


def compile_schedule(schedule: Schedule, runtime) -> CompiledGraph:
    """Lower ``(schedule, runtime)`` into a :class:`CompiledGraph`.

    Mirrors the edge construction of the reference executor's
    ``_build_graph`` exactly (stage P2P chains, collective barriers
    serialized per communicator, input-layer and interlaced couplings),
    but emits integer ids and flat arrays instead of dict-of-tuple
    graphs.  Device-chain edges are *implicit* (consecutive entries of
    ``device_nodes``), which is what lets :meth:`CompiledGraph.with_orders`
    reorder a schedule without touching the CSR.

    ``runtime`` must price passes per ``(type, device, chunk)`` stream —
    ``pass_duration`` may not depend on the microbatch index.  This is
    the :class:`~repro.sim.runtime.RuntimeModel` contract (its memo key
    is exactly that stream); binding calls ``pass_duration`` once per
    distinct stream and broadcasts the value to every microbatch.  A
    microbatch-dependent runtime should use the reference engine.
    """
    layout = schedule.layout
    m = schedule.num_microbatches

    graph = CompiledGraph()
    graph.schedule = schedule

    node_pass: list[Pass] = []
    node_device: list[int] = []
    device_nodes: list[list[int]] = []
    pass_id: dict[Pass, int] = {}
    for device, order in enumerate(schedule.device_orders):
        ids = []
        for p in order:
            ids.append(len(node_pass))
            pass_id[p] = len(node_pass)
            node_pass.append(p)
            node_device.append(device)
        device_nodes.append(ids)
    num_passes = len(node_pass)

    coll_keys: list[tuple[CollectiveKind, int]] = []
    coll_comm: list[int] = []
    coll_override: list[float | None] = []
    coll_id: dict[tuple[str, int], int] = {}
    comm_index: dict[str, int] = {}
    edges: list[tuple[int, int, tuple[int, int] | None]] = []

    # (type, device, chunk) -> node id per microbatch.  Validation
    # guarantees one pass per stream per microbatch, so edge lowering can
    # index streams directly instead of hashing a fresh Pass per lookup.
    streams: dict[tuple[PassType, int, int], list[int]] = {}
    for i, p in enumerate(node_pass):
        streams.setdefault((p.type, p.device, p.chunk), [-1] * m)[p.microbatch] = i

    def node_of(type_: PassType, mb: int, device: int, chunk: int = 0) -> int:
        node = streams[(type_, device, chunk)][mb]
        if node < 0:
            # A hole in an otherwise-present stream: keep the reference
            # executor's behaviour of rejecting malformed schedules
            # instead of silently wiring the edge to the last node.
            raise KeyError(
                f"edge references unknown node: {Pass(type_, mb, device, chunk)}"
            )
        return node

    def add_collective_chain(
        kind: CollectiveKind, duration: float | None = None
    ) -> None:
        comm = comm_index.setdefault(kind.value, len(comm_index))
        for mb in range(m):
            key = (kind.value, mb)
            if key in coll_id:
                raise ValueError(f"duplicate node {('coll',) + key}")
            node = num_passes + len(coll_keys)
            coll_id[key] = node
            coll_keys.append((kind, mb))
            coll_comm.append(comm)
            coll_override.append(duration)
            if mb > 0:
                edges.append((coll_id[(kind.value, mb - 1)], node, None))

    # Transformer stage chains (P2P activation/gradient transfers).
    stages = layout.num_stages
    holders = [layout.holder_of_stage(s) for s in range(stages)]
    for mb in range(m):
        for s in range(1, stages):
            src_dev, src_chunk = holders[s - 1]
            dst_dev, dst_chunk = holders[s]
            pair = (src_dev, dst_dev)
            edges.append(
                (
                    node_of(PassType.F, mb, src_dev, src_chunk),
                    node_of(PassType.F, mb, dst_dev, dst_chunk),
                    pair,
                )
            )
            edges.append(
                (
                    node_of(PassType.B, mb, dst_dev, dst_chunk),
                    node_of(PassType.B, mb, src_dev, src_chunk),
                    pair,
                )
            )
        for s in range(stages):
            dev, chunk = holders[s]
            edges.append(
                (
                    node_of(PassType.F, mb, dev, chunk),
                    node_of(PassType.B, mb, dev, chunk),
                    None,
                )
            )
            if schedule.has_weight_passes:
                edges.append(
                    (
                        node_of(PassType.B, mb, dev, chunk),
                        node_of(PassType.W, mb, dev, chunk),
                        None,
                    )
                )

    last_dev, last_chunk = holders[-1]
    first_dev, first_chunk = holders[0]
    devices = range(layout.num_devices)

    # Collectives for the partitioned vocabulary layers.
    if schedule.vocab_algorithm is not None:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS)
        if schedule.vocab_algorithm == 1:
            add_collective_chain(CollectiveKind.C2_GRAD_REDUCE)
        for mb in range(m):
            c0 = coll_id[(CollectiveKind.C0_BROADCAST.value, mb)]
            c1 = coll_id[(CollectiveKind.C1_STATS.value, mb)]
            edges.append((node_of(PassType.F, mb, last_dev, last_chunk), c0, None))
            for d in devices:
                edges.append((c0, node_of(PassType.S, mb, d), None))
                edges.append((node_of(PassType.S, mb, d), c1, None))
                edges.append((c1, node_of(PassType.T, mb, d), None))
            last_b = node_of(PassType.B, mb, last_dev, last_chunk)
            if schedule.vocab_algorithm == 1:
                c2 = coll_id[(CollectiveKind.C2_GRAD_REDUCE.value, mb)]
                for d in devices:
                    edges.append((node_of(PassType.T, mb, d), c2, None))
                edges.append((c2, last_b, None))
            else:
                edges.append((c1, last_b, None))

    # Input-layer passes (Appendix C).
    if schedule.has_input_passes:
        add_collective_chain(CollectiveKind.INPUT_ALLREDUCE)
        add_collective_chain(CollectiveKind.INPUT_BROADCAST)
        for mb in range(m):
            iar = coll_id[(CollectiveKind.INPUT_ALLREDUCE.value, mb)]
            ibc = coll_id[(CollectiveKind.INPUT_BROADCAST.value, mb)]
            for d in devices:
                edges.append((node_of(PassType.IF, mb, d), iar, None))
                edges.append((ibc, node_of(PassType.IB, mb, d), None))
            edges.append((iar, node_of(PassType.F, mb, first_dev, first_chunk), None))
            edges.append((node_of(PassType.B, mb, first_dev, first_chunk), ibc, None))

    # Interlaced synchronous segments (barriers via 0-duration colls).
    if schedule.interlaced:
        add_collective_chain(CollectiveKind.C0_BROADCAST)
        add_collective_chain(CollectiveKind.C1_STATS, duration=0.0)
        add_collective_chain(CollectiveKind.C2_GRAD_REDUCE, duration=0.0)
        for mb in range(m):
            c0 = coll_id[(CollectiveKind.C0_BROADCAST.value, mb)]
            c1 = coll_id[(CollectiveKind.C1_STATS.value, mb)]
            c2 = coll_id[(CollectiveKind.C2_GRAD_REDUCE.value, mb)]
            edges.append((node_of(PassType.F, mb, last_dev, last_chunk), c0, None))
            for d in devices:
                edges.append((c0, node_of(PassType.VF, mb, d), None))
                edges.append((node_of(PassType.VF, mb, d), c1, None))
                edges.append((c1, node_of(PassType.VB, mb, d), None))
                edges.append((node_of(PassType.VB, mb, d), c2, None))
            edges.append((c2, node_of(PassType.B, mb, last_dev, last_chunk), None))

    num_nodes = num_passes + len(coll_keys)

    # CSR over the base edges, preserving insertion order per source so
    # the dataflow mode relaxes successors exactly like the reference.
    counts = [0] * num_nodes
    for src, _, _ in edges:
        counts[src] += 1
    succ_off = [0] * (num_nodes + 1)
    for i in range(num_nodes):
        succ_off[i + 1] = succ_off[i] + counts[i]
    cursor = list(succ_off[:num_nodes])
    succ_node = [0] * len(edges)
    succ_p2p: list[tuple[int, int] | None] = [None] * len(edges)
    base_indeg = [0] * num_nodes
    for src, dst, pair in edges:
        k = cursor[src]
        cursor[src] = k + 1
        succ_node[k] = dst
        succ_p2p[k] = pair
        base_indeg[dst] += 1

    graph.num_passes = num_passes
    graph.num_nodes = num_nodes
    graph.node_pass = node_pass
    graph.node_device = node_device
    graph.node_type = [p.type for p in node_pass]
    graph.node_chunk = [p.chunk for p in node_pass]
    graph.node_flexible = [p.type in FLEXIBLE_TYPES for p in node_pass]
    graph.coll_keys = coll_keys
    graph.coll_comm = coll_comm
    graph.coll_override = coll_override
    graph.num_comms = len(comm_index)
    graph.succ_off = succ_off
    graph.succ_node = succ_node
    graph.succ_p2p = succ_p2p
    graph.base_indeg = base_indeg
    graph.device_nodes = device_nodes
    graph._pass_id = pass_id
    graph._bind(runtime)
    return graph
