"""Execution of pipeline schedules: in-order and dataflow modes.

The schedule's full dependency DAG — stage-to-stage P2P edges,
collective barrier nodes (serialized per communicator, as NCCL
requires), interlaced segment couplings — is simulated for one
training iteration two ways:

* :func:`execute_schedule` — **in-order**: each device executes its
  pass list strictly in order (the Megatron runtime model); start times
  come from longest-path evaluation.  An order whose dependencies are
  cyclic raises :class:`DeadlockError`.
* :func:`execute_schedule_dataflow` — **work-conserving**: devices may
  run the earliest *ready* pass within a bounded lookahead window of
  their list.  This emulates the order a profiling-aware scheduler
  would have produced (the paper's §6.1 step): the realized order can
  then be frozen back into a static schedule via
  :func:`refine_schedule_order` and re-executed in-order.

Two engines implement these semantics (selected by the
``REPRO_SIM_ENGINE`` environment variable, see
``docs/performance.md``):

* ``compiled`` (default) — :mod:`repro.sim.compiled` lowers the graph
  once into flat integer arrays and replays it; refinement shares one
  compiled graph across all of its internal executions;
* ``reference`` — :mod:`repro.sim.reference_executor`, the original
  dict-based implementation, kept frozen as the correctness oracle the
  equivalence suite and the perf trajectory benchmark compare against.

Both produce bit-identical :class:`ExecutionResult` values.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field

from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule
from repro.sim.runtime import RuntimeModel

NodeKey = tuple  # ("pass", device, index) | ("coll", kind, mb)

#: Environment variable selecting the execution engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

_ENGINES = ("compiled", "reference")


def simulation_engine() -> str:
    """The active execution engine: ``"compiled"`` or ``"reference"``.

    Read from ``REPRO_SIM_ENGINE`` on every call so tests and the
    trajectory benchmark can flip engines without reloading modules.
    """
    engine = os.environ.get(ENGINE_ENV, "compiled")
    if engine not in _ENGINES:
        raise ValueError(
            f"{ENGINE_ENV} must be one of {_ENGINES}, got {engine!r}"
        )
    return engine


class DeadlockError(RuntimeError):
    """The schedule's pass order has a dependency cycle."""


class BubbleFractions:
    """Bubble math over ``iteration_time`` + ``device_busy``.

    Shared by :class:`ExecutionResult` and the batched kernel's
    :class:`~repro.sim.compiled.ExecutionSummary`, so the two can never
    drift apart on the bubble definition.
    """

    iteration_time: float
    device_busy: "list[float] | tuple[float, ...]"

    def bubble_fraction(self, device: int) -> float:
        """Idle share of the iteration on ``device``."""
        if self.iteration_time <= 0:
            return 0.0
        return 1.0 - self.device_busy[device] / self.iteration_time

    def mean_bubble_fraction(self) -> float:
        """Bubble fraction averaged over all devices (the paper's ⌀)."""
        p = len(self.device_busy)
        return sum(self.bubble_fraction(d) for d in range(p)) / p


@dataclass
class ExecutionResult(BubbleFractions):
    """Timing outcome of one simulated training iteration."""

    schedule: Schedule
    pass_times: dict[Pass, tuple[float, float]]
    collective_times: dict[tuple[CollectiveKind, int], tuple[float, float]]
    iteration_time: float
    device_busy: list[float]
    #: Lazily built per-device (pass, start, end) rows sorted by start —
    #: one O(P log P) pass over ``pass_times`` serves every device
    #: instead of a full scan per ``passes_on`` call.
    _per_device: list[list[tuple[Pass, float, float]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def passes_on(self, device: int) -> list[tuple[Pass, float, float]]:
        """(pass, start, end) for one device, sorted by start time.

        The per-device rows are built once for *all* devices on the
        first call and indexed thereafter; ``refine_schedule_order``
        and the bubble analyses call this per device, which used to
        cost a full O(total-passes) scan each time.
        """
        if not 0 <= device < len(self.device_busy):
            return []
        if self._per_device is None:
            rows: list[list[tuple[Pass, float, float]]] = [
                [] for _ in range(len(self.device_busy))
            ]
            for p, (start, end) in self.pass_times.items():
                rows[p.device].append((p, start, end))
            for device_rows in rows:
                device_rows.sort(key=lambda r: (r[1], r[2]))
            self._per_device = rows
        return list(self._per_device[device])


#: Pass types a work-conserving runtime may pull ahead of a stalled
#: stream head: the paper designates exactly these as flexibly
#: schedulable (W can be "arbitrarily delayed", S/T go anywhere within
#: the repeating interval, input passes are "piggybacked").  F and B
#: keep their designed positions so activation-memory behaviour is
#: unchanged by refinement.
FLEXIBLE_TYPES = frozenset(
    {PassType.W, PassType.S, PassType.T, PassType.IF, PassType.IB}
)


def _live_f_caps(
    schedule: Schedule, result: ExecutionResult
) -> list[dict[int, int]]:
    """Per (device, chunk) peak of in-flight F activations, in-order.

    Used as a memory guard by the zero-bubble dataflow mode: F passes
    may run ahead of schedule only while the device's live count stays
    within what the static schedule itself would have held.
    """
    caps: list[dict[int, int]] = [dict() for _ in range(schedule.num_devices)]
    release_type = PassType.W if schedule.has_weight_passes else PassType.B
    for device in range(schedule.num_devices):
        events: list[tuple[float, int, int]] = []
        for p, (start, end) in result.pass_times.items():
            if p.device != device:
                continue
            if p.type is PassType.F:
                events.append((start, p.chunk, +1))
            elif p.type is release_type:
                events.append((end, p.chunk, -1))
        live: dict[int, int] = defaultdict(int)
        peak: dict[int, int] = defaultdict(int)
        for _, chunk, delta in sorted(events):
            live[chunk] += delta
            peak[chunk] = max(peak[chunk], live[chunk])
        caps[device] = dict(peak)
    return caps


def execute_schedule(schedule: Schedule, runtime: RuntimeModel) -> ExecutionResult:
    """Simulate one iteration with strict in-order device streams.

    Callers that execute the same schedule repeatedly (planner loops,
    sweeps) should compile once via
    :func:`repro.sim.compiled.compile_schedule` and call
    :meth:`~repro.sim.compiled.CompiledGraph.execute` themselves — this
    convenience wrapper lowers the graph afresh on every call.
    """
    if simulation_engine() == "reference":
        from repro.sim.reference_executor import reference_execute_schedule

        return reference_execute_schedule(schedule, runtime)
    from repro.sim.compiled import compile_schedule

    return compile_schedule(schedule, runtime).execute()


def execute_schedule_dataflow(
    schedule: Schedule,
    runtime: RuntimeModel,
    lookahead: int = 4,
    mode: str = "strict",
) -> ExecutionResult:
    """Work-conserving simulation with bounded in-order lookahead.

    Each device, when free, runs the first *ready* pass among: the head
    of its list (any type), or one of the next ``lookahead`` entries,
    subject to the mode:

    * ``"strict"`` — only flexible pass types (W/S/T/IF/IB) may be
      pulled ahead of the head; F and B keep their designed positions,
      preserving the schedule's activation-memory discipline exactly
      (used for the 1F1B Vocabulary Parallelism schedules, whose p+k
      peak counts are design claims);
    * ``"zero-bubble"`` — any ready pass may jump the queue, but F
      dispatches are capped so each (device, chunk)'s live activation
      count never exceeds what an in-order execution of the same
      schedule holds (appropriate for the V-Half family, whose design
      treats F/B placement as free but whose memory balance must
      survive refinement).

    Collectives fire as soon as their participants finish (still
    serialized per communicator kind).  ``lookahead=1`` reproduces
    in-order semantics.
    """
    if simulation_engine() == "reference":
        from repro.sim.reference_executor import (
            reference_execute_schedule_dataflow,
        )

        return reference_execute_schedule_dataflow(
            schedule, runtime, lookahead=lookahead, mode=mode
        )
    from repro.sim.compiled import compile_schedule

    return compile_schedule(schedule, runtime).execute_dataflow(
        lookahead=lookahead, mode=mode
    )


def refine_schedule_order(
    schedule: Schedule,
    runtime: RuntimeModel,
    lookahead: int = 64,
    mode: str = "strict",
) -> Schedule:
    """Freeze the dataflow execution's realized order into the schedule.

    This is the simulator-side counterpart of the paper's §6.1
    profiling step: where the nominal building-block order would stall
    an in-order runtime (because real pass durations shift the wave
    phases), the work-conserving run discovers the order a profiling-
    aware generator would emit.  The returned schedule validates
    structurally; if the greedy order happens to execute in-order
    *slower* than the original (greedy list scheduling carries no
    optimality guarantee), the original order is kept, so refinement
    is monotone.

    Under the compiled engine the schedule is lowered **once** and the
    zero-bubble pre-pass, the dataflow run, and both sides of the
    before/after check all share that one compiled graph (callers that
    also need the in-order result should use
    :meth:`repro.sim.compiled.CompiledGraph.refine` directly).
    """
    if simulation_engine() == "reference":
        from repro.sim.reference_executor import reference_refine_schedule_order

        return reference_refine_schedule_order(
            schedule, runtime, lookahead=lookahead, mode=mode
        )
    from repro.sim.compiled import compile_schedule

    refined, _, _ = compile_schedule(schedule, runtime).refine(
        lookahead=lookahead, mode=mode
    )
    return refined
