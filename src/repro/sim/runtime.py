"""Pass and collective durations from the analytic cost model.

Every pass type of :mod:`repro.scheduling.passes` maps to seconds by
decomposing it into matmuls (timed by the kernel-efficiency curve) and
memory-bound elementwise work (timed at HBM bandwidth), mirroring the
decomposition in the paper's §4:

* transformer F = QKV + attention + projection + MLP matmuls plus
  elementwise overhead; B is the usual 2× matmul volume (or 1× each
  for the B/W split when the schedule separates weight gradients);
* S/T passes follow Algorithms 1/2 literally — e.g. Algorithm 2's S
  pass pays the extra ``softmax'(Y)·W`` matmul, which is exactly what
  makes Vocab-2's Table 3 scaling factor trail Vocab-1's;
* baseline stages that host a full vocabulary layer fold its time into
  their F/B passes (this is the imbalance the whole paper is about);
* interlaced VF/VB segments include their *synchronous* all-reduce
  time, since those block the compute stream (Appendix B.2).

Collectives use the α–β ring model of
:class:`repro.collectives.timing.CommunicationModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.collectives.timing import CommunicationModel
from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.efficiency import KernelEfficiencyModel
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.scheduling.passes import CollectiveKind, Pass, PassType
from repro.scheduling.schedule import Schedule
from repro.vocab.partition import VocabPartition

#: bytes per element of bf16 activations / weights.
BF16 = 2.0
#: bytes per element of fp32 softmax / statistics buffers.
FP32 = 4.0


@dataclass(frozen=True)
class SimulationSetup:
    """Everything the simulator needs besides the schedule itself."""

    model: ModelConfig
    parallel: ParallelConfig
    hardware: HardwareModel = A100_SXM_80G
    efficiency: KernelEfficiencyModel = field(default_factory=KernelEfficiencyModel)
    #: Appendix B.2 ablation knob: when False, the interlaced pipeline's
    #: blocking all-reduces are dropped from the VF/VB durations.
    interlaced_sync_allreduce: bool = True
    #: Fixed per-pass host-side overhead (stream switches, Python-side
    #: scheduling — the paper's vocabulary layers are pure Python, §7).
    #: Dominates the sub-linear scaling of small vocabulary shards in
    #: Table 3.
    pass_overhead: float = 2.5e-4

    @cached_property
    def comm(self) -> CommunicationModel:
        return CommunicationModel(self.hardware, self.parallel)

    @cached_property
    def partition(self) -> VocabPartition:
        """Vocabulary sharding over pipeline devices (padding to 2p)."""
        return VocabPartition(self.model.vocab_size, self.parallel.pipeline_size)

    @property
    def tokens(self) -> int:
        """Tokens per microbatch ``n = b·s``."""
        return self.parallel.microbatch_size * self.model.seq_length

    @cached_property
    def padded_vocab_single(self) -> int:
        """Baseline vocabulary padding (Megatron pads to a multiple of 128)."""
        return -(-self.model.vocab_size // 128) * 128


class PassTimings:
    """Primitive pass timings, independent of any concrete schedule.

    This is the "profiling" step of the paper's §6.1: schedule
    generators consume these numbers to place S/T passes with realistic
    durations instead of assuming backward = 2 × forward.
    """

    def __init__(self, setup: SimulationSetup):
        self.setup = setup

    def transformer_forward_time(self, layers: float) -> float:
        """Forward seconds for ``layers`` transformer layers."""
        if layers == 0:
            return 0.0
        s = self.setup
        m = s.tokens
        h = s.model.hidden_size
        ffn = s.model.ffn_hidden_size or 4 * h
        heads = s.model.num_attention_heads
        head_dim = s.model.head_dim
        seq = s.model.seq_length
        batch_heads = s.parallel.microbatch_size * heads
        eff, hw = s.efficiency, s.hardware
        per_layer = (
            eff.matmul_time(m, h, 3 * h, hw)            # QKV projection
            + eff.matmul_time(batch_heads * seq, head_dim, seq, hw)   # scores
            + eff.matmul_time(batch_heads * seq, seq, head_dim, hw)   # context
            + eff.matmul_time(m, h, h, hw)              # attention output
            + eff.matmul_time(m, h, ffn, hw)            # MLP up
            + eff.matmul_time(m, ffn, h, hw)            # MLP down
            + eff.elementwise_time(6.0 * m * h * BF16, hw)  # norms/residual/act
        )
        return layers * per_layer + s.pass_overhead

    def transformer_backward_time(self, layers: float, split_weight: bool) -> float:
        """Backward seconds; activation-grad half only when ``split_weight``."""
        fwd = self.transformer_forward_time(layers)
        return fwd if split_weight else 2.0 * fwd

    def transformer_weight_time(self, layers: float) -> float:
        """Weight-gradient (W pass) seconds for ``layers`` layers."""
        return self.transformer_forward_time(layers)

    def full_output_forward_time(self) -> float:
        """Unpartitioned output layer forward (baseline last stage)."""
        s = self.setup
        n, h, v = s.tokens, s.model.hidden_size, s.padded_vocab_single
        return s.efficiency.matmul_time(n, h, v, s.hardware) + (
            s.efficiency.elementwise_time(3.0 * n * v * FP32, s.hardware)
        )

    def full_output_backward_time(self) -> float:
        """Unpartitioned output layer backward (∇X and ∇W matmuls)."""
        s = self.setup
        n, h, v = s.tokens, s.model.hidden_size, s.padded_vocab_single
        eff, hw = s.efficiency, s.hardware
        return (
            eff.matmul_time(n, v, h, hw)
            + eff.matmul_time(v, n, h, hw)
            + eff.elementwise_time(2.0 * n * v * FP32, hw)
        )

    def full_input_forward_time(self) -> float:
        """Unpartitioned input embedding forward.

        Six memory-bound passes over ``[n, h]``: table gather read +
        write, positional-embedding read + add, dropout mask + write.
        """
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        return s.efficiency.elementwise_time(6.0 * n * h * BF16, s.hardware)

    def full_input_backward_time(self) -> float:
        """Unpartitioned input embedding backward (scatter-add, fp32 grads)."""
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        return s.efficiency.elementwise_time(6.0 * n * h * FP32, s.hardware)

    def s_pass_time(self, algorithm: int) -> float:
        """Per-device S pass seconds (Algorithm 1 or 2, shard ``V_pad/p``)."""
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        shard = s.partition.shard_size
        eff, hw = s.efficiency, s.hardware
        time = eff.matmul_time(n, h, shard, hw)             # Y = X Wᵀ
        time += eff.elementwise_time(3.0 * n * shard * FP32, hw)  # stats + softmax'
        if algorithm == 2:
            time += eff.matmul_time(n, shard, h, hw)        # A = softmax'(Y) W
            # Materializing softmax' for the A matmul costs an extra
            # write + read of the shard (no fused kernel in the pure-
            # Python implementation) — §6.5's "a bit more computation
            # overhead" of Algorithm 2.
            time += eff.elementwise_time(2.0 * n * shard * FP32, hw)
            time += eff.elementwise_time(2.0 * n * h * BF16, hw)  # B = G W gather
        return time + s.pass_overhead

    def t_pass_time(self, algorithm: int) -> float:
        """Per-device T pass seconds (Algorithm 1 or 2)."""
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        shard = s.partition.shard_size
        eff, hw = s.efficiency, s.hardware
        time = eff.matmul_time(shard, n, h, hw)             # ∇W = dYᵀ X
        time += eff.elementwise_time(2.0 * n * shard * FP32, hw)  # softmax fix + dY
        if algorithm == 1:
            time += eff.matmul_time(n, shard, h, hw)        # ∇X partial = dY W
        return time + s.pass_overhead

    def partitioned_input_forward_time(self) -> float:
        """IF pass: construct the full ``[n, h]`` output, gather own rows.

        The output-tensor construction does not shrink with the shard —
        the cause of the input layer's poor Table 3 scaling (§6.5) —
        while the gather/positional work divides by ``p``.
        """
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        p = s.parallel.pipeline_size
        own_rows = 6.0 * n * h * BF16 / p    # expected tokens on this shard
        return s.efficiency.elementwise_time(n * h * BF16 + own_rows, s.hardware)

    def partitioned_input_backward_time(self) -> float:
        """IB pass: scatter-add owned rows of the broadcast gradient."""
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        p = s.parallel.pipeline_size
        own_rows = 6.0 * n * h * FP32 / p
        return s.efficiency.elementwise_time(n * h * FP32 + own_rows, s.hardware)

    def interlaced_vf_time(self) -> float:
        """Interlaced VF segment: shard forward + synchronous all-reduces.

        The two softmax-statistic all-reduces and the input-layer
        assembling all-reduce run on the compute stream (the whole
        point of Appendix B.2's ablation).
        """
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        shard = s.partition.shard_size
        eff, hw, comm = s.efficiency, s.hardware, s.comm
        compute = eff.matmul_time(n, h, shard, hw) + eff.elementwise_time(
            3.0 * n * shard * FP32, hw
        ) + self.partitioned_input_forward_time()
        compute += s.pass_overhead
        if not s.interlaced_sync_allreduce:
            return compute
        sync_comm = 2.0 * comm.all_reduce_time(n * FP32) + comm.all_reduce_time(
            n * h * BF16
        )
        return compute + sync_comm

    def interlaced_vb_time(self) -> float:
        """Interlaced VB segment: shard backward + synchronous ∇X all-reduce."""
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        shard = s.partition.shard_size
        eff, hw, comm = s.efficiency, s.hardware, s.comm
        compute = (
            eff.matmul_time(n, shard, h, hw)
            + eff.matmul_time(shard, n, h, hw)
            + eff.elementwise_time(2.0 * n * shard * FP32, hw)
            + self.partitioned_input_backward_time()
        )
        compute += s.pass_overhead
        if not s.interlaced_sync_allreduce:
            return compute
        sync_comm = comm.all_reduce_time(n * h * BF16) + comm.broadcast_time(
            n * h * BF16
        )
        return compute + sync_comm

class RuntimeModel:
    """Maps passes/collectives of a concrete schedule to seconds."""

    def __init__(self, setup: SimulationSetup, schedule: Schedule):
        self.setup = setup
        self.schedule = schedule
        self.timings = PassTimings(setup)
        self._pass_cache: dict[tuple[PassType, int, int], float] = {}

    def pass_duration(self, p: Pass) -> float:
        key = (p.type, p.device, p.chunk)
        if key not in self._pass_cache:
            self._pass_cache[key] = self._compute_pass_duration(p)
        return self._pass_cache[key]

    def _compute_pass_duration(self, p: Pass) -> float:
        layout = self.schedule.layout
        algorithm = self.schedule.vocab_algorithm
        t = self.timings
        if p.type is PassType.F:
            time = t.transformer_forward_time(
                layout.transformer_layers[p.device][p.chunk]
            )
            if layout.hosts_input(p.device, p.chunk):
                time += t.full_input_forward_time()
            if layout.hosts_output(p.device, p.chunk):
                time += t.full_output_forward_time()
            return time
        if p.type is PassType.B:
            time = t.transformer_backward_time(
                layout.transformer_layers[p.device][p.chunk],
                split_weight=self.schedule.has_weight_passes,
            )
            if layout.hosts_input(p.device, p.chunk):
                time += t.full_input_backward_time()
            if layout.hosts_output(p.device, p.chunk):
                time += t.full_output_backward_time()
            return time
        if p.type is PassType.W:
            return t.transformer_weight_time(
                layout.transformer_layers[p.device][p.chunk]
            )
        if p.type is PassType.S:
            assert algorithm is not None
            return t.s_pass_time(algorithm)
        if p.type is PassType.T:
            assert algorithm is not None
            return t.t_pass_time(algorithm)
        if p.type is PassType.IF:
            return t.partitioned_input_forward_time()
        if p.type is PassType.IB:
            return t.partitioned_input_backward_time()
        if p.type is PassType.VF:
            return t.interlaced_vf_time()
        if p.type is PassType.VB:
            return t.interlaced_vb_time()
        raise ValueError(f"unknown pass type {p.type}")

    def collective_duration(self, kind: CollectiveKind) -> float:
        s = self.setup
        n, h = s.tokens, s.model.hidden_size
        comm = s.comm
        if kind is CollectiveKind.C0_BROADCAST:
            return comm.broadcast_time(n * h * BF16)
        if kind is CollectiveKind.C1_STATS:
            time = 2.0 * comm.all_reduce_time(n * FP32)
            if self.schedule.vocab_algorithm == 2:
                # Algorithm 2 folds the ∇X reduce plus its elementwise
                # combination into C1.
                time += comm.reduce_time(n * h * BF16)
                time += s.efficiency.elementwise_time(2.0 * n * h * BF16, s.hardware)
            return time
        if kind is CollectiveKind.C2_GRAD_REDUCE:
            return comm.reduce_time(n * h * BF16)
        if kind is CollectiveKind.INPUT_ALLREDUCE:
            return comm.all_reduce_time(n * h * BF16)
        if kind is CollectiveKind.INPUT_BROADCAST:
            return comm.broadcast_time(n * h * BF16)
        raise ValueError(f"unknown collective kind {kind}")

    def p2p_duration(self, src_device: int, dst_device: int) -> float:
        """Stage-to-stage activation transfer of one microbatch."""
        s = self.setup
        payload = s.tokens * s.model.hidden_size * BF16
        return s.comm.p2p_time(payload, src_device, dst_device)
