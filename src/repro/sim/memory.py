"""Per-device memory accounting over a simulated iteration.

Combines static parameter/optimizer-state memory (from the Table 4
byte counts scaled by the training-state factor) with a timeline of
activation events derived from the executed schedule:

* transformer activations appear at F end and release at B end (or
  split between B and W when backward is split — the W pass still needs
  the layer inputs);
* a stage hosting the full output layer holds the fp32 softmax of an
  entire microbatch between its F and B (this is what blows up the
  baseline's last device at 256k vocabularies);
* partitioned vocabulary passes hold their softmax *shard* between S
  and T — the paper's "small constant overhead" — plus Algorithm 2's
  pre-computed ∇X operands between S and the C1 barrier;
* input-layer partials live from IF to the assembling all-reduce, and
  gradient copies from the broadcast to IB (Appendix C's "at most two
  microbatches" claim);
* interlaced VF/VB segments hold shard buffers for 1.5× the usual
  number of in-flight microbatches.

The report records per-device peaks, the parameter/activation split,
and the max-minus-min spread that Figure 14 shades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.memory import MemoryModel
from repro.scheduling.passes import CollectiveKind, PassType
from repro.sim.executor import ExecutionResult
from repro.sim.runtime import BF16, FP32, SimulationSetup


@dataclass
class MemoryReport:
    """Peak-memory outcome of one simulated iteration."""

    per_device_peak: list[float]
    per_device_params: list[float]
    per_device_peak_activation: list[float]

    @property
    def peak(self) -> float:
        """Max peak across devices — the number Tables 5/6 report."""
        return max(self.per_device_peak)

    @property
    def spread(self) -> float:
        """Max − min device peak — the imbalance Figure 14 shades."""
        return max(self.per_device_peak) - min(self.per_device_peak)

    def fits(self, capacity_bytes: float) -> bool:
        return self.peak <= capacity_bytes


def device_param_bytes(
    setup: SimulationSetup, schedule_layout, memory_model: MemoryModel
) -> list[float]:
    """Static parameter/optimizer-state bytes per device for a layout.

    Table 4 accounting: transformer-stage weights times the training
    state factor, plus the vocabulary layers (full copies on their
    holder stages, or a shard everywhere under vocabulary parallelism)
    and the first device's positional embedding.  Shared with the
    planner's analytic estimator (:mod:`repro.planner.estimate`).
    """
    model = setup.model
    layout = schedule_layout
    params = []
    for device in range(layout.num_devices):
        total = memory_model.transformer_stage_param_bytes(
            model, sum(layout.transformer_layers[device])
        )
        if layout.vocab_parallel:
            shard = setup.partition.shard_size
            total += memory_model.input_layer_state_bytes(model, shard)
            total += memory_model.output_layer_state_bytes(model, shard)
        else:
            padded = setup.padded_vocab_single
            if layout.input_holder is not None and layout.input_holder[0] == device:
                total += memory_model.input_layer_state_bytes(model, padded)
            if layout.output_holder is not None and layout.output_holder[0] == device:
                total += memory_model.output_layer_state_bytes(model, padded)
        if device == 0:
            # Positional embedding stays on the first device (the paper's
            # "small constant" extra, §6.4).
            total += 2.0 * model.seq_length * model.hidden_size * (
                memory_model.vocab_state_factor
            )
        params.append(total)
    return params


def _activation_events(
    result: ExecutionResult,
    setup: SimulationSetup,
    memory_model: MemoryModel,
    weight_release_fraction: float,
) -> list[list[tuple[float, float]]]:
    """Per-device (time, delta_bytes) events."""
    schedule = result.schedule
    layout = schedule.layout
    model = setup.model
    b = setup.parallel.microbatch_size
    n = setup.tokens
    h = model.hidden_size
    shard = setup.partition.shard_size
    events: list[list[tuple[float, float]]] = [
        [] for _ in range(layout.num_devices)
    ]
    split = schedule.has_weight_passes
    r_w = weight_release_fraction if split else 0.0

    for p, (start, end) in result.pass_times.items():
        dev = p.device
        if p.type is PassType.F:
            act = memory_model.activation_bytes(
                model, b, layout.transformer_layers[dev][p.chunk]
            )
            events[dev].append((end, act))
            if layout.hosts_output(dev, p.chunk):
                events[dev].append((end, n * setup.padded_vocab_single * FP32))
        elif p.type is PassType.B:
            act = memory_model.activation_bytes(
                model, b, layout.transformer_layers[dev][p.chunk]
            )
            events[dev].append((end, -(1.0 - r_w) * act))
            if layout.hosts_output(dev, p.chunk):
                events[dev].append((end, -(n * setup.padded_vocab_single * FP32)))
        elif p.type is PassType.W:
            act = memory_model.activation_bytes(
                model, b, layout.transformer_layers[dev][p.chunk]
            )
            events[dev].append((end, -r_w * act))
        elif p.type is PassType.S:
            events[dev].append(
                (end, memory_model.output_shard_activation_bytes(model, b, shard))
            )
            if schedule.vocab_algorithm == 2:
                # A and B operands live until the C1 barrier consumes them.
                c1 = result.collective_times[(CollectiveKind.C1_STATS, p.microbatch)]
                events[dev].append((end, 2.0 * n * h * BF16))
                events[dev].append((c1[1], -2.0 * n * h * BF16))
        elif p.type is PassType.T:
            events[dev].append(
                (end, -memory_model.output_shard_activation_bytes(model, b, shard))
            )
        elif p.type is PassType.IF:
            iar = result.collective_times[
                (CollectiveKind.INPUT_ALLREDUCE, p.microbatch)
            ]
            events[dev].append((end, n * h * BF16))
            events[dev].append((iar[1], -(n * h * BF16)))
        elif p.type is PassType.IB:
            ibc = result.collective_times[
                (CollectiveKind.INPUT_BROADCAST, p.microbatch)
            ]
            events[dev].append((ibc[1], n * h * BF16))
            events[dev].append((end, -(n * h * BF16)))
        elif p.type is PassType.VF:
            size = n * shard * FP32 + n * h * BF16
            events[dev].append((end, size))
        elif p.type is PassType.VB:
            size = n * shard * FP32 + n * h * BF16
            events[dev].append((end, -size))
    return events


def memory_report(
    result: ExecutionResult,
    setup: SimulationSetup,
    memory_model: MemoryModel | None = None,
    weight_release_fraction: float = 1.0 / 3.0,
) -> MemoryReport:
    """Peak memory per device for an executed schedule."""
    memory_model = memory_model or MemoryModel()
    layout = result.schedule.layout
    params = device_param_bytes(setup, layout, memory_model)
    events = _activation_events(
        result, setup, memory_model, weight_release_fraction
    )
    peaks = []
    act_peaks = []
    for device in range(layout.num_devices):
        level = 0.0
        peak_act = 0.0
        for _, delta in sorted(events[device], key=lambda e: e[0]):
            level += delta
            peak_act = max(peak_act, level)
        act_peaks.append(peak_act)
        peaks.append(params[device] + peak_act + memory_model.overhead_bytes)
    return MemoryReport(
        per_device_peak=peaks,
        per_device_params=params,
        per_device_peak_activation=act_peaks,
    )


def live_microbatch_peaks(
    result: ExecutionResult, weight_release_fraction: float | None = None
) -> list[float]:
    """Peak count of live transformer-activation microbatches per device.

    The schedule-unit counterpart of the paper's Figure 10 annotations:
    1F1B holds ``p`` on device 0, Vocabulary Parallelism ``p + k``
    where ``k`` is the algorithm's barrier count.  Chunked schedules
    weight each chunk by its share of the device's layers.
    """
    schedule = result.schedule
    layout = schedule.layout
    split = schedule.has_weight_passes
    r_w = (
        weight_release_fraction
        if weight_release_fraction is not None
        else (1.0 / 3.0 if split else 0.0)
    )
    peaks = []
    for device in range(layout.num_devices):
        total_layers = max(1, sum(layout.transformer_layers[device]))
        events = []
        for p, (start, end) in result.pass_times.items():
            if p.device != device:
                continue
            weight = layout.transformer_layers[device][p.chunk] / total_layers if (
                p.type in (PassType.F, PassType.B, PassType.W)
            ) else 0.0
            if p.type is PassType.F:
                events.append((end, weight))
            elif p.type is PassType.B:
                events.append((end, -(1.0 - r_w) * weight))
            elif p.type is PassType.W:
                events.append((end, -r_w * weight))
        level = peak = 0.0
        for _, delta in sorted(events, key=lambda e: e[0]):
            level += delta
            peak = max(peak, level)
        peaks.append(peak)
    return peaks
