"""Shared PEP-562 lazy-export machinery.

The scheduling/simulation/planner stack must import without NumPy
(``numpy`` is an optional extra), but the package ``__init__`` modules
also export the NumPy-backed numerical layers.  :func:`lazy_exports`
builds the module-level ``__getattr__``/``__dir__`` pair that defers
those imports until first attribute access.
"""

from __future__ import annotations

import warnings
from importlib import import_module
from typing import Callable


def lazy_exports(
    module_name: str, exports: dict[str, str], module_globals: dict
) -> tuple[Callable[[str], object], Callable[[], list[str]]]:
    """``(__getattr__, __dir__)`` implementing lazy module exports.

    ``exports`` maps attribute name → defining module.  Resolved values
    are cached into ``module_globals`` so each import happens once.
    """

    def __getattr__(name: str):
        target = exports.get(name)
        if target is None:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            )
        value = getattr(import_module(target), name)
        module_globals[name] = value
        return value

    def __dir__() -> list[str]:
        return sorted(set(module_globals) | set(exports))

    return __getattr__, __dir__


def deprecated_exports(
    module_name: str,
    exports: dict[str, str],
    module_globals: dict,
    *,
    replacement: str = "repro.api",
) -> tuple[Callable[[str], object], Callable[[], list[str]]]:
    """Like :func:`lazy_exports`, but each access warns once.

    The shim behind the old scattered import paths: attribute access
    still resolves (from the defining module in ``exports``) but emits
    a :class:`DeprecationWarning` pointing at ``replacement``.  The
    resolved value is cached into ``module_globals``, so the warning
    fires at most once per name per process.
    """

    def __getattr__(name: str):
        target = exports.get(name)
        if target is None:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            )
        warnings.warn(
            f"importing {name!r} from {module_name!r} is deprecated; "
            f"use {replacement!r} (or the defining module {target!r})",
            DeprecationWarning,
            stacklevel=2,
        )
        value = getattr(import_module(target), name)
        module_globals[name] = value
        return value

    def __dir__() -> list[str]:
        return sorted(set(module_globals) | set(exports))

    return __getattr__, __dir__
