"""Numerical collectives over simulated ranks.

A "distributed tensor" is represented as a list of NumPy arrays, one
per rank.  Collectives consume and produce such lists, mirroring NCCL
semantics:

* ``all_reduce_*`` — every rank ends with the elementwise reduction.
* ``reduce_sum`` — only ``root`` receives the reduction (the paper
  implements Reduce as an NCCL AllReduce to balance communication
  volume; numerically they agree on the root, so we model the Reduce
  semantics here and leave the volume question to the timing model).
* ``broadcast`` — every rank receives a copy of ``root``'s array.
* ``all_gather`` / ``reduce_scatter_sum`` — shard-wise counterparts
  used by the input layer and by tests.

All functions validate shard shape agreement, never mutate their
inputs, and return fresh arrays — matching the out-of-place NCCL usage
in the paper's Megatron implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def _check_shards(shards: Sequence[np.ndarray], *, same_shape: bool = True) -> None:
    if len(shards) == 0:
        raise ValueError("collective requires at least one rank")
    if same_shape:
        first = shards[0].shape
        for rank, shard in enumerate(shards):
            if shard.shape != first:
                raise ValueError(
                    f"rank {rank} shard shape {shard.shape} != rank 0 shape {first}"
                )


def all_reduce_sum(shards: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Elementwise sum across ranks; every rank receives the result."""
    _check_shards(shards)
    total = np.sum(np.stack(shards, axis=0), axis=0)
    return [total.copy() for _ in shards]


def all_reduce_max(shards: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Elementwise max across ranks; every rank receives the result."""
    _check_shards(shards)
    peak = np.max(np.stack(shards, axis=0), axis=0)
    return [peak.copy() for _ in shards]


def reduce_sum(shards: Sequence[np.ndarray], root: int = 0) -> np.ndarray:
    """Elementwise sum across ranks, delivered to ``root`` only."""
    _check_shards(shards)
    if not 0 <= root < len(shards):
        raise ValueError(f"root {root} out of range for {len(shards)} ranks")
    return np.sum(np.stack(shards, axis=0), axis=0)


def broadcast(array: np.ndarray, world_size: int) -> list[np.ndarray]:
    """Copy ``array`` to every one of ``world_size`` ranks."""
    if world_size <= 0:
        raise ValueError(f"world_size must be positive, got {world_size}")
    return [array.copy() for _ in range(world_size)]


def all_gather(shards: Sequence[np.ndarray], axis: int = -1) -> list[np.ndarray]:
    """Concatenate rank shards along ``axis``; every rank gets the full tensor."""
    _check_shards(shards, same_shape=False)
    full = np.concatenate(list(shards), axis=axis)
    return [full.copy() for _ in shards]


def reduce_scatter_sum(shards: Sequence[np.ndarray], axis: int = -1) -> list[np.ndarray]:
    """Sum across ranks, then scatter equal chunks of the result.

    Rank ``r`` receives the ``r``-th chunk along ``axis``.  The reduced
    axis length must divide evenly by the number of ranks.
    """
    _check_shards(shards)
    world = len(shards)
    total = np.sum(np.stack(shards, axis=0), axis=0)
    length = total.shape[axis]
    if length % world != 0:
        raise ValueError(
            f"axis {axis} length {length} not divisible by world size {world}"
        )
    chunks = np.split(total, world, axis=axis)
    return [chunk.copy() for chunk in chunks]
