"""α–β timing model for collectives and point-to-point transfers.

Ring-based collectives over ``p`` ranks move ``2·(p-1)/p`` times the
payload per rank (all-reduce) or ``(p-1)/p`` (broadcast / reduce
implemented as all-reduce, per the paper's §6.1 note that both Reduce
and AllReduce map to NCCL AllReduce to balance volume).  The effective
bandwidth of a ring that crosses a node boundary is the inter-node
link; rings confined to one node run at NVLink speed.

Every operation also pays a fixed latency per ring step (the α term),
which is what makes *synchronous* collectives expensive for the
interlaced pipeline (Appendix B.2): the paper measured ≈11 % of
iteration time lost to blocking all-reduces at 32 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParallelConfig
from repro.costmodel.hardware import HardwareModel


@dataclass(frozen=True)
class CommunicationModel:
    """Maps collective payloads to seconds on a concrete cluster.

    Attributes
    ----------
    hardware:
        Link bandwidths and latency.
    parallel:
        World size and node topology (collectives here always span the
        full pipeline group, matching the paper's vocabulary-parallel
        communicators).
    """

    hardware: HardwareModel
    parallel: ParallelConfig

    def _ring_bandwidth(self) -> float:
        """Per-rank bandwidth of the ring spanning the pipeline group."""
        if self.parallel.is_multi_node:
            return self.hardware.inter_node_bandwidth
        return self.hardware.intra_node_bandwidth

    def _ring_latency(self) -> float:
        """Total α cost of one ring traversal.

        A ring spanning several nodes is gated by the slowest hop, so
        the per-step α is the inter-node latency whenever the pipeline
        group crosses a node boundary (they are equal unless a cluster
        scenario sets :attr:`~repro.costmodel.hardware.HardwareModel.inter_node_latency`).
        """
        alpha = (
            self.hardware.inter_link_latency
            if self.parallel.is_multi_node
            else self.hardware.link_latency
        )
        return alpha * max(1, self.parallel.pipeline_size - 1)

    def all_reduce_time(self, payload_bytes: float) -> float:
        """Ring all-reduce over the full pipeline group."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        p = self.parallel.pipeline_size
        if p == 1:
            return 0.0
        volume_factor = 2.0 * (p - 1) / p
        return 2 * self._ring_latency() + payload_bytes * volume_factor / self._ring_bandwidth()

    def reduce_time(self, payload_bytes: float) -> float:
        """Reduce to one rank — implemented as all-reduce (paper §6.1)."""
        return self.all_reduce_time(payload_bytes)

    def broadcast_time(self, payload_bytes: float) -> float:
        """Ring broadcast from one rank to the pipeline group."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        p = self.parallel.pipeline_size
        if p == 1:
            return 0.0
        volume_factor = (p - 1) / p
        return self._ring_latency() + payload_bytes * volume_factor / self._ring_bandwidth()

    def p2p_time(self, payload_bytes: float, src: int, dst: int) -> float:
        """Point-to-point activation send between adjacent pipeline stages."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        if src == dst:
            return 0.0
        per_node = self.parallel.devices_per_node
        same_node = (src // per_node) == (dst // per_node)
        if same_node:
            bandwidth = self.hardware.intra_node_bandwidth
            latency = self.hardware.link_latency
        else:
            bandwidth = self.hardware.inter_node_bandwidth
            latency = self.hardware.inter_link_latency
        return latency + payload_bytes / bandwidth
