"""Simulated collective communication.

Two halves, deliberately separate:

* :mod:`repro.collectives.ops` — *numerics*: collectives over lists of
  NumPy arrays, one entry per simulated rank.  The partitioned
  vocabulary layers and the vocabulary-parallel NumPy LM use these to
  reproduce exactly what NCCL would compute.
* :mod:`repro.collectives.timing` — *cost*: an α–β (latency–bandwidth)
  model of ring collectives and point-to-point transfers, used by the
  discrete-event simulator to assign durations to the C0/C1/C2 barriers
  and pipeline sends.
"""

from repro.collectives.ops import (
    all_gather,
    all_reduce_max,
    all_reduce_sum,
    broadcast,
    reduce_scatter_sum,
    reduce_sum,
)
from repro.collectives.timing import CommunicationModel

__all__ = [
    "all_reduce_sum",
    "all_reduce_max",
    "reduce_sum",
    "broadcast",
    "all_gather",
    "reduce_scatter_sum",
    "CommunicationModel",
]
