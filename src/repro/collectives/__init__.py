"""Simulated collective communication.

Two halves, deliberately separate:

* :mod:`repro.collectives.ops` — *numerics*: collectives over lists of
  NumPy arrays, one entry per simulated rank.  The partitioned
  vocabulary layers and the vocabulary-parallel NumPy LM use these to
  reproduce exactly what NCCL would compute.
* :mod:`repro.collectives.timing` — *cost*: an α–β (latency–bandwidth)
  model of ring collectives and point-to-point transfers, used by the
  discrete-event simulator to assign durations to the C0/C1/C2 barriers
  and pipeline sends.
"""

from repro._lazy import lazy_exports
from repro.collectives.timing import CommunicationModel

#: The numeric collectives need NumPy; the α–β timing model does not.
#: Lazy exports (PEP 562) keep the simulator/planner import chain free
#: of a hard NumPy dependency.
__getattr__, __dir__ = lazy_exports(
    "repro.collectives",
    {
        "all_gather": "repro.collectives.ops",
        "all_reduce_max": "repro.collectives.ops",
        "all_reduce_sum": "repro.collectives.ops",
        "broadcast": "repro.collectives.ops",
        "reduce_scatter_sum": "repro.collectives.ops",
        "reduce_sum": "repro.collectives.ops",
    },
    globals(),
)

__all__ = [
    "all_reduce_sum",
    "all_reduce_max",
    "reduce_sum",
    "broadcast",
    "all_gather",
    "reduce_scatter_sum",
    "CommunicationModel",
]
