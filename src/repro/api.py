"""repro.api — the unified, versioned public API surface.

Everything a downstream consumer needs lives here, re-exported from its
defining module under one stable namespace:

* :func:`plan` / :class:`PlannerConstraints` / :class:`RankedPlans` —
  rank the named schedule families for one configuration;
* :func:`whatif` / :class:`WhatifResult` — price a single-device
  slowdown incrementally against a resident compiled graph;
* :func:`sweep` / :func:`grid` / :class:`SweepOutcome` — plan whole
  (devices, vocab, microbatches, budget) grids in parallel;
* :func:`optimize` / :class:`OptimizedPlan` — rewrite-based search for
  a schedule beating every named family;
* :func:`calibrate` / :func:`fit_profile` / :func:`evaluate_profile` —
  fit and check simulator-calibrated cost models;
* :func:`list_scenarios` / :func:`get_scenario` /
  :func:`register_scenario` — the non-ideal cluster registry;
* :class:`PlanCache` / :func:`clear_plan_cache` — the shared result
  cache.

:data:`API_VERSION` tracks the *shape* of this surface (names and
signatures), and matches the ``api_version`` field every service
response carries.  The scattered historical import paths
(``repro.planner``, ``repro.scenarios``, …) keep working but the deep
``repro.planner`` re-exports now emit a :class:`DeprecationWarning`;
new code should import from :mod:`repro.api` (or the defining
submodule).
"""

from __future__ import annotations

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.calibrate import (
    BUILTIN_PROFILE,
    CalibrationReport,
    CostModel,
    HardwareProfile,
    check_profile,
    evaluate_profile,
    fit_profile,
    get_cost_model,
    list_cost_models,
    register_cost_model,
    resolve_cost_model,
)
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.costmodel.memory import MemoryModel
from repro.optimize import (
    DEFAULT_BUDGET,
    OptimizedPlan,
    optimize,
    optimize_cache_key,
)
from repro.planner.cache import PlanCache, config_digest
from repro.planner.planner import (
    PlanCandidate,
    PlannerConstraints,
    RankedPlans,
    clear_plan_cache,
    default_plan_cache,
    plan,
    plan_cache_key,
)
from repro.planner.sweep import (
    SweepOutcome,
    SweepPoint,
    grid,
    model_for_devices,
    sweep,
)
from repro.planner.whatif import WhatifResult, whatif, whatif_cache_key
from repro.scenarios import (
    ClusterScenario,
    RobustnessObjective,
    get_scenario,
    list_scenarios,
    register_scenario,
)

#: Version of the public API *shape* — the set of names exported here
#: and the service's wire envelope.  Bumped on breaking changes to
#: either; service responses echo it as ``api_version``.
API_VERSION = 1


def calibrate(
    name: str = BUILTIN_PROFILE,
    *,
    quick: bool = False,
    seed: int = 0,
    engine: str = "auto",
    hardware: HardwareModel = A100_SXM_80G,
) -> HardwareProfile:
    """Fit a simulator-calibrated cost-model profile.

    Facade alias for :func:`repro.costmodel.calibrate.fit_profile`,
    named for the CLI verb (``repro-experiments calibrate fit``).
    """
    return fit_profile(
        name, quick=quick, seed=seed, engine=engine, hardware=hardware
    )


__all__ = [
    "A100_SXM_80G",
    "API_VERSION",
    "BUILTIN_PROFILE",
    "CalibrationReport",
    "ClusterScenario",
    "CostModel",
    "DEFAULT_BUDGET",
    "HardwareModel",
    "HardwareProfile",
    "MemoryModel",
    "ModelConfig",
    "OptimizedPlan",
    "ParallelConfig",
    "PlanCache",
    "PlanCandidate",
    "PlannerConstraints",
    "RankedPlans",
    "RobustnessObjective",
    "SweepOutcome",
    "SweepPoint",
    "WhatifResult",
    "calibrate",
    "check_profile",
    "clear_plan_cache",
    "config_digest",
    "default_plan_cache",
    "evaluate_profile",
    "fit_profile",
    "get_cost_model",
    "get_scenario",
    "grid",
    "list_cost_models",
    "list_scenarios",
    "model_for_devices",
    "optimize",
    "optimize_cache_key",
    "plan",
    "plan_cache_key",
    "register_cost_model",
    "register_scenario",
    "resolve_cost_model",
    "sweep",
    "whatif",
    "whatif_cache_key",
]
