"""Fused streaming output layer — the paper's §7 future-work direction.

The paper observes that Algorithm 2's structure "opens an opportunity
of fusing the forward and backward pass in CUDA kernels to avoid
writes/reads of the softmax results, which can be huge in long-context
large-vocabulary settings" (the FlashAttention rationale applied to
cross-entropy).  This module implements that kernel's *algorithm* in
NumPy: each rank streams over its vocabulary shard in blocks of
``block_size`` columns, maintaining online-softmax statistics and the
partial ``∇X`` accumulator, so the materialized state per rank is
``O(n · block_size)`` instead of ``O(n · V/p)``.

Two passes over the blocks are needed because ``∇W`` and the exact
softmax require the final statistics; the first pass accumulates
``m'``, ``sum'`` and ``A = softmax'(Y)·W`` exactly as Algorithm 2 does
(rescaling the accumulator online when the running max changes), and
the second pass recomputes block logits to form ``∇W`` — recompute
instead of store, which is the whole point.

Numerically identical to :class:`~repro.vocab.output_alg2.OutputLayerAlg2`
(and therefore to the reference); the test suite checks both equality
and that per-rank peak intermediate size really is bounded by the
block size.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import all_reduce_max, all_reduce_sum, reduce_sum
from repro.vocab.output_base import (
    MicrobatchState,
    OutputLayerResult,
    PartitionedOutputLayerBase,
)


class FusedOutputLayer(PartitionedOutputLayerBase):
    """Block-streaming Algorithm 2 with one communication barrier.

    ``block_size`` bounds the widest intermediate a rank materializes.
    The barrier structure is identical to Algorithm 2's (a single C1),
    so the scheduling integration and the p+1 activation-memory claim
    carry over unchanged — what improves is the *transient* memory of
    the S and T passes themselves.
    """

    num_barriers = 1

    def __init__(self, partition, weight_shards, block_size: int = 1024):
        super().__init__(partition, weight_shards)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        #: Peak columns materialized at once (observability for tests).
        self.max_block_columns = 0

    @classmethod
    def from_full_weight(cls, partition, weight, block_size: int = 1024):
        return cls(partition, partition.split_weight(weight), block_size)

    def _blocks(self) -> list[tuple[int, int]]:
        size = self.partition.shard_size
        return [
            (start, min(start + self.block_size, size))
            for start in range(0, size, self.block_size)
        ]

    def pass_S(self, state: MicrobatchState, rank: int) -> None:
        """Streaming pass 1: online stats and the ``A``/``B`` operands."""
        state.mark_rank_done("S", rank)
        n = state.x.shape[0]
        w = self.weight_shards[rank]
        running_max = np.full(n, -np.inf)
        running_sum = np.zeros(n)
        acc = np.zeros((n, self.hidden_size))   # Σ exp(Y−m)·W, rescaled online
        label_logit = np.zeros(n)
        mask = self.partition.local_label_mask(state.labels, rank)
        local = self.partition.local_labels(state.labels, rank)
        shard_start, _ = self.partition.shard_range(rank)

        for start, end in self._blocks():
            block_w = w[start:end]
            logits = state.x @ block_w.T                     # [n, block]
            self.max_block_columns = max(self.max_block_columns, end - start)
            block_max = np.max(logits, axis=1)
            new_max = np.maximum(running_max, block_max)
            # Rescale previous accumulators to the new max.
            with np.errstate(invalid="ignore"):
                scale = np.where(
                    np.isneginf(running_max), 0.0, np.exp(running_max - new_max)
                )
            running_sum *= scale
            acc *= scale[:, None]
            exp_block = np.exp(logits - new_max[:, None])
            running_sum += exp_block.sum(axis=1)
            acc += exp_block @ block_w
            running_max = new_max
            # Label logit if it falls inside this block.
            in_block = mask & (local >= start) & (local < end)
            rows = np.nonzero(in_block)[0]
            label_logit[rows] = logits[rows, local[rows] - start]

        # Normalize to the Algorithm-2 interface: softmax' statistics
        # against the *local* max and the A = softmax'(Y)·W operand.
        state.alloc("local_max")[rank] = running_max
        state.alloc("local_sum")[rank] = running_sum
        state.alloc("A")[rank] = acc / running_sum[:, None]
        state.alloc("label_logit")[rank] = label_logit
        # B_r = G_r W_r (gather of on-rank label rows).
        state.alloc("B")[rank] = np.where(
            mask[:, None], w[local], 0.0
        )
        del shard_start

    def barrier_C1(self, state: MicrobatchState) -> None:
        """Single barrier: stats + fused ∇X reduce (identical to Alg2)."""
        state.require_all_ranks("S")
        global_max = all_reduce_max(state.per_rank["local_max"])[0]
        scaled_sums = [
            state.per_rank["local_sum"][rank]
            * np.exp(state.per_rank["local_max"][rank] - global_max)
            for rank in range(state.num_ranks)
        ]
        state.per_rank["scaled_sum"] = scaled_sums
        state.shared["max"] = global_max
        total = all_reduce_sum(scaled_sums)[0]
        state.shared["sum"] = total
        state.shared["label_logit"] = all_reduce_sum(state.per_rank["label_logit"])[0]
        partials = [
            state.per_rank["A"][rank] * (scaled_sums[rank] / total)[:, None]
            - state.per_rank["B"][rank]
            for rank in range(state.num_ranks)
        ]
        state.shared["grad_x"] = reduce_sum(partials) * state.grad_scale
        state.comm_log.append("C1:all_reduce_max+sum+reduce_grad_x")
        state.mark_barrier_done("C1")

    def pass_T(self, state: MicrobatchState, rank: int) -> None:
        """Streaming pass 2: recompute block logits, accumulate ∇W."""
        state.require_barrier("C1")
        state.mark_rank_done("T", rank)
        w = self.weight_shards[rank]
        grad_w = np.zeros_like(w)
        global_max = state.shared["max"]
        total = state.shared["sum"]
        mask = self.partition.local_label_mask(state.labels, rank)
        local = self.partition.local_labels(state.labels, rank)
        for start, end in self._blocks():
            block_w = w[start:end]
            logits = state.x @ block_w.T
            probs = np.exp(logits - global_max[:, None]) / total[:, None]
            in_block = mask & (local >= start) & (local < end)
            rows = np.nonzero(in_block)[0]
            probs[rows, local[rows] - start] -= 1.0
            grad_w[start:end] = (probs * state.grad_scale).T @ state.x
        state.alloc("grad_w")[rank] = grad_w

    def finish(self, state: MicrobatchState) -> OutputLayerResult:
        state.require_all_ranks("T")
        return OutputLayerResult(
            losses=self._losses(state),
            grad_input=state.shared["grad_x"],
            grad_weight_shards=state.per_rank["grad_w"],
            comm_log=tuple(state.comm_log),
            num_barriers=self.num_barriers,
        )

    def run(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        state = self.begin(x, labels, grad_scale)
        for rank in range(self.partition.num_shards):
            self.pass_S(state, rank)
        self.barrier_C1(state)
        for rank in range(self.partition.num_shards):
            self.pass_T(state, rank)
        return self.finish(state)
