"""Vocabulary-parallel input embedding layer (paper Appendix C).

Each rank holds a ``[V_pad/p, h]`` shard of the token embedding.  The
forward pass is embarrassingly parallel: a rank gathers rows for the
tokens it owns (zeros elsewhere) and a single all-reduce assembles the
full ``[n, h]`` output on the first pipeline stage — this is the only
forward communication, and it overlaps with transformer compute.  The
backward pass broadcasts the output gradient and each rank scatter-adds
the rows it owns into its ``∇E`` shard, with no further communication.

The paper notes (§6.5) that partitioning the input layer scales poorly
— every rank constructs a full ``[n, h]`` output regardless of its
shard size — but the input layer is so cheap (``3bsh`` FLOPs) that this
does not matter; what matters is moving its ``2hV`` bytes of parameters
off the first stage.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import all_reduce_sum, broadcast
from repro.vocab.partition import VocabPartition


class VocabParallelEmbedding:
    """Input embedding partitioned over the vocabulary dimension."""

    def __init__(self, partition: VocabPartition, weight_shards: list[np.ndarray]):
        if len(weight_shards) != partition.num_shards:
            raise ValueError(
                f"expected {partition.num_shards} shards, got {len(weight_shards)}"
            )
        hidden = weight_shards[0].shape[1]
        for rank, shard in enumerate(weight_shards):
            if shard.shape != (partition.shard_size, hidden):
                raise ValueError(
                    f"rank {rank} shard shape {shard.shape} != "
                    f"({partition.shard_size}, {hidden})"
                )
        self.partition = partition
        self.weight_shards = [shard.copy() for shard in weight_shards]
        self.hidden_size = hidden

    @classmethod
    def from_full_weight(
        cls, partition: VocabPartition, weight: np.ndarray
    ) -> "VocabParallelEmbedding":
        """Build from an unsharded ``[V, h]`` embedding (pads + splits)."""
        return cls(partition, partition.split_weight(weight))

    def forward_local(self, tokens: np.ndarray, rank: int) -> np.ndarray:
        """Rank-local partial output: owned rows gathered, others zero."""
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.partition.vocab_size:
            raise ValueError("tokens out of (unpadded) vocabulary range")
        mask = self.partition.local_label_mask(tokens, rank)
        local = self.partition.local_labels(tokens, rank)
        gathered = self.weight_shards[rank][local]
        return np.where(mask[:, None], gathered, 0.0)

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, list[str]]:
        """Full forward over all ranks; returns output and comm log."""
        partials = [
            self.forward_local(tokens, rank)
            for rank in range(self.partition.num_shards)
        ]
        output = all_reduce_sum(partials)[0]
        return output, ["all_reduce_sum"]

    def backward_local(
        self, tokens: np.ndarray, grad_output: np.ndarray, rank: int
    ) -> np.ndarray:
        """Rank-local ``∇E`` shard via scatter-add of owned token rows."""
        if grad_output.shape != (tokens.shape[0], self.hidden_size):
            raise ValueError(
                f"grad_output shape {grad_output.shape} != "
                f"({tokens.shape[0]}, {self.hidden_size})"
            )
        mask = self.partition.local_label_mask(tokens, rank)
        local = self.partition.local_labels(tokens, rank)
        grad_shard = np.zeros_like(self.weight_shards[rank])
        rows = np.nonzero(mask)[0]
        np.add.at(grad_shard, local[rows], grad_output[rows])
        return grad_shard

    def backward(
        self, tokens: np.ndarray, grad_output: np.ndarray
    ) -> tuple[list[np.ndarray], list[str]]:
        """Full backward: broadcast of ``∇output`` then local scatter-adds."""
        copies = broadcast(grad_output, self.partition.num_shards)
        grads = [
            self.backward_local(tokens, copies[rank], rank)
            for rank in range(self.partition.num_shards)
        ]
        return grads, ["broadcast"]
