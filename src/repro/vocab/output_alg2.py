"""Algorithm 2: output layer with a single communication barrier.

The paper's backward-phase optimization (§4.4): the input gradient can
be rewritten (Eq. 6) as::

    ∇X = Σ_r [ (sum'_scaled_r / sum) ⊙ (softmax'_r(Y) W_r) ] - Σ_r G_r W_r

so each rank pre-computes ``A_r = softmax'_r(Y) W_r`` and
``B_r = G_r W_r`` *before* any communication.  The single barrier C1
then performs all four reductions back-to-back: max, rescaled sum, the
fused label logit, and ``Reduce(∇X)`` where ``∇X``'s per-rank
contribution is just the cheap elementwise combination
``scale ⊙ A_r - B_r``.

The weight-gradient pass ``T`` recomputes the corrected softmax and
forms ``∇W_r``; nothing downstream depends on it, so the schedule can
delay it arbitrarily (the zero-bubble idea) — this is what drops the
activation-memory overhead from p+2 to p+1 microbatches in Figure 10.

Cost note (§6.5 / Table 3): compared with Algorithm 1 this does one
extra ``[n, V/p]·[V/p, h]`` matmul per microbatch (``A_r`` in S, while
T still multiplies ``(softmax - G)ᵀ X``), which is why Vocab-2's
scaling factor trails Vocab-1's by ~5 points.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import all_reduce_max, all_reduce_sum, reduce_sum
from repro.vocab.output_base import (
    MicrobatchState,
    OutputLayerResult,
    PartitionedOutputLayerBase,
)


class OutputLayerAlg2(PartitionedOutputLayerBase):
    """One-barrier partitioned output layer (paper Algorithm 2)."""

    num_barriers = 1

    def pass_S(self, state: MicrobatchState, rank: int) -> None:
        """Local softmax plus the pre-computed ∇X matmuls ``A_r``, ``B_r``."""
        state.mark_rank_done("S", rank)
        logits = self._local_logits(state, rank)
        local_max = np.max(logits, axis=1)
        exp = np.exp(logits - local_max[:, None])
        local_sum = np.sum(exp, axis=1)
        local_softmax = exp / local_sum[:, None]
        state.alloc("local_softmax")[rank] = local_softmax
        state.alloc("local_max")[rank] = local_max
        state.alloc("local_sum")[rank] = local_sum
        state.alloc("label_logit")[rank] = self._local_label_logit(state, rank, logits)
        # A_r = softmax'(Y) W_r : the heavy matmul, done before any barrier.
        state.alloc("A")[rank] = local_softmax @ self.weight_shards[rank]
        # B_r = G_r W_r : one-hot gather of weight rows for on-rank labels.
        mask = self.partition.local_label_mask(state.labels, rank)
        local = self.partition.local_labels(state.labels, rank)
        state.alloc("B")[rank] = np.where(
            mask[:, None], self.weight_shards[rank][local], 0.0
        )

    def barrier_C1(self, state: MicrobatchState) -> None:
        """The single barrier: stats reductions plus ``Reduce(∇X)``."""
        state.require_all_ranks("S")
        global_max = all_reduce_max(state.per_rank["local_max"])[0]
        scaled_sums = [
            state.per_rank["local_sum"][rank]
            * np.exp(state.per_rank["local_max"][rank] - global_max)
            for rank in range(state.num_ranks)
        ]
        state.per_rank["scaled_sum"] = scaled_sums
        state.shared["max"] = global_max
        total = all_reduce_sum(scaled_sums)[0]
        state.shared["sum"] = total
        state.shared["label_logit"] = all_reduce_sum(state.per_rank["label_logit"])[0]
        # ∇X contribution per rank is elementwise on [n, h] — lightweight.
        partials = [
            state.per_rank["A"][rank] * (scaled_sums[rank] / total)[:, None]
            - state.per_rank["B"][rank]
            for rank in range(state.num_ranks)
        ]
        state.shared["grad_x"] = reduce_sum(partials) * state.grad_scale
        state.comm_log.append("C1:all_reduce_max+sum+reduce_grad_x")
        state.mark_barrier_done("C1")

    def pass_T(self, state: MicrobatchState, rank: int) -> None:
        """Deferred weight gradient: corrected softmax then ``∇W_r``."""
        state.require_barrier("C1")
        state.mark_rank_done("T", rank)
        correction = (
            state.per_rank["scaled_sum"][rank] / state.shared["sum"]
        )[:, None]
        probs = state.per_rank["local_softmax"][rank] * correction
        d_logits = (probs - self.partition.one_hot_shard(state.labels, rank)) * (
            state.grad_scale
        )
        state.alloc("grad_w")[rank] = d_logits.T @ state.x

    def finish(self, state: MicrobatchState) -> OutputLayerResult:
        state.require_all_ranks("T")
        return OutputLayerResult(
            losses=self._losses(state),
            grad_input=state.shared["grad_x"],
            grad_weight_shards=state.per_rank["grad_w"],
            comm_log=tuple(state.comm_log),
            num_barriers=self.num_barriers,
        )

    def run(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        state = self.begin(x, labels, grad_scale)
        ranks = range(self.partition.num_shards)
        for rank in ranks:
            self.pass_S(state, rank)
        self.barrier_C1(state)
        for rank in ranks:
            self.pass_T(state, rank)
        return self.finish(state)
