"""Vocabulary partitioning across pipeline devices.

The paper partitions the embedding matrices along the *vocabulary*
dimension, one contiguous shard per pipeline device, and pads the
vocabulary to a multiple of ``2p`` for memory alignment (§6.1 —
padding 256008 → 256032 on 24 devices was worth ~8 % throughput).
Padded slots behave exactly as in Megatron-LM: they are real weight
rows that participate in the softmax denominator and receive gradients,
but no label or input token ever points at them.  Numerical-equality
tests therefore compare against a reference computed on the *padded*
weight — the padded vocabulary simply is the model's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # The scalar sharding math (shard_size, bounds) is numpy-free;
    # only the weight/label array helpers need numpy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in numpy-less installs
    np = None


def _require_numpy():
    if np is None:
        raise ImportError(
            "NumPy is required for VocabPartition's array helpers; "
            "install the 'numpy' extra (pip install repro-vocab-pp[numpy])"
        )


@dataclass(frozen=True)
class VocabPartition:
    """Contiguous sharding of a (padded) vocabulary over ``num_shards`` ranks.

    Attributes
    ----------
    vocab_size:
        The original, unpadded vocabulary size ``V``.
    num_shards:
        Number of pipeline devices ``p``.
    padding_multiple:
        The padded size is the smallest multiple of
        ``padding_multiple * num_shards`` that is ≥ ``vocab_size``.
        The paper uses 2 (pad to a multiple of ``2p``).
    """

    vocab_size: int
    num_shards: int
    padding_multiple: int = 2

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {self.num_shards}")
        if self.padding_multiple <= 0:
            raise ValueError(
                f"padding_multiple must be positive, got {self.padding_multiple}"
            )

    @property
    def padded_size(self) -> int:
        """Vocabulary size after padding to a multiple of ``2p``."""
        unit = self.padding_multiple * self.num_shards
        return -(-self.vocab_size // unit) * unit

    @property
    def shard_size(self) -> int:
        """Rows of the embedding matrix held by each rank (``V_pad / p``)."""
        return self.padded_size // self.num_shards

    @property
    def padding(self) -> int:
        """Number of padding rows appended to the vocabulary."""
        return self.padded_size - self.vocab_size

    def shard_range(self, rank: int) -> tuple[int, int]:
        """Half-open ``[start, end)`` row range owned by ``rank``."""
        self._check_rank(rank)
        start = rank * self.shard_size
        return start, start + self.shard_size

    def shard_of_token(self, token_id: int) -> int:
        """Rank owning ``token_id``'s embedding row."""
        if not 0 <= token_id < self.padded_size:
            raise ValueError(
                f"token_id {token_id} out of padded vocabulary [0, {self.padded_size})"
            )
        return token_id // self.shard_size

    def pad_weight(self, weight: np.ndarray) -> np.ndarray:
        """Zero-pad a ``[V, h]`` weight matrix to ``[V_pad, h]``."""
        _require_numpy()
        if weight.shape[0] != self.vocab_size:
            raise ValueError(
                f"weight has {weight.shape[0]} rows, expected vocab_size={self.vocab_size}"
            )
        if self.padding == 0:
            return weight.copy()
        pad = np.zeros((self.padding,) + weight.shape[1:], dtype=weight.dtype)
        return np.concatenate([weight, pad], axis=0)

    def split_weight(self, weight: np.ndarray) -> list[np.ndarray]:
        """Pad then split a ``[V, h]`` weight into ``p`` shards of ``[V_pad/p, h]``."""
        padded = self.pad_weight(weight)
        return [shard.copy() for shard in np.split(padded, self.num_shards, axis=0)]

    def merge_shards(self, shards: list[np.ndarray]) -> np.ndarray:
        """Concatenate shards and strip padding back to ``[V, h]``."""
        _require_numpy()
        if len(shards) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} shards, got {len(shards)}"
            )
        full = np.concatenate(shards, axis=0)
        if full.shape[0] != self.padded_size:
            raise ValueError(
                f"merged shards have {full.shape[0]} rows, expected {self.padded_size}"
            )
        return full[: self.vocab_size].copy()

    def local_label_mask(self, labels: np.ndarray, rank: int) -> np.ndarray:
        """Boolean mask of tokens whose label row lives on ``rank``."""
        _require_numpy()
        start, end = self.shard_range(rank)
        return (labels >= start) & (labels < end)

    def local_labels(self, labels: np.ndarray, rank: int) -> np.ndarray:
        """Labels shifted into the rank-local row index space.

        Out-of-range labels map to 0; combine with
        :meth:`local_label_mask` before indexing.
        """
        start, _ = self.shard_range(rank)
        mask = self.local_label_mask(labels, rank)
        return np.where(mask, labels - start, 0)

    def one_hot_shard(self, labels: np.ndarray, rank: int) -> np.ndarray:
        """The ``G`` matrix shard: one-hot rows for labels owned by ``rank``."""
        mask = self.local_label_mask(labels, rank)
        local = self.local_labels(labels, rank)
        shard = np.zeros((labels.shape[0], self.shard_size))
        rows = np.nonzero(mask)[0]
        shard[rows, local[rows]] = 1.0
        return shard

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_shards:
            raise ValueError(f"rank {rank} out of range [0, {self.num_shards})")
