"""Partitioned vocabulary layers (the paper's §4 and Appendix C).

The output layer (projection + softmax + cross-entropy) is partitioned
across the vocabulary dimension onto ``p`` simulated ranks.  Three
implementations mirror the paper:

* :class:`~repro.vocab.output_naive.NaiveOutputLayer` — 3 communication
  barriers (all-reduce max, all-reduce sum, reduce ∇X); Figure 4/6.
* :class:`~repro.vocab.output_alg1.OutputLayerAlg1` — Algorithm 1,
  2 barriers via the online-softmax rescaling trick (Eq. 5).
* :class:`~repro.vocab.output_alg2.OutputLayerAlg2` — Algorithm 2,
  1 barrier by pre-computing the ∇X matmuls (Eq. 6) and folding every
  reduction into C1; the weight-gradient pass T can be delayed
  arbitrarily (zero-bubble style).

All three are numerically exact reimplementations of the same math —
:func:`repro.vocab.reference.reference_output_layer` — which the test
suite verifies, reproducing the claim behind Figure 17.

The input embedding layer (Appendix C) is in
:class:`~repro.vocab.input_layer.VocabParallelEmbedding`.
"""

from repro._lazy import lazy_exports
from repro.vocab.partition import VocabPartition

#: The numerical layers need NumPy; the scheduling/planner stack only
#: needs VocabPartition's scalar sharding math.  Everything NumPy-backed
#: is imported lazily (PEP 562) so ``import repro.planner`` works on
#: NumPy-less installs.
__getattr__, __dir__ = lazy_exports(
    "repro.vocab",
    {
        "softmax": "repro.vocab.reference",
        "log_softmax": "repro.vocab.reference",
        "reference_output_layer": "repro.vocab.reference",
        "reference_embedding": "repro.vocab.reference",
        "OutputLayerResult": "repro.vocab.output_base",
        "NaiveOutputLayer": "repro.vocab.output_naive",
        "OutputLayerAlg1": "repro.vocab.output_alg1",
        "OutputLayerAlg2": "repro.vocab.output_alg2",
        "FusedOutputLayer": "repro.vocab.output_fused",
        "VocabParallelEmbedding": "repro.vocab.input_layer",
    },
    globals(),
)

__all__ = [
    "VocabPartition",
    "softmax",
    "log_softmax",
    "reference_output_layer",
    "reference_embedding",
    "OutputLayerResult",
    "NaiveOutputLayer",
    "OutputLayerAlg1",
    "OutputLayerAlg2",
    "FusedOutputLayer",
    "VocabParallelEmbedding",
]
