"""Naïve partitioned output layer: three communication barriers.

This is Figure 4 of the paper: the softmax statistics are reduced
eagerly, so the computation splits into

* ``F1`` — local logits ``Y_r`` and local max, per rank;
* barrier **AllReduce(max)**;
* ``F2`` — exponentials with the *global* max, local sum, per rank;
* barrier **AllReduce(sum)** (the label logit for the loss is fused
  into this reduction);
* ``B`` — softmax, ``∇X_r`` and ``∇W_r`` matmuls, per rank;
* barrier **Reduce(∇X)** to the last pipeline stage.

Each barrier is a cross-device dependency that the pipeline schedule
must leave room for, which is why the paper counts barriers so
carefully: every barrier inserted between the last transformer F and B
costs one microbatch of activation memory (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import all_reduce_max, all_reduce_sum, reduce_sum
from repro.vocab.output_base import (
    MicrobatchState,
    OutputLayerResult,
    PartitionedOutputLayerBase,
)


class NaiveOutputLayer(PartitionedOutputLayerBase):
    """Three-barrier partitioned output layer (paper §4.1, Figure 4)."""

    num_barriers = 3

    def pass_F1(self, state: MicrobatchState, rank: int) -> None:
        """Local logits and their row max on one rank."""
        state.mark_rank_done("F1", rank)
        logits = self._local_logits(state, rank)
        state.alloc("logits")[rank] = logits
        state.alloc("local_max")[rank] = np.max(logits, axis=1)
        state.alloc("label_logit")[rank] = self._local_label_logit(state, rank, logits)

    def barrier_max(self, state: MicrobatchState) -> None:
        """AllReduce of the row max across all ranks."""
        state.require_all_ranks("F1")
        reduced = all_reduce_max(state.per_rank["local_max"])
        state.shared["max"] = reduced[0]
        state.comm_log.append("C1:all_reduce_max")
        state.mark_barrier_done("max")

    def pass_F2(self, state: MicrobatchState, rank: int) -> None:
        """Exponentials against the global max; local denominator."""
        state.require_barrier("max")
        state.mark_rank_done("F2", rank)
        exp = np.exp(state.per_rank["logits"][rank] - state.shared["max"][:, None])
        state.alloc("exp")[rank] = exp
        state.alloc("local_sum")[rank] = np.sum(exp, axis=1)

    def barrier_sum(self, state: MicrobatchState) -> None:
        """AllReduce of the denominator (label logit fused in)."""
        state.require_all_ranks("F2")
        state.shared["sum"] = all_reduce_sum(state.per_rank["local_sum"])[0]
        state.shared["label_logit"] = all_reduce_sum(state.per_rank["label_logit"])[0]
        state.comm_log.append("C2:all_reduce_sum")
        state.mark_barrier_done("sum")

    def pass_B(self, state: MicrobatchState, rank: int) -> None:
        """Softmax shard, ``∇X_r`` and ``∇W_r`` on one rank."""
        state.require_barrier("sum")
        state.mark_rank_done("B", rank)
        probs = state.per_rank["exp"][rank] / state.shared["sum"][:, None]
        d_logits = (probs - self.partition.one_hot_shard(state.labels, rank)) * (
            state.grad_scale
        )
        state.alloc("grad_x_partial")[rank] = d_logits @ self.weight_shards[rank]
        state.alloc("grad_w")[rank] = d_logits.T @ state.x

    def barrier_reduce_grad(self, state: MicrobatchState) -> None:
        """Reduce ``∇X`` to the last pipeline stage."""
        state.require_all_ranks("B")
        state.shared["grad_x"] = reduce_sum(state.per_rank["grad_x_partial"])
        state.comm_log.append("C3:reduce_grad_x")
        state.mark_barrier_done("reduce_grad")

    def finish(self, state: MicrobatchState) -> OutputLayerResult:
        state.require_barrier("reduce_grad")
        return OutputLayerResult(
            losses=self._losses(state),
            grad_input=state.shared["grad_x"],
            grad_weight_shards=state.per_rank["grad_w"],
            comm_log=tuple(state.comm_log),
            num_barriers=self.num_barriers,
        )

    def run(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        state = self.begin(x, labels, grad_scale)
        ranks = range(self.partition.num_shards)
        for rank in ranks:
            self.pass_F1(state, rank)
        self.barrier_max(state)
        for rank in ranks:
            self.pass_F2(state, rank)
        self.barrier_sum(state)
        for rank in ranks:
            self.pass_B(state, rank)
        self.barrier_reduce_grad(state)
        return self.finish(state)
