"""Single-device reference implementation of the vocabulary layers.

This is the ground truth every partitioned implementation must match:
the math of the paper's §4.2 on one device, with the numerically safe
softmax (subtract the row max).  The backward pass assumes cross-entropy
loss, giving the textbook ``softmax(Y) - G`` logit gradient (Eq. 3/4).
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise safe softmax of a ``[n, V]`` logit matrix."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, computed stably."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


def reference_output_layer(
    x: np.ndarray,
    weight: np.ndarray,
    labels: np.ndarray,
    grad_scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward + backward of the full output layer on one device.

    Parameters
    ----------
    x:
        Last transformer layer output, ``[n, h]`` (``n = b·s`` tokens).
    weight:
        Output embedding, ``[V, h]``.
    labels:
        Integer targets, ``[n]`` with values in ``[0, V)``.
    grad_scale:
        Multiplier applied to all gradients (e.g. ``1/n`` for a mean
        loss); losses themselves are returned per token.

    Returns
    -------
    (losses, grad_x, grad_weight):
        ``losses`` is ``[n]`` cross-entropy per token; ``grad_x`` is
        ``[n, h]``; ``grad_weight`` is ``[V, h]``.
    """
    n, h = x.shape
    v = weight.shape[0]
    if weight.shape[1] != h:
        raise ValueError(f"weight width {weight.shape[1]} != input width {h}")
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= v:
        raise ValueError("labels out of vocabulary range")

    logits = x @ weight.T
    logp = log_softmax(logits)
    losses = -logp[np.arange(n), labels]

    d_logits = softmax(logits)
    d_logits[np.arange(n), labels] -= 1.0
    d_logits *= grad_scale
    grad_x = d_logits @ weight
    grad_weight = d_logits.T @ x
    return losses, grad_x, grad_weight


def reference_embedding(
    tokens: np.ndarray,
    weight: np.ndarray,
    grad_output: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Forward (and optional backward) of the input embedding lookup.

    Returns the ``[n, h]`` embedding output and, when ``grad_output``
    is given, the dense ``[V, h]`` weight gradient from scatter-add.
    """
    if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= weight.shape[0]:
        raise ValueError("tokens out of vocabulary range")
    output = weight[tokens]
    if grad_output is None:
        return output, None
    if grad_output.shape != output.shape:
        raise ValueError(
            f"grad_output shape {grad_output.shape} != output shape {output.shape}"
        )
    grad_weight = np.zeros_like(weight)
    np.add.at(grad_weight, tokens, grad_output)
    return output, grad_weight
