"""Tied input/output embeddings under Vocabulary Parallelism (§6.1).

The paper notes that partitioning both vocabulary layers the same way
"makes tying input and output embedding weights easier, as the input
and output embedding weights now have the same device placement and can
use the shared weight tensor.  This saves GPU memory and avoids the
additional all-reduce to synchronize gradients" — in baseline pipeline
parallelism the tied weight lives on *both* the first and last stage
and every step pays an all-reduce between them.

:class:`TiedVocabLayers` implements that: one shard per rank serves the
input lookup and the output projection, and the weight gradient is the
*sum* of both paths' gradients, locally, with zero extra communication.
"""

from __future__ import annotations

import numpy as np

from repro.vocab.input_layer import VocabParallelEmbedding
from repro.vocab.output_alg1 import OutputLayerAlg1
from repro.vocab.output_alg2 import OutputLayerAlg2
from repro.vocab.output_base import OutputLayerResult
from repro.vocab.partition import VocabPartition

_OUTPUT_IMPLS = {1: OutputLayerAlg1, 2: OutputLayerAlg2}


class TiedVocabLayers:
    """Shared-weight input + output vocabulary layers over ``p`` ranks."""

    def __init__(
        self,
        partition: VocabPartition,
        weight_shards: list[np.ndarray],
        algorithm: int = 2,
    ):
        if algorithm not in _OUTPUT_IMPLS:
            raise ValueError(f"algorithm must be 1 or 2, got {algorithm}")
        self.partition = partition
        self.weight_shards = [shard.copy() for shard in weight_shards]
        self.algorithm = algorithm
        # Both layers view the *same* shard objects — that is the tie.
        self.embedding = VocabParallelEmbedding(partition, self.weight_shards)
        self.embedding.weight_shards = self.weight_shards
        self._output_cls = _OUTPUT_IMPLS[algorithm]

    @classmethod
    def from_full_weight(
        cls, partition: VocabPartition, weight: np.ndarray, algorithm: int = 2
    ) -> "TiedVocabLayers":
        return cls(partition, partition.split_weight(weight), algorithm)

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Input lookup through the shared shards (+ all-reduce)."""
        output, _ = self.embedding.forward(tokens)
        return output

    def output(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        """Output projection + loss through the shared shards."""
        layer = self._output_cls(self.partition, self.weight_shards)
        return layer.run(x, labels, grad_scale)

    def combined_grad_shards(
        self,
        tokens: np.ndarray,
        embed_grad: np.ndarray,
        output_result: OutputLayerResult,
    ) -> list[np.ndarray]:
        """Total tied-weight gradient: output ∇W plus input scatter-add.

        Purely rank-local — the communication saving the paper points
        out: no cross-stage all-reduce of the tied weight gradient.
        """
        input_grads, _ = self.embedding.backward(tokens, embed_grad)
        return [
            out + inp
            for out, inp in zip(output_result.grad_weight_shards, input_grads)
        ]
