"""Algorithm 1: output layer with two communication barriers.

The paper's forward-phase optimization (§4.3, inspired by online
softmax): each rank computes a *local* softmax with its own max and
sum, then a single barrier ``C1`` reduces both statistics — the max
first, then the locally-rescaled sum — as back-to-back all-reduces of
tiny ``[n]`` tensors (the paper groups them into one barrier because
nothing computes between them).  The true softmax is recovered via
Eq. (5)::

    softmax(Y) = softmax'(Y) · (sum'_scaled / sum)

where ``sum'_scaled = sum' · exp(m' - m)``.  The ``T`` pass then forms
``∇X_r`` and ``∇W_r``, and a final barrier ``C2`` reduces ``∇X``.

Scheduling constraint (§5.1): the backward pass of the last transformer
layer needs ``∇X`` and therefore must wait for *all* T passes — unlike
Algorithm 2 where T can be delayed arbitrarily.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import all_reduce_max, all_reduce_sum, reduce_sum
from repro.vocab.output_base import (
    MicrobatchState,
    OutputLayerResult,
    PartitionedOutputLayerBase,
)


class OutputLayerAlg1(PartitionedOutputLayerBase):
    """Two-barrier partitioned output layer (paper Algorithm 1)."""

    num_barriers = 2

    def pass_S(self, state: MicrobatchState, rank: int) -> None:
        """Local logits, local max/sum, and the *local* softmax."""
        state.mark_rank_done("S", rank)
        logits = self._local_logits(state, rank)
        local_max = np.max(logits, axis=1)
        exp = np.exp(logits - local_max[:, None])
        local_sum = np.sum(exp, axis=1)
        state.alloc("local_softmax")[rank] = exp / local_sum[:, None]
        state.alloc("local_max")[rank] = local_max
        state.alloc("local_sum")[rank] = local_sum
        state.alloc("label_logit")[rank] = self._local_label_logit(state, rank, logits)

    def barrier_C1(self, state: MicrobatchState) -> None:
        """Reduce the softmax statistics (max, then rescaled sum).

        Only ``[n]``-sized tensors move — the paper stresses that the
        elementwise work inside C1 is negligible and overlaps with
        transformer compute when placed on a separate stream.
        """
        state.require_all_ranks("S")
        global_max = all_reduce_max(state.per_rank["local_max"])[0]
        scaled_sums = [
            state.per_rank["local_sum"][rank]
            * np.exp(state.per_rank["local_max"][rank] - global_max)
            for rank in range(state.num_ranks)
        ]
        state.per_rank["scaled_sum"] = scaled_sums
        state.shared["max"] = global_max
        state.shared["sum"] = all_reduce_sum(scaled_sums)[0]
        state.shared["label_logit"] = all_reduce_sum(state.per_rank["label_logit"])[0]
        state.comm_log.append("C1:all_reduce_max+sum")
        state.mark_barrier_done("C1")

    def pass_T(self, state: MicrobatchState, rank: int) -> None:
        """Correct the local softmax (Eq. 5) and compute both gradients."""
        state.require_barrier("C1")
        state.mark_rank_done("T", rank)
        correction = (
            state.per_rank["scaled_sum"][rank] / state.shared["sum"]
        )[:, None]
        probs = state.per_rank["local_softmax"][rank] * correction
        d_logits = (probs - self.partition.one_hot_shard(state.labels, rank)) * (
            state.grad_scale
        )
        state.alloc("grad_x_partial")[rank] = d_logits @ self.weight_shards[rank]
        state.alloc("grad_w")[rank] = d_logits.T @ state.x

    def barrier_C2(self, state: MicrobatchState) -> None:
        """Reduce ``∇X`` to the last pipeline stage."""
        state.require_all_ranks("T")
        state.shared["grad_x"] = reduce_sum(state.per_rank["grad_x_partial"])
        state.comm_log.append("C2:reduce_grad_x")
        state.mark_barrier_done("C2")

    def finish(self, state: MicrobatchState) -> OutputLayerResult:
        state.require_barrier("C2")
        return OutputLayerResult(
            losses=self._losses(state),
            grad_input=state.shared["grad_x"],
            grad_weight_shards=state.per_rank["grad_w"],
            comm_log=tuple(state.comm_log),
            num_barriers=self.num_barriers,
        )

    def run(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        state = self.begin(x, labels, grad_scale)
        ranks = range(self.partition.num_shards)
        for rank in ranks:
            self.pass_S(state, rank)
        self.barrier_C1(state)
        for rank in ranks:
            self.pass_T(state, rank)
        self.barrier_C2(state)
        return self.finish(state)
