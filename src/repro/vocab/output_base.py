"""Shared machinery for the partitioned output-layer implementations.

Each implementation (naïve / Algorithm 1 / Algorithm 2) is a class over
``p`` simulated ranks holding one ``[V_pad/p, h]`` weight shard each.
Computation is decomposed into *pass methods* (one call per rank) and
*barrier methods* (one call per collective), mirroring how the paper
schedules the work: the test suite interleaves rank order arbitrarily
and counts barriers, and the schedule generators map these passes onto
pipeline devices.

A convenience :meth:`PartitionedOutputLayerBase.run` executes a whole
microbatch in order and returns an :class:`OutputLayerResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.vocab.partition import VocabPartition


@dataclass
class OutputLayerResult:
    """Outcome of one microbatch through a partitioned output layer.

    Attributes
    ----------
    losses:
        Per-token cross-entropy, ``[n]``.
    grad_input:
        ``∇X`` delivered to the last pipeline stage, ``[n, h]``.
    grad_weight_shards:
        Per-rank ``∇W`` shards, each ``[V_pad/p, h]``.
    comm_log:
        Ordered names of the collectives performed (barrier ops only;
        fused payloads share one entry).
    num_barriers:
        Communication barriers crossed (3 naïve / 2 Alg1 / 1 Alg2) —
        excludes the C0 broadcast of ``X``, which the paper also
        excludes since it pipelines ahead of the S passes.
    """

    losses: np.ndarray
    grad_input: np.ndarray
    grad_weight_shards: list[np.ndarray]
    comm_log: tuple[str, ...]
    num_barriers: int


@dataclass
class MicrobatchState:
    """Mutable per-microbatch scratchpad shared by the pass methods."""

    x: np.ndarray
    labels: np.ndarray
    grad_scale: float
    num_ranks: int
    # Per-rank intermediates, keyed by name then rank.
    per_rank: dict[str, list[Any]] = field(default_factory=dict)
    # Replicated values (post-all-reduce).
    shared: dict[str, Any] = field(default_factory=dict)
    comm_log: list[str] = field(default_factory=list)
    done: dict[str, set[int] | bool] = field(default_factory=dict)

    def alloc(self, name: str) -> list[Any]:
        if name not in self.per_rank:
            self.per_rank[name] = [None] * self.num_ranks
        return self.per_rank[name]

    def mark_rank_done(self, phase: str, rank: int) -> None:
        done = self.done.setdefault(phase, set())
        assert isinstance(done, set)
        if rank in done:
            raise RuntimeError(f"pass {phase} already executed on rank {rank}")
        done.add(rank)

    def require_all_ranks(self, phase: str) -> None:
        done = self.done.get(phase, set())
        if not isinstance(done, set) or len(done) != self.num_ranks:
            raise RuntimeError(
                f"barrier requires pass {phase} on all {self.num_ranks} ranks; "
                f"completed: {sorted(done) if isinstance(done, set) else done}"
            )

    def mark_barrier_done(self, name: str) -> None:
        if self.done.get(name):
            raise RuntimeError(f"barrier {name} already executed")
        self.done[name] = True

    def require_barrier(self, name: str) -> None:
        if not self.done.get(name):
            raise RuntimeError(f"pass requires barrier {name} to have run")


class PartitionedOutputLayerBase:
    """Common constructor/validation/run loop for the three algorithms."""

    #: Communication barriers of the algorithm (set by subclasses).
    num_barriers: ClassVar[int] = -1

    def __init__(self, partition: VocabPartition, weight_shards: list[np.ndarray]):
        if len(weight_shards) != partition.num_shards:
            raise ValueError(
                f"expected {partition.num_shards} weight shards, got {len(weight_shards)}"
            )
        hidden = weight_shards[0].shape[1]
        for rank, shard in enumerate(weight_shards):
            if shard.shape != (partition.shard_size, hidden):
                raise ValueError(
                    f"rank {rank} shard shape {shard.shape} != "
                    f"({partition.shard_size}, {hidden})"
                )
        self.partition = partition
        self.weight_shards = [shard.copy() for shard in weight_shards]
        self.hidden_size = hidden

    @classmethod
    def from_full_weight(
        cls, partition: VocabPartition, weight: np.ndarray
    ) -> "PartitionedOutputLayerBase":
        """Build from an unsharded ``[V, h]`` weight (pads + splits it)."""
        return cls(partition, partition.split_weight(weight))

    # ------------------------------------------------------------------
    # Shared pieces of the algorithms.
    # ------------------------------------------------------------------
    def begin(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> MicrobatchState:
        """C0: broadcast ``X`` from the last stage to every rank."""
        if x.ndim != 2 or x.shape[1] != self.hidden_size:
            raise ValueError(
                f"x must be [n, {self.hidden_size}], got {x.shape}"
            )
        if labels.shape != (x.shape[0],):
            raise ValueError(f"labels shape {labels.shape} != ({x.shape[0]},)")
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= self.partition.vocab_size:
            raise ValueError("labels out of (unpadded) vocabulary range")
        state = MicrobatchState(
            x=x,
            labels=np.asarray(labels),
            grad_scale=float(grad_scale),
            num_ranks=self.partition.num_shards,
        )
        state.comm_log.append("C0:broadcast_x")
        return state

    def _local_logits(self, state: MicrobatchState, rank: int) -> np.ndarray:
        """``Y_r = X W_r^T``, the rank's ``[n, V_pad/p]`` logit shard."""
        return state.x @ self.weight_shards[rank].T

    def _local_label_logit(
        self, state: MicrobatchState, rank: int, logits: np.ndarray
    ) -> np.ndarray:
        """Per-token logit of the true label, zero for labels off-rank.

        Summed across ranks (fused into an existing all-reduce) this
        yields ``Y[i, g_i]`` for the loss without an extra barrier.
        """
        mask = self.partition.local_label_mask(state.labels, rank)
        local = self.partition.local_labels(state.labels, rank)
        rows = np.arange(state.labels.shape[0])
        return np.where(mask, logits[rows, local], 0.0)

    def _losses(self, state: MicrobatchState) -> np.ndarray:
        """Cross-entropy from the reduced max / sum / label-logit."""
        label_logit = state.shared["label_logit"]
        m = state.shared["max"]
        total = state.shared["sum"]
        return -(label_logit - m - np.log(total))

    def run(
        self, x: np.ndarray, labels: np.ndarray, grad_scale: float = 1.0
    ) -> OutputLayerResult:
        """Execute all passes/barriers in canonical order for one microbatch."""
        raise NotImplementedError
