"""Textual rendering of building blocks (the paper's Figures 9/15/16)."""

from __future__ import annotations

from repro.scheduling.building_block import BuildingBlock

_CHARS = {
    "F": "F",
    "B": "B",
    "W": "W",
    "S": "S",
    "T": "T",
    "IF": "i",
    "IB": "b",
    "VF": "V",
    "VB": "v",
}


def render_building_block(
    block: BuildingBlock, width_per_interval: int = 12, intervals: int | None = None
) -> str:
    """Paint a building block's slots on a per-device character grid.

    The window spans from the earliest slot to the latest slot end;
    vertical interval boundaries are marked so lifespan/interval can be
    read off the picture, like the paper's Figure 9.
    """
    if width_per_interval <= 0:
        raise ValueError(f"width_per_interval must be positive, got {width_per_interval}")
    start = min(slot.offset for slots in block.slots for slot in slots)
    end = max(slot.offset + slot.duration for slots in block.slots for slot in slots)
    if intervals is None:
        intervals = int((end - start) / block.interval) + 1
    width = width_per_interval * intervals
    scale = width_per_interval / block.interval
    lines = [
        f"building block: interval={block.interval:.4g}, "
        f"device-0 lifespan={block.lifespan(0):.4g} "
        f"(≈{block.lifespan(0) / block.interval:.2f} intervals)"
    ]
    for device, slots in enumerate(block.slots):
        row = ["."] * width
        for slot in slots:
            lo = int((slot.offset - start) * scale)
            hi = int((slot.offset + slot.duration - start) * scale)
            hi = max(hi, lo + 1)
            char = _CHARS[slot.type.value]
            for col in range(max(lo, 0), min(hi, width)):
                row[col] = char
        # Interval boundary markers.
        for k in range(1, intervals):
            col = int((k * block.interval - (start % block.interval)) * scale)
            if 0 <= col < width and row[col] == ".":
                row[col] = "|"
        lines.append(f"device {device:>2} |{''.join(row)}|")
    return "\n".join(lines)
