"""Post-hoc analysis of executed schedules.

Complements :mod:`repro.sim` with the quantities the paper reasons
about when *explaining* results: where bubbles come from (warmup /
cooldown / steady-state stalls), what the critical path looks like,
how balanced the devices are, and the textual rendering of building
blocks themselves (the paper's Figures 9, 15, 16).
"""

from repro.analysis.bubbles import BubbleBreakdown, bubble_breakdown
from repro.analysis.balance import (
    compute_balance,
    memory_balance,
    BalanceReport,
)
from repro.analysis.blocks import render_building_block

__all__ = [
    "BubbleBreakdown",
    "bubble_breakdown",
    "BalanceReport",
    "compute_balance",
    "memory_balance",
    "render_building_block",
]
