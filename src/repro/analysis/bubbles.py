"""Bubble decomposition: warmup, cooldown and steady-state stalls.

The paper attributes its speedups to removing *steady-state* bubbles
(the per-microbatch idle slots caused by the overloaded output stage,
Figure 1) — warmup/cooldown bubbles are a property of pipeline depth
and microbatch count, shared by all methods.  This module splits a
device's idle time accordingly, so experiments can report exactly the
component Vocabulary Parallelism eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.executor import ExecutionResult


@dataclass
class BubbleBreakdown:
    """Idle-time decomposition for one device.

    ``warmup`` is the idle time before the device's first pass,
    ``cooldown`` the idle time after its last pass, and ``stall`` the
    idle time between passes — the steady-state bubbles the paper's
    methods fight over.
    """

    device: int
    warmup: float
    stall: float
    cooldown: float
    busy: float
    span: float

    @property
    def total_idle(self) -> float:
        return self.warmup + self.stall + self.cooldown

    @property
    def stall_fraction(self) -> float:
        """Steady-state bubble share of the whole iteration."""
        return self.stall / self.span if self.span > 0 else 0.0


def bubble_breakdown(result: ExecutionResult, device: int) -> BubbleBreakdown:
    """Split ``device``'s idle time into warmup / stall / cooldown."""
    rows = result.passes_on(device)
    if not rows:
        raise ValueError(f"device {device} executed no passes")
    iteration_start = min(s for _, (s, _) in result.pass_times.items())
    iteration_end = max(e for _, (_, e) in result.pass_times.items())
    span = iteration_end - iteration_start

    first_start = rows[0][1]
    warmup = first_start - iteration_start
    busy = 0.0
    stall = 0.0
    cursor = first_start
    for _, start, end in rows:
        if start > cursor:
            stall += start - cursor
        busy += end - start
        cursor = max(cursor, end)
    cooldown = iteration_end - cursor
    return BubbleBreakdown(
        device=device,
        warmup=warmup,
        stall=stall,
        cooldown=cooldown,
        busy=busy,
        span=span,
    )
