"""Compute- and memory-balance metrics across pipeline devices.

The paper's claims are balance claims: Vocabulary Parallelism equalizes
per-device *work* (so the pipeline's interval is the mean, not the max)
and per-device *state* (so no device OOMs before the rest).  These
helpers turn an execution/memory report into the scalar imbalance
numbers quoted in §6.3/§6.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.executor import ExecutionResult
from repro.sim.memory import MemoryReport


@dataclass
class BalanceReport:
    """Max/mean ratios over devices for one quantity.

    ``imbalance`` is ``max / mean`` (1.0 = perfectly balanced); the
    pipeline's steady-state slowdown versus a balanced assignment is
    exactly this factor when the quantity is per-microbatch work.
    """

    values: list[float]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def imbalance(self) -> float:
        mean = self.mean
        return max(self.values) / mean if mean > 0 else 1.0

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


def compute_balance(result: ExecutionResult) -> BalanceReport:
    """Per-device busy time balance of one executed iteration."""
    return BalanceReport(values=list(result.device_busy))


def memory_balance(report: MemoryReport) -> BalanceReport:
    """Per-device peak-memory balance."""
    return BalanceReport(values=list(report.per_device_peak))
