"""Deterministic fault injection for the serving stack.

The resilience machinery of :mod:`repro.service` — deadlines, admission
control, the worker-pool circuit breaker, the crash-safe plan cache —
is only trustworthy if its failure paths actually run.  This module is
the correctness engine for all of them: a small set of *named fault
sites* threaded through the real code (cache writes, pool submissions,
response writes) that fire **deterministically** from a seeded
counter-based stream, so a chaos run with a fixed spec produces the
same fault schedule every time and tests can assert exact behaviour.

Fault sites (each a no-op unless a spec arms it):

* ``kill-pool-worker`` — the service deliberately crashes one process
  pool worker before scheduling work (trips the circuit breaker);
* ``slow-worker`` — the service delays a computation by ``delay_ms``
  (exercises deadlines and 504s);
* ``corrupt-cache-entry`` — a just-written :class:`~repro.planner.cache.PlanCache`
  disk entry has payload bytes flipped (checksum verification catches
  it on read and quarantines);
* ``torn-cache-write`` — a cache write is truncated mid-payload, as if
  the process died between ``write`` and ``fsync`` (ditto);
* ``drop-connection-mid-response`` — the HTTP layer writes half a
  response and resets the connection (clients must retry);
* ``kill-shard`` — the fleet supervisor SIGKILLs one shard process at
  a monitor tick (the router must fail over, the supervisor must
  restart it);
* ``hang-shard`` — the fleet supervisor SIGSTOPs one shard process
  (health probes time out; hedged requests answer from the successor
  until the supervisor declares it dead and restarts it);
* ``slow-shard`` — the fleet router delays the primary forward of a
  request by ``delay_ms`` as if the shard were slow (exercises the
  hedging path deterministically).

Arming is either programmatic (:func:`install`) or via the
``REPRO_FAULTS`` environment variable, a ``;``-separated list of
``site:key=value,...`` clauses::

    REPRO_FAULTS='kill-pool-worker:rate=1,after=2,limit=1;slow-worker:rate=0.3,seed=5,delay_ms=150'

Per-site keys: ``rate`` (fire probability per eligible event, default
1), ``seed`` (stream seed, default 0), ``after`` (skip the first N
eligible events, default 0), ``limit`` (maximum fires, default
unlimited), ``delay_ms`` (``slow-worker`` only).  Decisions come from
the same SplitMix64 generator the scenario engine uses
(:mod:`repro.scenarios.perturb`), keyed on ``(seed, site, counter)`` —
no :mod:`random`, no global state beyond the per-site counters.

Everything here is import-cheap and dependency-free: the hot path when
no faults are armed is one ``None`` check.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

#: SplitMix64 constants (Steele, Lea & Flood 2014) — the same stream
#: family as repro.scenarios.perturb, re-stated here so fault injection
#: never imports the simulation stack.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1

#: Every fault site the codebase defines.  Specs naming anything else
#: are rejected loudly — a typo'd site would otherwise silently never
#: fire and the chaos run would assert nothing.
KNOWN_SITES = (
    "kill-pool-worker",
    "slow-worker",
    "corrupt-cache-entry",
    "torn-cache-write",
    "drop-connection-mid-response",
    "kill-shard",
    "hang-shard",
    "slow-shard",
)

#: Environment variable carrying the fault spec (inherited by pool
#: worker processes, so cache-write sites fire inside workers too).
ENV_VAR = "REPRO_FAULTS"


def _splitmix(seed: int, counter: int) -> float:
    """Uniform in [0, 1) for one (seed, counter) pair, 53-bit precision."""
    z = (seed + (counter + 1) * _GOLDEN) & _MASK
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    z ^= z >> 31
    return (z >> 11) / float(1 << 53)


@dataclass(frozen=True)
class Fault:
    """One armed fault site: when and how often it fires."""

    site: str
    #: Fire probability per eligible event (1.0 = every event).
    rate: float = 1.0
    #: Stream seed; two specs differing only in seed fire on different
    #: (but individually reproducible) event subsets.
    seed: int = 0
    #: Skip the first ``after`` eligible events unconditionally.
    after: int = 0
    #: Maximum number of fires (``None`` = unlimited).
    limit: int | None = None
    #: Injected delay for ``slow-worker`` (ignored elsewhere).
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{KNOWN_SITES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"fault 'limit' must be >= 1, got {self.limit}")
        if self.delay_ms < 0:
            raise ValueError(
                f"fault 'delay_ms' must be >= 0, got {self.delay_ms}"
            )


@dataclass
class _SiteState:
    """Mutable per-site counters (events seen, fires issued)."""

    fault: Fault
    events: int = 0
    fires: int = 0


class FaultInjector:
    """A set of armed faults with deterministic per-site streams.

    One injector is a pure function of its spec: the N-th eligible
    event at a site fires iff ``splitmix(seed ^ hash(site), N) < rate``
    (after the ``after`` skip, under the ``limit`` cap).  Counters are
    process-local — a pool worker inheriting ``REPRO_FAULTS`` runs its
    own streams.
    """

    def __init__(self, faults: tuple[Fault, ...] = ()):
        sites = [fault.site for fault in faults]
        if len(sites) != len(set(sites)):
            raise ValueError(f"duplicate fault sites in spec: {sites}")
        self._states = {fault.site: _SiteState(fault) for fault in faults}

    def __bool__(self) -> bool:
        return bool(self._states)

    def fault(self, site: str) -> Fault | None:
        """The armed fault at ``site``, or ``None``."""
        state = self._states.get(site)
        return None if state is None else state.fault

    def should_fire(self, site: str) -> bool:
        """Whether the current eligible event at ``site`` fires.

        Advances the site's event counter; disarmed sites always return
        ``False`` without any state.
        """
        state = self._states.get(site)
        if state is None:
            return False
        fault = state.fault
        index = state.events
        state.events += 1
        if index < fault.after:
            return False
        if fault.limit is not None and state.fires >= fault.limit:
            return False
        # Site name folded into the seed so two sites sharing a seed
        # still draw independent streams.  zlib.crc32 (not hash()) —
        # string hashing is salted per process, and worker processes
        # must draw the same streams as the parent.
        site_seed = fault.seed ^ zlib.crc32(site.encode("utf-8"))
        if _splitmix(site_seed, index) >= fault.rate:
            return False
        state.fires += 1
        return True

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """Per-site event/fire counters (for ``/stats`` and tests)."""
        return {
            site: {
                "rate": state.fault.rate,
                "events": state.events,
                "fires": state.fires,
            }
            for site, state in sorted(self._states.items())
        }


def parse_spec(spec: str) -> FaultInjector:
    """Parse a ``REPRO_FAULTS`` spec string into an injector.

    Format: ``site:key=value,key=value;site2:...`` — clauses separated
    by ``;``, per-site options by ``,``.  A bare ``site`` with no
    options arms it at rate 1.  Raises :class:`ValueError` on unknown
    sites, unknown keys or malformed values — always a one-line
    message naming the bad token and the valid sites, so a typo'd
    ``REPRO_FAULTS`` / ``serve --faults`` spec fails loudly at startup
    instead of silently arming nothing.
    """
    faults: list[Fault] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, _, options = clause.partition(":")
        site = site.strip()
        if site not in KNOWN_SITES:
            hint = (
                "; did you swap '=' for the ':' separating site from "
                "options?" if "=" in site else ""
            )
            raise ValueError(
                f"unknown fault site {site!r} in clause {clause!r}{hint}; "
                f"valid sites: {', '.join(KNOWN_SITES)}"
            )
        kwargs: dict[str, float | int | None] = {}
        for option in options.split(","):
            option = option.strip()
            if not option:
                continue
            key, sep, raw = option.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"fault option {option!r} for site {site!r} is not "
                    "key=value"
                )
            try:
                if key in ("rate", "delay_ms"):
                    kwargs[key] = float(raw)
                elif key in ("seed", "after", "limit"):
                    kwargs[key] = int(raw)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} for site {site!r}; "
                        "expected rate/seed/after/limit/delay_ms"
                    )
            except ValueError as error:
                if "unknown fault option" in str(error):
                    raise
                raise ValueError(
                    f"invalid value {raw!r} for fault option {key!r} "
                    f"(site {site!r})"
                ) from None
        faults.append(Fault(site=site, **kwargs))  # type: ignore[arg-type]
    return FaultInjector(tuple(faults))


#: The process-wide injector.  ``None`` means "not yet resolved from
#: the environment"; an empty FaultInjector means "resolved, disarmed".
_injector: FaultInjector | None = None


def get_injector() -> FaultInjector:
    """The active injector (lazily resolved from ``REPRO_FAULTS``)."""
    global _injector
    if _injector is None:
        spec = os.environ.get(ENV_VAR, "")
        _injector = parse_spec(spec) if spec else FaultInjector()
    return _injector


def install(spec: str | FaultInjector) -> FaultInjector:
    """Arm faults programmatically (tests, benchmarks); returns them."""
    global _injector
    _injector = parse_spec(spec) if isinstance(spec, str) else spec
    return _injector


def reset() -> None:
    """Disarm everything and forget the cached env resolution."""
    global _injector
    _injector = None


def should_fire(site: str) -> bool:
    """Module-level convenience: one eligible event at ``site``."""
    return get_injector().should_fire(site)


def corrupt_bytes(payload: bytes, seed: int = 0) -> bytes:
    """Deterministically flip one byte of ``payload`` (non-empty)."""
    if not payload:
        return payload
    index = int(_splitmix(seed, len(payload)) * len(payload))
    mutated = bytearray(payload)
    mutated[index] ^= 0xFF
    return bytes(mutated)


def _exit_now(code: int = 13) -> None:
    """Hard-kill the current process (the kill-pool-worker payload).

    Top-level so a :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; ``os._exit`` skips atexit handlers exactly like an
    OOM kill or SIGKILL would.
    """
    os._exit(code)
