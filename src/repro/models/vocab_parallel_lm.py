"""TinyLM with vocabulary-parallel embeddings over simulated ranks.

Exactly the model of :mod:`repro.models.tiny_lm`, but the input
embedding goes through :class:`repro.vocab.VocabParallelEmbedding`
(shard gather + all-reduce) and the output layer through one of the
partitioned implementations (naïve / Algorithm 1 / Algorithm 2).  The
transformer-stand-in blocks are untouched — as in the paper, where
vocabulary parallelism changes nothing about the transformer layers.

Because the simulated collectives compute exact sums, training this
model and the reference from the same initialization yields loss curves
equal to float tolerance — the reproduction of Figure 17 / Appendix E.
"""

from __future__ import annotations

import numpy as np

from repro.models.tiny_lm import TinyLM, TinyLMConfig, init_parameters
from repro.vocab import (
    NaiveOutputLayer,
    OutputLayerAlg1,
    OutputLayerAlg2,
    VocabParallelEmbedding,
    VocabPartition,
)

_OUTPUT_IMPLEMENTATIONS = {
    "naive": NaiveOutputLayer,
    "alg1": OutputLayerAlg1,
    "alg2": OutputLayerAlg2,
}


class VocabParallelLM:
    """Vocabulary-parallel TinyLM over ``num_ranks`` simulated devices."""

    def __init__(
        self,
        config: TinyLMConfig,
        num_ranks: int,
        algorithm: str = "alg2",
        params: dict[str, np.ndarray] | None = None,
        seed: int = 0,
    ):
        if algorithm not in _OUTPUT_IMPLEMENTATIONS:
            raise ValueError(
                f"algorithm must be one of {sorted(_OUTPUT_IMPLEMENTATIONS)}, "
                f"got {algorithm!r}"
            )
        self.partition = VocabPartition(config.vocab_size, num_ranks)
        padded = self.partition.padded_size
        # The reference model must pad identically for exact agreement.
        self.config = TinyLMConfig(
            vocab_size=config.vocab_size,
            hidden_size=config.hidden_size,
            num_blocks=config.num_blocks,
            seq_length=config.seq_length,
            padded_vocab_size=padded,
        )
        base = params if params is not None else init_parameters(self.config, seed)
        if base["embedding"].shape[0] != padded:
            raise ValueError(
                f"parameters built for vocab {base['embedding'].shape[0]}, "
                f"expected padded size {padded}"
            )
        self.algorithm = algorithm
        # Blocks + positional stay dense; embeddings live as shards.
        self.trunk = TinyLM(self.config, params=base)
        self.embedding_shards = [
            shard.copy() for shard in np.split(base["embedding"], num_ranks, axis=0)
        ]
        self.output_shards = [
            shard.copy() for shard in np.split(base["output"], num_ranks, axis=0)
        ]

    @property
    def num_ranks(self) -> int:
        return self.partition.num_shards

    def _input_layer(self) -> VocabParallelEmbedding:
        return VocabParallelEmbedding(self.partition, self.embedding_shards)

    def _output_layer(self):
        cls = _OUTPUT_IMPLEMENTATIONS[self.algorithm]
        return cls(self.partition, self.output_shards)

    def loss_and_grads(
        self, tokens: np.ndarray, labels: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Mean cross-entropy and gradients, embeddings as full tensors.

        Gradient keys match :meth:`TinyLM.loss_and_grads`, with the
        embedding gradients assembled from the rank shards (the trainer
        splits them back when updating; keeping the dict interface
        identical lets one optimizer implementation serve both models).
        """
        n = tokens.shape[0]
        input_layer = self._input_layer()
        x_embed, _ = input_layer.forward(tokens)
        x = x_embed + self.trunk.params["positional"]
        x, caches = self.trunk.blocks_forward(x)

        output_layer = self._output_layer()
        result = output_layer.run(x, labels, grad_scale=1.0 / n)
        loss = float(result.losses.mean())

        grads: dict[str, np.ndarray] = {}
        grads["output"] = np.concatenate(result.grad_weight_shards, axis=0)
        dx = self.trunk.blocks_backward(result.grad_input, caches, grads)
        grads["positional"] = dx.copy()
        shard_grads, _ = input_layer.backward(tokens, dx)
        grads["embedding"] = np.concatenate(shard_grads, axis=0)
        return loss, grads

    # -- parameter plumbing for the trainer ----------------------------
    @property
    def params(self) -> dict[str, np.ndarray]:
        """Dense view of all parameters (embeddings re-assembled)."""
        dense = dict(self.trunk.params)
        dense["embedding"] = np.concatenate(self.embedding_shards, axis=0)
        dense["output"] = np.concatenate(self.output_shards, axis=0)
        return dense

    def apply_update(self, name: str, new_value: np.ndarray) -> None:
        """Write back an updated parameter, re-sharding embeddings."""
        if name == "embedding":
            self.embedding_shards = [
                s.copy() for s in np.split(new_value, self.num_ranks, axis=0)
            ]
        elif name == "output":
            self.output_shards = [
                s.copy() for s in np.split(new_value, self.num_ranks, axis=0)
            ]
        else:
            self.trunk.params[name] = new_value
