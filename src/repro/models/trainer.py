"""Adam trainer and synthetic corpus for the convergence comparison.

The corpus is a noisy deterministic token map (each token's successor
is a fixed random permutation entry with probability ``1 - noise``,
uniform otherwise) — enough learnable structure that cross-entropy
falls well below the uniform baseline within a few hundred steps, so
diverging implementations would visibly split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Adam:
    """Standard Adam over a dict of parameters.

    Works with both model variants through the ``params`` /
    ``apply_update`` interface (plain dict assignment for
    :class:`~repro.models.tiny_lm.TinyLM`).
    """

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.step_count = 0
        self.m: dict[str, np.ndarray] = {}
        self.v: dict[str, np.ndarray] = {}

    def step(self, model, grads: dict[str, np.ndarray]) -> None:
        self.step_count += 1
        t = self.step_count
        params = model.params
        for name, grad in grads.items():
            if name not in self.m:
                self.m[name] = np.zeros_like(grad)
                self.v[name] = np.zeros_like(grad)
            self.m[name] = self.beta1 * self.m[name] + (1 - self.beta1) * grad
            self.v[name] = self.beta2 * self.v[name] + (1 - self.beta2) * grad * grad
            m_hat = self.m[name] / (1 - self.beta1**t)
            v_hat = self.v[name] / (1 - self.beta2**t)
            update = params[name] - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if hasattr(model, "apply_update"):
                model.apply_update(name, update)
            else:
                model.params[name] = update


def make_corpus(
    vocab_size: int,
    seq_length: int,
    num_batches: int,
    noise: float = 0.2,
    seed: int = 7,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """(tokens, labels) batches from a noisy permutation successor map."""
    if not 0 <= noise <= 1:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = np.random.default_rng(seed)
    successor = rng.permutation(vocab_size)
    batches = []
    for _ in range(num_batches):
        tokens = rng.integers(0, vocab_size, size=seq_length)
        clean = successor[tokens]
        noisy = rng.integers(0, vocab_size, size=seq_length)
        use_noise = rng.random(seq_length) < noise
        labels = np.where(use_noise, noisy, clean)
        batches.append((tokens, labels))
    return batches


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train(
    model,
    corpus: list[tuple[np.ndarray, np.ndarray]],
    steps: int,
    lr: float = 1e-3,
) -> TrainResult:
    """Run ``steps`` Adam updates cycling through ``corpus``."""
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    optimizer = Adam(lr=lr)
    result = TrainResult()
    for step in range(steps):
        tokens, labels = corpus[step % len(corpus)]
        loss, grads = model.loss_and_grads(tokens, labels)
        result.losses.append(loss)
        optimizer.step(model, grads)
    return result
