"""A tiny language model with a hand-written backward pass.

Architecture: token embedding + learned positional embedding, a stack
of residual tanh-MLP blocks (stand-ins for transformer layers — the
vocabulary-parallel machinery under test never touches their innards),
and an untied output projection with softmax cross-entropy.  Everything
is float64 NumPy so the vocabulary-parallel variant can be compared to
machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vocab.reference import log_softmax, softmax


@dataclass(frozen=True)
class TinyLMConfig:
    """Shape of the toy model.

    ``padded_vocab_size`` lets callers construct the reference model on
    the same padded vocabulary the partitioned variant uses, so the two
    see identical softmax denominators.
    """

    vocab_size: int
    hidden_size: int
    num_blocks: int
    seq_length: int
    padded_vocab_size: int | None = None

    def __post_init__(self) -> None:
        if min(self.vocab_size, self.hidden_size, self.num_blocks, self.seq_length) <= 0:
            raise ValueError("all TinyLMConfig dimensions must be positive")
        if self.padded_vocab_size is None:
            object.__setattr__(self, "padded_vocab_size", self.vocab_size)
        elif self.padded_vocab_size < self.vocab_size:
            raise ValueError("padded_vocab_size must be >= vocab_size")


def init_parameters(config: TinyLMConfig, seed: int = 0) -> dict[str, np.ndarray]:
    """Gaussian init scaled 1/sqrt(h); shared by both model variants."""
    rng = np.random.default_rng(seed)
    h = config.hidden_size
    v = config.padded_vocab_size
    scale = 1.0 / np.sqrt(h)
    params: dict[str, np.ndarray] = {
        "embedding": rng.normal(0.0, scale, size=(v, h)),
        "positional": rng.normal(0.0, scale, size=(config.seq_length, h)),
        "output": rng.normal(0.0, scale, size=(v, h)),
    }
    for i in range(config.num_blocks):
        params[f"block{i}.w1"] = rng.normal(0.0, scale, size=(h, 4 * h))
        params[f"block{i}.b1"] = np.zeros(4 * h)
        params[f"block{i}.w2"] = rng.normal(0.0, 0.5 * scale, size=(4 * h, h))
        params[f"block{i}.b2"] = np.zeros(h)
    return params


class TinyLM:
    """Reference (single-device) model: forward, loss and full backward."""

    def __init__(self, config: TinyLMConfig, params: dict[str, np.ndarray] | None = None,
                 seed: int = 0):
        self.config = config
        self.params = params if params is not None else init_parameters(config, seed)

    # -- shared trunk -------------------------------------------------
    def blocks_forward(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Residual MLP stack; returns output and per-block caches."""
        caches = []
        for i in range(self.config.num_blocks):
            w1, b1 = self.params[f"block{i}.w1"], self.params[f"block{i}.b1"]
            w2, b2 = self.params[f"block{i}.w2"], self.params[f"block{i}.b2"]
            z = np.tanh(x @ w1 + b1)
            caches.append((x, z))
            x = x + z @ w2 + b2
        return x, caches

    def blocks_backward(
        self,
        grad_out: np.ndarray,
        caches: list[tuple[np.ndarray, np.ndarray]],
        grads: dict[str, np.ndarray],
    ) -> np.ndarray:
        """Backward through the stack, filling ``grads``; returns dx."""
        dy = grad_out
        for i in reversed(range(self.config.num_blocks)):
            x, z = caches[i]
            w1 = self.params[f"block{i}.w1"]
            w2 = self.params[f"block{i}.w2"]
            dz = dy @ w2.T
            da = dz * (1.0 - z * z)
            grads[f"block{i}.w2"] = z.T @ dy
            grads[f"block{i}.b2"] = dy.sum(axis=0)
            grads[f"block{i}.w1"] = x.T @ da
            grads[f"block{i}.b1"] = da.sum(axis=0)
            dy = dy + da @ w1.T
        return dy

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Token + positional embedding for one ``[s]`` sequence batch."""
        if tokens.shape[0] != self.config.seq_length:
            raise ValueError(
                f"expected {self.config.seq_length} tokens, got {tokens.shape[0]}"
            )
        return self.params["embedding"][tokens] + self.params["positional"]

    # -- full step ----------------------------------------------------
    def loss_and_grads(
        self, tokens: np.ndarray, labels: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray]]:
        """Mean cross-entropy and gradients for every parameter."""
        n = tokens.shape[0]
        x = self.embed(tokens)
        x, caches = self.blocks_forward(x)
        logits = x @ self.params["output"].T
        logp = log_softmax(logits)
        loss = float(-logp[np.arange(n), labels].mean())

        grads: dict[str, np.ndarray] = {}
        d_logits = softmax(logits)
        d_logits[np.arange(n), labels] -= 1.0
        d_logits /= n
        grads["output"] = d_logits.T @ x
        dx = d_logits @ self.params["output"]
        dx = self.blocks_backward(dx, caches, grads)
        grads["positional"] = dx.copy()
        grad_embedding = np.zeros_like(self.params["embedding"])
        np.add.at(grad_embedding, tokens, dx)
        grads["embedding"] = grad_embedding
        return loss, grads
