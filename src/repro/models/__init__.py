"""Tiny NumPy language models for the convergence check (Figure 17).

The paper validates correctness by comparing loss curves of its
vocabulary-parallel Megatron implementation against the original
codebase (Appendix E).  The equivalent here:
:class:`~repro.models.tiny_lm.TinyLM` is a small language model with a
hand-written backward pass, and
:class:`~repro.models.vocab_parallel_lm.VocabParallelLM` is the same
model with its input and output embeddings partitioned across simulated
pipeline ranks via :mod:`repro.vocab`.  Training both from identical
initialization on the same synthetic corpus must (and does) produce
matching loss curves to float tolerance.
"""

from repro.models.tiny_lm import TinyLM, TinyLMConfig
from repro.models.vocab_parallel_lm import VocabParallelLM
from repro.models.trainer import Adam, TrainResult, make_corpus, train

__all__ = [
    "TinyLM",
    "TinyLMConfig",
    "VocabParallelLM",
    "Adam",
    "TrainResult",
    "train",
    "make_corpus",
]
