"""repro — reproduction of "Balancing Pipeline Parallelism with Vocabulary
Parallelism" (Yeung, Qi, Lin, Wan — MLSys 2025, arXiv:2411.05288).

The package provides:

* exact NumPy implementations of the paper's partitioned vocabulary
  layers (naïve / Algorithm 1 / Algorithm 2, plus the input layer of
  Appendix C) over simulated ranks — :mod:`repro.vocab`;
* the building-block pipeline-scheduling framework and generators for
  1F1B, V-Half and the interlaced pipeline, with and without vocabulary
  passes — :mod:`repro.scheduling`;
* an analytic A100 cost model (Table 4 FLOPs/memory, kernel efficiency,
  α–β communication) — :mod:`repro.costmodel`, :mod:`repro.collectives`;
* a discrete-event simulator executing schedules with per-device
  compute/communication streams, producing iteration time (→ MFU) and
  peak-memory timelines — :mod:`repro.sim`;
* a tiny NumPy language model with hand-written backward used to
  replicate the paper's convergence check (Figure 17) —
  :mod:`repro.models`;
* the experiment harness regenerating every table and figure —
  :mod:`repro.harness`;
* a schedule planner that ranks all schedule families for an arbitrary
  model/hardware description under a memory budget, with cached
  results and parallel grid sweeps — :mod:`repro.planner`;
* cluster scenarios beyond the paper's idealized testbed —
  heterogeneous SKUs, straggler nodes, two-tier interconnects, seeded
  jitter Monte Carlo, and robust (quantile-ranked) planning —
  :mod:`repro.scenarios`.
"""

from repro._lazy import lazy_exports
from repro.config import ModelConfig, ParallelConfig, layers_per_stage
from repro.vocab import VocabPartition

#: NumPy-backed vocabulary layers are exported lazily (PEP 562) so the
#: scheduling/simulation/planner stack imports without NumPy; the
#: :mod:`repro.api` facade names are lazy so ``import repro`` stays
#: cheap for consumers that only want the config types.
__getattr__, __dir__ = lazy_exports(
    "repro",
    {
        "NaiveOutputLayer": "repro.vocab",
        "OutputLayerAlg1": "repro.vocab",
        "OutputLayerAlg2": "repro.vocab",
        "VocabParallelEmbedding": "repro.vocab",
        # The unified facade (PR 10): the supported import surface for
        # downstream consumers — ``from repro import plan, whatif``.
        # ``optimize`` is deliberately absent here: the name would
        # collide with the ``repro.optimize`` subpackage; import it
        # from :mod:`repro.api`.
        "API_VERSION": "repro.api",
        "OptimizedPlan": "repro.api",
        "PlannerConstraints": "repro.api",
        "RankedPlans": "repro.api",
        "WhatifResult": "repro.api",
        "calibrate": "repro.api",
        "get_scenario": "repro.api",
        "grid": "repro.api",
        "list_scenarios": "repro.api",
        "plan": "repro.api",
        "sweep": "repro.api",
        "whatif": "repro.api",
    },
    globals(),
)

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "ModelConfig",
    "OptimizedPlan",
    "ParallelConfig",
    "PlannerConstraints",
    "RankedPlans",
    "VocabPartition",
    "WhatifResult",
    "layers_per_stage",
    "NaiveOutputLayer",
    "OutputLayerAlg1",
    "OutputLayerAlg2",
    "VocabParallelEmbedding",
    "calibrate",
    "get_scenario",
    "grid",
    "list_scenarios",
    "plan",
    "sweep",
    "whatif",
    "__version__",
]
