"""repro — reproduction of "Balancing Pipeline Parallelism with Vocabulary
Parallelism" (Yeung, Qi, Lin, Wan — MLSys 2025, arXiv:2411.05288).

The package provides:

* exact NumPy implementations of the paper's partitioned vocabulary
  layers (naïve / Algorithm 1 / Algorithm 2, plus the input layer of
  Appendix C) over simulated ranks — :mod:`repro.vocab`;
* the building-block pipeline-scheduling framework and generators for
  1F1B, V-Half and the interlaced pipeline, with and without vocabulary
  passes — :mod:`repro.scheduling`;
* an analytic A100 cost model (Table 4 FLOPs/memory, kernel efficiency,
  α–β communication) — :mod:`repro.costmodel`, :mod:`repro.collectives`;
* a discrete-event simulator executing schedules with per-device
  compute/communication streams, producing iteration time (→ MFU) and
  peak-memory timelines — :mod:`repro.sim`;
* a tiny NumPy language model with hand-written backward used to
  replicate the paper's convergence check (Figure 17) —
  :mod:`repro.models`;
* the experiment harness regenerating every table and figure —
  :mod:`repro.harness`;
* a schedule planner that ranks all schedule families for an arbitrary
  model/hardware description under a memory budget, with cached
  results and parallel grid sweeps — :mod:`repro.planner`;
* cluster scenarios beyond the paper's idealized testbed —
  heterogeneous SKUs, straggler nodes, two-tier interconnects, seeded
  jitter Monte Carlo, and robust (quantile-ranked) planning —
  :mod:`repro.scenarios`.
"""

from repro._lazy import lazy_exports
from repro.config import ModelConfig, ParallelConfig, layers_per_stage
from repro.vocab import VocabPartition

#: NumPy-backed vocabulary layers are exported lazily (PEP 562) so the
#: scheduling/simulation/planner stack imports without NumPy.
__getattr__, __dir__ = lazy_exports(
    "repro",
    {
        "NaiveOutputLayer": "repro.vocab",
        "OutputLayerAlg1": "repro.vocab",
        "OutputLayerAlg2": "repro.vocab",
        "VocabParallelEmbedding": "repro.vocab",
    },
    globals(),
)

__version__ = "1.0.0"

__all__ = [
    "ModelConfig",
    "ParallelConfig",
    "layers_per_stage",
    "VocabPartition",
    "NaiveOutputLayer",
    "OutputLayerAlg1",
    "OutputLayerAlg2",
    "VocabParallelEmbedding",
    "__version__",
]
