"""The asyncio planning service: HTTP front, coalescing, tiered caches.

A long-running process that turns the planner's amortization machinery
(structure-keyed caches, budget-independent aux entries, persistent
worker pools) into sustained request throughput, the way serving
systems batch and share state across concurrent queries:

* **HTTP over asyncio streams** — a deliberately minimal HTTP/1.1
  implementation on :func:`asyncio.start_server` (keep-alive,
  ``Content-Length`` bodies, JSON in/out).  Zero dependencies beyond
  the stdlib; the route table is data (:data:`ROUTES`), introspected by
  ``tools/check_docs_links.py`` so the documented endpoints cannot
  drift from the served ones.

* **Request coalescing** — concurrent requests that normalize to the
  same digest share one in-flight computation future: the first caller
  leads (cache probe + pool submission), every other awaiter rides the
  same :class:`asyncio.Task` and receives the identical result object.
  Duplicate bursts — the signature load of "millions of users" hitting
  a handful of popular configurations — cost one plan instead of N.

* **Tiered caches** — lookups go LRU → disk → compute: a bounded
  in-process :class:`~repro.service.lru.LRUPlanTier` of finished
  results in front of the disk-backed (and entry-bounded)
  :class:`~repro.planner.cache.PlanCache`, in front of the worker
  pool.  Hit/miss/coalesce counters for every tier are exported on
  ``GET /stats``.

* **Process-pool execution** — CPU-bound planning runs on the
  persistent pools of :mod:`repro.planner.sweep`
  (:func:`~repro.planner.sweep.get_pool`), so per-worker structural
  caches stay warm across requests exactly as they do across sweep
  chunks.  A broken pool degrades the service to threads (logged and
  visible in ``/stats``) instead of failing requests; shutdown joins
  the workers and reports leaks through the exit code.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import math
import signal
import sys
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

from repro import faultinject
from repro.api import API_VERSION
from repro.planner.cache import PlanCache
from repro.planner.sweep import (
    discard_pool,
    get_pool,
    respawn_pool,
    shutdown_pools,
)
from repro.service.lru import LRUPlanTier
from repro.service.requests import (
    OptimizeRequest,
    PlanRequest,
    RequestError,
    ScenarioRequest,
    SweepRequest,
    WhatifRequest,
    execute_optimize_request,
    execute_plan_request,
    execute_scenario_request,
    execute_sweep_request,
    execute_whatif_request,
    plans_to_json,
    pop_deadline,
    sweep_to_json,
)
from repro.service.resilience import AdmissionController, CircuitBreaker, Shed

logger = logging.getLogger(__name__)

#: Largest accepted request body; planning queries are a few hundred
#: bytes, so anything bigger is a client bug (HTTP 413).
MAX_BODY_BYTES = 1 << 20
#: Budget for one full request to arrive (idle keep-alive wait +
#: request line + headers + body); stalled or idle connections are
#: closed when it expires.
KEEPALIVE_TIMEOUT_S = 75.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def render_response(
    status: int, body: bytes, *, close: bool,
    extra: dict[str, str] | None = None,
    content_type: str = "application/json",
) -> bytes:
    """Frame one HTTP/1.1 response around already-encoded body bytes.

    Shared by the shard service and the fleet router (which passes
    shard response bodies through *verbatim*, so hedged duplicates and
    failovers stay bit-identical to a direct shard answer).
    """
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body


def render_json(
    status: int, payload: dict, *, close: bool,
    extra: dict[str, str] | None = None,
) -> bytes:
    """Frame a JSON payload as one HTTP/1.1 response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return render_response(status, body, close=close, extra=extra)


async def read_http_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request → (method, path, body, close, headers).

    Returns ``None`` on a cleanly closed connection.  Raises
    :class:`~repro.service.requests.RequestError` on malformed input.
    Shared by the shard service and the fleet router; the *whole* read
    is expected to run under the caller's keep-alive timeout.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise RequestError(f"malformed request line {request_line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise RequestError("too many headers")
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise RequestError(
            f"invalid Content-Length {raw_length!r}"
        ) from None
    if length > MAX_BODY_BYTES:
        raise RequestError(f"request body of {length} bytes is too large")
    body = await reader.readexactly(length) if length > 0 else b""
    close = headers.get("connection", "").lower() == "close"
    return method.upper(), path, body, close, headers


@dataclass(frozen=True)
class Route:
    """One served endpoint (also the docs-validation ground truth)."""

    method: str
    path: str
    description: str


#: The service's full route table, in documentation order.  ``tools/
#: check_docs_links.py`` verifies ``docs/service.md`` against this.
ROUTES: tuple[Route, ...] = (
    Route("GET", "/healthz", "liveness/readiness probe"),
    Route("GET", "/stats", "cache, coalescing and executor counters"),
    Route("POST", "/v1/plan", "rank schedule families for one configuration"),
    Route("POST", "/v1/sweep", "plan a grid of configurations"),
    Route(
        "POST", "/v1/scenarios",
        "Monte Carlo robustness under a cluster scenario",
    ),
    Route(
        "POST", "/v1/whatif",
        "price a single-device slowdown by incremental delta replay",
    ),
    Route(
        "POST", "/v1/optimize",
        "rewrite-based search for a schedule beating the named families",
    ),
    Route("POST", "/shutdown", "graceful shutdown (drains in-flight work)"),
)


def envelope(result, *, digest: str, cache: str, started: float) -> dict:
    """The uniform ``/v1/*`` success body.

    Every planning endpoint answers ``{"api_version", "result",
    "meta"}``: the result object under ``result``, provenance under
    ``meta`` (``digest`` — the request's normalized cache key,
    ``cache`` — which tier answered, ``timings`` — wall-clock serving
    time).  ``meta.timings`` varies per request; response-identity
    checks must compare ``meta.digest`` + ``result``, never raw bytes.
    """
    return {
        "api_version": API_VERSION,
        "result": result,
        "meta": {
            "digest": digest,
            "cache": cache,
            "timings": {
                "total_ms": round((time.monotonic() - started) * 1e3, 3)
            },
        },
    }


def error_body(code: str, message: str, hint: str | None = None,
               **extra) -> dict:
    """The uniform error body: ``{"api_version", "error": {...}}``.

    ``code`` is a stable machine-readable slug, ``message`` the human
    diagnosis, ``hint`` what the client should do about it.  Extra
    fields (``retry_after_s``, ``allowed``, ``routes``) ride inside the
    error object.
    """
    return {
        "api_version": API_VERSION,
        "error": {"code": code, "message": message, "hint": hint, **extra},
    }


@dataclass
class ServiceStats:
    """Mutable counters behind ``GET /stats``."""

    requests: dict[str, int] = field(default_factory=dict)
    errors: int = 0
    computed: int = 0
    coalesced: int = 0
    disk_hits: int = 0
    #: Requests refused by admission control (429).
    shed: int = 0
    #: Requests whose ``deadline_ms`` expired (504); the underlying
    #: computation keeps running and lands in the caches.
    deadline_timeouts: int = 0
    #: Connections deliberately reset mid-response by the
    #: ``drop-connection-mid-response`` fault site.
    dropped_connections: int = 0

    def count(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1


class PlanningService:
    """The asyncio planning service (``repro-experiments serve``).

    One instance owns the LRU tier, the optional disk tier, the
    in-flight coalescing map and a handle to the shared worker pools.
    Run it with :meth:`run` (blocking, installs signal handlers — the
    CLI path) or inside an existing loop via :meth:`serve_async`
    (tests, :class:`ServiceThread`).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8181,
        executor: str = "process",
        max_workers: int | None = None,
        cache_dir: str | None = None,
        lru_size: int = 256,
        max_cache_entries: int | None = 1024,
        max_inflight: int = 64,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        default_deadline_ms: float | None = None,
        breaker_backoff_s: float = 0.5,
        faults: str | None = None,
    ):
        if executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                "default_deadline_ms must be > 0, "
                f"got {default_deadline_ms}"
            )
        self.host = host
        self.port = port
        self.executor = executor
        self.max_workers = max_workers
        self.cache_dir = cache_dir
        self.max_cache_entries = max_cache_entries
        self.lru = LRUPlanTier(lru_size)
        self.disk = (
            PlanCache(cache_dir, max_entries=max_cache_entries)
            if cache_dir is not None
            else None
        )
        self.stats = ServiceStats()
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
        )
        self.breaker = CircuitBreaker(backoff_s=breaker_backoff_s)
        self.default_deadline_ms = default_deadline_ms
        if faults:
            faultinject.install(faults)
        else:
            # Resolve REPRO_FAULTS eagerly: a typo'd spec must refuse
            # to start the service, not surface as a 500 on the first
            # request that happens to hit an armed code path.
            faultinject.get_injector()
        self.degraded: str | None = None
        self.started_at: float | None = None
        self._inflight: dict[str, asyncio.Task] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._clients: set[asyncio.Task] = set()

    # -- tiered lookup + coalescing -------------------------------------

    async def _resolve(self, key: str, compute, *, disk: bool, klass: str,
                       tenant: str = ""):
        """One result through the tiers: LRU → coalesce → admit → pool.

        ``compute`` is a zero-argument callable (already bound to its
        request) executed on the worker pool on a full miss.  Returns
        ``(tier, value)`` where ``tier`` names where the value came
        from; followers of an in-flight computation report
        ``"coalesced"`` regardless of the tier the leader lands on.

        Admission control is charged *here*, after the LRU probe and
        the coalesce check and only for would-be leaders — the service
        sheds work, not lookups: cache hits and riders on someone
        else's computation always go through, even at full budget.
        The budget unit is released when the leader finishes, whether
        or not the client that started it is still waiting.
        """
        value = self.lru.get(key)
        if value is not None:
            return "lru", value
        task = self._inflight.get(key)
        if task is not None:
            self.stats.coalesced += 1
            _tier, value = await asyncio.shield(task)
            return "coalesced", value
        self.admission.admit(klass, tenant)  # raises Shed → HTTP 429
        task = asyncio.ensure_future(self._lead(key, compute, disk))
        task.add_done_callback(lambda _t: self.admission.release(klass))
        self._inflight[key] = task
        task.add_done_callback(functools.partial(self._retire, key))
        # Shield the leader too: one cancelled client (connection reset,
        # deadline expiry) must not kill a computation other awaiters
        # are riding — a timed-out leader never poisons the group.
        return await asyncio.shield(task)

    def _retire(self, key: str, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            task.exception()  # mark retrieved; awaiters re-raise their own

    async def _lead(self, key: str, compute, disk: bool):
        """The leader's path: probe the disk tier, else compute."""
        if disk and self.disk is not None:
            value = await asyncio.to_thread(self.disk.get, key)
            if value is not None:
                self.stats.disk_hits += 1
                self.lru.put(key, value)
                return "disk", value
        self.stats.computed += 1
        value = await self._run_on_pool(compute)
        self.lru.put(key, value)
        return "computed", value

    async def _run_on_pool(self, compute):
        """Run one CPU-bound computation on the configured executor.

        The process pool sits behind :class:`CircuitBreaker`: a pool
        that breaks mid-request (a worker OOM-killed, a restricted
        sandbox, the ``kill-pool-worker`` fault site) trips the breaker
        and the request — like every request while the breaker is open
        — runs on the thread fallback instead of failing.  Once the
        breaker's backoff expires, one request probes a freshly
        respawned pool (:func:`~repro.planner.sweep.respawn_pool`); a
        successful probe closes the breaker and restores process
        execution, so a transient crash no longer degrades the service
        for its whole lifetime.
        """
        loop = asyncio.get_running_loop()
        injector = faultinject.get_injector()
        slow = injector.fault("slow-worker")
        if slow is not None and injector.should_fire("slow-worker"):
            await asyncio.sleep(slow.delay_ms / 1000.0)
        if self.executor == "process":
            was_open = self.breaker.state == CircuitBreaker.OPEN
            if self.breaker.allow():
                # ``allow`` flipping open → half-open makes this request
                # the resurrection probe: never reuse the cached (still
                # broken) pool object for it.
                pool = (
                    respawn_pool("process", self.max_workers)
                    if was_open
                    else get_pool("process", self.max_workers)
                )
                if pool is None:
                    self._pool_failed(
                        "process pool unavailable in this environment"
                    )
                else:
                    try:
                        if injector.should_fire("kill-pool-worker"):
                            # Deliberately crash one worker; the broken
                            # pool surfaces as BrokenExecutor below and
                            # the real computation retries on threads.
                            await loop.run_in_executor(
                                pool, faultinject._exit_now
                            )
                        result = await loop.run_in_executor(pool, compute)
                    except BrokenExecutor as exc:
                        self._pool_failed(
                            f"process pool failed "
                            f"({type(exc).__name__}: {exc})"
                        )
                        discard_pool("process", self.max_workers)
                    else:
                        self._pool_recovered()
                        return result
        return await asyncio.to_thread(compute)

    def _pool_failed(self, reason: str) -> None:
        """Trip the breaker and record the degradation for operators."""
        self.breaker.record_failure(reason)
        self.degraded = (
            f"{reason}; serving from threads until the breaker closes"
        )
        logger.warning("service degraded: %s", self.degraded)

    def _pool_recovered(self) -> None:
        """A pool run succeeded: close the breaker if it was probing."""
        if self.breaker.state != CircuitBreaker.CLOSED:
            logger.warning(
                "service recovered: process pool restored after %d "
                "attempt(s)", self.breaker.counters.recovery_attempts,
            )
        self.breaker.record_success()
        self.degraded = None

    # -- endpoint handlers ----------------------------------------------

    async def _post_plan(self, payload, tenant: str = "") -> dict:
        started = time.monotonic()
        request = PlanRequest.from_payload(payload)
        key = request.digest()
        tier, plans = await self._resolve(
            key,
            functools.partial(
                execute_plan_request, request, self.cache_dir,
                self.max_cache_entries,
            ),
            disk=True,
            klass="/v1/plan",
            tenant=tenant,
        )
        return envelope(
            plans_to_json(plans), digest=key, cache=tier, started=started
        )

    async def _post_sweep(self, payload, tenant: str = "") -> dict:
        started = time.monotonic()
        request = SweepRequest.from_payload(payload)
        key = request.digest()
        # No whole-request disk tier: the per-point plans inside the
        # worker hit the disk-backed PlanCache individually.
        tier, outcomes = await self._resolve(
            key,
            functools.partial(
                execute_sweep_request, request, self.cache_dir,
                self.max_cache_entries,
            ),
            disk=False,
            klass="/v1/sweep",
            tenant=tenant,
        )
        return envelope(
            sweep_to_json(outcomes), digest=key, cache=tier, started=started
        )

    async def _post_scenarios(self, payload, tenant: str = "") -> dict:
        started = time.monotonic()
        request = ScenarioRequest.from_payload(payload)
        key = request.digest()
        tier, result = await self._resolve(
            key,
            functools.partial(execute_scenario_request, request),
            disk=False,
            klass="/v1/scenarios",
            tenant=tenant,
        )
        return envelope(result, digest=key, cache=tier, started=started)

    async def _post_whatif(self, payload, tenant: str = "") -> dict:
        started = time.monotonic()
        request = WhatifRequest.from_payload(payload)
        key = request.digest()
        # Same tiering as /v1/plan: the worker stores the rendered
        # payload under the same digest, so the disk probe can hit.
        tier, result = await self._resolve(
            key,
            functools.partial(
                execute_whatif_request, request, self.cache_dir,
                self.max_cache_entries,
            ),
            disk=True,
            klass="/v1/whatif",
            tenant=tenant,
        )
        return envelope(result, digest=key, cache=tier, started=started)

    async def _post_optimize(self, payload, tenant: str = "") -> dict:
        started = time.monotonic()
        request = OptimizeRequest.from_payload(payload)
        key = request.digest()
        # Same tiering as /v1/whatif: the worker stores the rendered
        # payload under the same digest, so the disk probe can hit.
        tier, result = await self._resolve(
            key,
            functools.partial(
                execute_optimize_request, request, self.cache_dir,
                self.max_cache_entries,
            ),
            disk=True,
            klass="/v1/optimize",
            tenant=tenant,
        )
        return envelope(result, digest=key, cache=tier, started=started)

    def _healthz_payload(self) -> dict:
        return {
            "status": "degraded" if self.degraded else "ok",
            "uptime_s": (
                0.0 if self.started_at is None
                else time.monotonic() - self.started_at
            ),
            "executor": "thread" if self.degraded else self.executor,
            "degraded": self.degraded,
            "breaker": self.breaker.state,
        }

    def stats_payload(self) -> dict:
        """The ``GET /stats`` body (public for tests and tools)."""
        disk = {"enabled": self.disk is not None}
        if self.disk is not None:
            disk.update(
                {
                    "hits": self.disk.hits,
                    "misses": self.disk.misses,
                    "entries": len(self.disk),
                    "max_entries": self.disk.max_entries,
                    "evictions": self.disk.evictions,
                    "quarantined": self.disk.quarantined,
                    "directory": str(self.disk.directory),
                }
            )
        return {
            "uptime_s": (
                0.0 if self.started_at is None
                else time.monotonic() - self.started_at
            ),
            "requests": dict(sorted(self.stats.requests.items())),
            "errors": self.stats.errors,
            "computed": self.stats.computed,
            "coalesced": self.stats.coalesced,
            "disk_tier_hits": self.stats.disk_hits,
            "inflight": len(self._inflight),
            "lru": self.lru.stats(),
            "disk": disk,
            "executor": {
                "kind": "thread" if self.degraded else self.executor,
                "max_workers": self.max_workers,
                "degraded": self.degraded,
            },
            "resilience": {
                "shed": self.stats.shed,
                "deadline_timeouts": self.stats.deadline_timeouts,
                "dropped_connections": self.stats.dropped_connections,
                "admission": self.admission.snapshot(),
                "breaker": self.breaker.snapshot(),
                "faults": faultinject.get_injector().snapshot(),
            },
        }

    # -- HTTP plumbing ---------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes,
                        tenant: str = ""):
        """Route one parsed request → (status, payload, extra_headers).

        Planning endpoints run under the request's ``deadline_ms`` (or
        the service default): expiry cancels *this client's wait* and
        answers 504 — the shielded leader computation keeps running and
        lands in the caches, so a timed-out client retrying later hits
        the LRU, and coalesced riders with laxer deadlines are never
        poisoned.  Admission refusals surface as 429 with a
        ``Retry-After`` header.
        """
        path = path.split("?", 1)[0]
        known_paths = {route.path for route in ROUTES}
        route = {(r.method, r.path): r for r in ROUTES}.get((method, path))
        if route is None:
            if path in known_paths:
                allowed = [r.method for r in ROUTES if r.path == path]
                return 405, error_body(
                    "method_not_allowed",
                    f"{method} not allowed on {path}",
                    hint=f"use {' or '.join(allowed)}",
                    allowed=allowed,
                ), {}
            return 404, error_body(
                "not_found",
                f"no route for {path}",
                hint="see the error's 'routes' list for served endpoints",
                routes=[
                    {"method": r.method, "path": r.path} for r in ROUTES
                ],
            ), {}
        self.stats.count(path)
        if path == "/healthz":
            return 200, self._healthz_payload(), {}
        if path == "/stats":
            return 200, self.stats_payload(), {}
        if path == "/shutdown":
            # Respond first, then let the loop see the event: the
            # handler returns, the response drains, the callback fires.
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return 200, {"status": "shutting-down"}, {}
        if self._shutdown_event is not None and self._shutdown_event.is_set():
            # Draining: in-flight work completes, new work is refused.
            return 503, error_body(
                "shutting_down",
                "service is shutting down",
                hint="retry against another shard or after a restart",
            ), {"Retry-After": "1"}
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.stats.errors += 1
            return 400, error_body(
                "bad_request",
                f"request body is not valid JSON: {error}",
                hint="send a JSON object with the endpoint's fields",
            ), {}
        handler = {
            "/v1/plan": self._post_plan,
            "/v1/sweep": self._post_sweep,
            "/v1/scenarios": self._post_scenarios,
            "/v1/whatif": self._post_whatif,
            "/v1/optimize": self._post_optimize,
        }[path]
        try:
            deadline_s = pop_deadline(payload, self.default_deadline_ms)
            work = handler(payload, tenant)
            if deadline_s is not None:
                result = await asyncio.wait_for(work, deadline_s)
            else:
                result = await work
            return 200, result, {}
        except Shed as shed:
            self.stats.shed += 1
            retry_after = max(1, math.ceil(shed.retry_after_s))
            return 429, error_body(
                "rate_limited",
                shed.reason,
                hint="retry after retry_after_s seconds",
                retry_after_s=shed.retry_after_s,
            ), {"Retry-After": str(retry_after)}
        except asyncio.TimeoutError:
            self.stats.deadline_timeouts += 1
            return 504, error_body(
                "deadline_exceeded",
                f"deadline of {deadline_s * 1000:g} ms exceeded",
                hint="the computation continues and will be served from "
                "cache; retry with a laxer deadline_ms",
            ), {}
        except RequestError as error:
            self.stats.errors += 1
            return 400, error_body(
                "bad_request", str(error),
                hint="fix the request body and resend",
            ), {}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - the service must not die
            self.stats.errors += 1
            logger.exception("unhandled error serving %s %s", method, path)
            return 500, error_body(
                "internal", f"{type(error).__name__}: {error}",
                hint="inspect the service log for the traceback",
            ), {}

    @staticmethod
    def _render(
        status: int, payload: dict, *, close: bool,
        extra: dict[str, str] | None = None,
    ) -> bytes:
        return render_json(status, payload, close=close, extra=extra)

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request → (method, path, body, close) or None.

        The *whole* read — request line, headers and body — runs under
        one ``KEEPALIVE_TIMEOUT_S`` budget (enforced by the caller's
        ``wait_for``), so an idle keep-alive connection and a stalled
        mid-request client (slowloris, short body) both get reclaimed
        instead of leaking a connection task forever.
        """
        return await read_http_request(reader)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), KEEPALIVE_TIMEOUT_S
                    )
                except RequestError as error:
                    writer.write(
                        self._render(
                            400,
                            error_body(
                                "bad_request",
                                str(error),
                                hint="send a well-formed HTTP/1.1 request",
                            ),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if parsed is None:
                    break
                method, path, body, client_close, headers = parsed
                tenant = headers.get("x-tenant", "")
                status, payload, extra = await self._dispatch(
                    method, path, body, tenant
                )
                shutting_down = (
                    self._shutdown_event is not None
                    and self._shutdown_event.is_set()
                ) or path.split("?", 1)[0] == "/shutdown"
                close = client_close or shutting_down
                data = self._render(
                    status, payload, close=close, extra=extra
                )
                if (
                    status == 200
                    and path.split("?", 1)[0].startswith("/v1/")
                    and faultinject.should_fire(
                        "drop-connection-mid-response"
                    )
                ):
                    # Write half the bytes, then reset the connection:
                    # the client observes a torn response and must
                    # retry (the result is cached, so the retry is
                    # cheap and bit-identical).
                    self.stats.dropped_connections += 1
                    writer.write(data[: max(1, len(data) // 2)])
                    await writer.drain()
                    writer.transport.abort()
                    break
                writer.write(data)
                await writer.drain()
                if close:
                    break
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (threadsafe; idempotent)."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop closed between the check and the call

    async def serve_async(self, ready=None) -> None:
        """Serve until shutdown is requested; drains in-flight work.

        ``ready`` (if given) is called with the service once the socket
        is bound — ``self.port`` then holds the real port (useful with
        ``port=0``).
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        try:
            async with server:
                if ready is not None:
                    ready(self)
                await self._shutdown_event.wait()
        finally:
            # Stop accepting (the async-with close), then drain: first
            # the computations clients are awaiting, then the client
            # connections themselves.
            pending = list(self._inflight.values()) + list(self._clients)
            if pending:
                done, not_done = await asyncio.wait(pending, timeout=30.0)
                for task in not_done:
                    task.cancel()
                if not_done:
                    await asyncio.wait(not_done, timeout=5.0)

    def run(self, ready=None) -> int:
        """Blocking entry point for the CLI: serve, then clean up.

        Installs SIGINT/SIGTERM handlers for graceful shutdown and
        returns the process exit code: ``0`` on a clean exit, ``1``
        when worker processes were left alive after the pools were
        shut down (a leak a supervisor must know about).
        """

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support in loops
            await self.serve_async(ready=ready)

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - signal-handler gap
            pass
        return shutdown_and_check_workers()


def shutdown_and_check_workers(join_timeout_s: float = 5.0) -> int:
    """Shut the persistent pools down and verify no worker leaked.

    Returns the exit code the ``serve`` subcommand reports: ``1`` when
    any pool worker process is still alive after the join timeout —
    the condition CI's service-smoke job exists to catch.
    """
    import multiprocessing

    shutdown_pools()
    leaked = []
    for process in multiprocessing.active_children():
        process.join(timeout=join_timeout_s)
        if process.is_alive():
            leaked.append(process)
    if leaked:
        print(
            f"error: {len(leaked)} worker process(es) still alive after "
            "shutdown: " + ", ".join(str(p.pid) for p in leaked),
            file=sys.stderr,
        )
        return 1
    return 0


class ServiceThread:
    """Run a :class:`PlanningService` on a background thread.

    The harness tests, benchmarks and the load generator use this to
    get a live server in-process::

        service = PlanningService(port=0, executor="thread")
        with ServiceThread(service) as live:
            url = f"http://{live.host}:{live.port}"

    Exiting the context requests graceful shutdown and joins the
    thread.  The shared worker pools are *not* torn down here (they
    persist across sweeps and services by design); call
    :func:`shutdown_and_check_workers` for a full teardown.
    """

    def __init__(self, service: PlanningService):
        self.service = service
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> PlanningService:
        def runner() -> None:
            try:
                asyncio.run(
                    self.service.serve_async(ready=lambda _s: self._ready.set())
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                self._error = error
            finally:
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="planning-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("planning service did not start within 30s")
        if self._error is not None:
            raise RuntimeError("planning service failed to start") from self._error
        return self.service

    def __exit__(self, *_exc) -> None:
        self.service.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("planning service crashed") from self._error
