"""Consistent-hash front-end router for a planning-service fleet.

The fleet supervisor (:mod:`repro.service.fleet`) runs N shard
subprocesses, each a full :class:`~repro.service.app.PlanningService`
on its own port.  This module is the traffic side of that topology —
one asyncio HTTP front end that keeps availability flat while
individual shards die, hang or slow down:

* **Consistent-hash routing** — every ``/v1/*`` body normalizes to the
  same digest the shard itself would cache under (falling back to a
  raw-body hash for requests a shard would reject), and the digest is
  placed on a :class:`HashRing` with virtual nodes.  Equal queries
  always land on the same shard, so each shard's LRU and coalescing
  map stay as hot as a single process serving the whole keyspace.

* **Failover** — per-shard request-level failure accounting feeds a
  :class:`~repro.service.resilience.CircuitBreaker` per shard: a
  transport error trips it and the request retries on the ring's
  successor shard immediately; while the breaker is open the shard's
  keys route to the successor, and the first request past the backoff
  probes it (half-open).  Shards the supervisor marks ``down`` or
  ``draining`` are skipped outright.

* **Hedging** — a request stuck on a slow shard is duplicated to the
  successor after a p95-derived delay; the first response wins and the
  loser is cancelled.  Deduplication is free: responses are
  digest-keyed and bit-identical, so serving the hedge's bytes is
  indistinguishable from serving the primary's.

* **Observability** — ``GET /stats`` exports per-shard state (breaker,
  restarts, hedges fired/won, failovers) plus live aggregates of the
  shards' own counters, so chaos tests assert on counters instead of
  scraping logs.

The router holds no planning state of its own: shard responses are
passed through *byte-for-byte* (the chaos contract compares them
against a fault-free oracle), and all caching stays in the shards and
the shared disk tier.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import logging
import time
from dataclasses import dataclass, field

from repro import faultinject
from repro.service.app import (
    KEEPALIVE_TIMEOUT_S,
    Route,
    error_body,
    render_json,
    render_response,
    read_http_request,
)
from repro.service.requests import (
    OptimizeRequest,
    PlanRequest,
    RequestError,
    ScenarioRequest,
    SweepRequest,
    WhatifRequest,
)
from repro.service.resilience import CircuitBreaker

logger = logging.getLogger(__name__)

#: Routes served by the fleet router itself.  ``/v1/*`` traffic is
#: proxied to shards (same paths as :data:`repro.service.ROUTES`);
#: these are the router-only control endpoints, validated against
#: ``docs/service.md`` by ``tools/check_docs_links.py`` exactly like
#: the shard routes.
FLEET_ROUTES: tuple[Route, ...] = (
    Route("GET", "/healthz", "fleet liveness (ok while any shard is up)"),
    Route("GET", "/stats", "router counters + per-shard state"),
    Route(
        "POST", "/admin/restart",
        "rolling restart: drain, restart and re-admit one shard at a time",
    ),
    Route("POST", "/shutdown", "graceful fleet shutdown"),
)

#: Request types per proxied path — used only to compute the routing
#: digest; validation errors still surface from the shard so the error
#: contract is identical with and without the router in front.
_REQUEST_TYPES = {
    "/v1/plan": PlanRequest,
    "/v1/sweep": SweepRequest,
    "/v1/scenarios": ScenarioRequest,
    "/v1/whatif": WhatifRequest,
    "/v1/optimize": OptimizeRequest,
}

#: Shard lifecycle states (owned by the supervisor, read by the router).
UP = "up"
STARTING = "starting"
DRAINING = "draining"
DOWN = "down"


def routing_key(path: str, body: bytes) -> str:
    """The consistent-hash key for one proxied request.

    Prefer the shard's own cache digest (so textually different but
    semantically equal bodies share a shard and its warm caches);
    fall back to a hash of the raw body for anything the request layer
    rejects — the shard will render the 400, the router only needs *a*
    deterministic placement.  ``deadline_ms`` never affects placement,
    mirroring :func:`~repro.service.requests.pop_deadline`.
    """
    request_type = _REQUEST_TYPES.get(path)
    if request_type is not None:
        try:
            payload = json.loads(body.decode("utf-8"))
            if isinstance(payload, dict):
                payload.pop("deadline_ms", None)
                return request_type.from_payload(payload).digest()
        except (RequestError, ValueError, UnicodeDecodeError):
            pass
    return hashlib.sha256(
        path.encode("utf-8") + b"\x00" + body
    ).hexdigest()


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``order(key)`` returns every node in ring order starting from the
    key's position — index 0 is the home shard, index 1 the failover /
    hedge successor, and so on.  Adding or removing one node only moves
    the keys that hashed to its virtual points, so a shard restart
    never reshuffles the whole keyspace.
    """

    def __init__(self, nodes: list[str], replicas: int = 64):
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.nodes = list(nodes)
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for node in nodes:
            for replica in range(replicas):
                points.append((self._hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _node in points]
        self._owners = [node for _point, node in points]

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    def order(self, key: str) -> list[str]:
        """All nodes, ring order from ``key``'s position, no repeats."""
        index = bisect.bisect(self._points, self._hash(key))
        seen: list[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(index + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.nodes):
                    break
        return seen


class LatencyWindow:
    """A bounded window of recent latencies with a nearest-rank p95."""

    def __init__(self, size: int = 64):
        self.size = size
        self._values: list[float] = []
        self._next = 0

    def record(self, latency_s: float) -> None:
        if len(self._values) < self.size:
            self._values.append(latency_s)
        else:
            self._values[self._next] = latency_s
            self._next = (self._next + 1) % self.size
        if len(self._values) == self.size:
            self._next %= self.size

    def p95(self) -> float | None:
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          round(0.95 * len(ordered)) - 1))
        return ordered[rank]


@dataclass
class ShardState:
    """One shard as the router and supervisor see it.

    The supervisor owns the lifecycle fields (``state``, ``port``,
    ``pid``, ``restarts``); the router owns the traffic counters.  Both
    live on one object so ``GET /stats`` is a single coherent snapshot.
    """

    shard_id: str
    host: str = "127.0.0.1"
    port: int = 0
    pid: int | None = None
    state: str = STARTING
    #: Times the supervisor restarted this shard (crash or rolling).
    restarts: int = 0
    #: Consecutive health-probe failures (supervisor bookkeeping).
    probe_failures: int = 0
    #: Requests proxied to this shard (attempts, including hedges).
    requests: int = 0
    #: Transport-level failures talking to this shard.
    failures: int = 0
    #: Requests whose home was this shard but that were served by a
    #: successor (shard down, breaker open, or attempt failed).
    failovers: int = 0
    #: Hedged duplicates fired because this shard was slow...
    hedges_fired: int = 0
    #: ...and how many of those hedges answered first.
    hedge_wins: int = 0
    breaker: CircuitBreaker = field(
        default_factory=lambda: CircuitBreaker(backoff_s=0.5)
    )
    latency: LatencyWindow = field(default_factory=LatencyWindow)

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "port": self.port,
            "pid": self.pid,
            "restarts": self.restarts,
            "requests": self.requests,
            "failures": self.failures,
            "failovers": self.failovers,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "breaker": self.breaker.snapshot(),
            "p95_s": self.latency.p95(),
        }


class FleetRouter:
    """The fleet's HTTP front end: route, fail over, hedge, observe.

    ``shards`` is the shared supervisor/router shard table (the
    supervisor mutates states and ports in place).  ``on_restart`` and
    ``on_shutdown`` are supervisor callbacks behind ``POST
    /admin/restart`` and ``POST /shutdown``; tests run the router
    without a supervisor by leaving them ``None``.
    """

    def __init__(
        self,
        shards: list[ShardState],
        *,
        host: str = "127.0.0.1",
        port: int = 8180,
        hedge_min_ms: float = 50.0,
        hedge_max_ms: float = 2000.0,
        hedge_factor: float = 2.0,
        attempt_timeout_s: float = 120.0,
        on_restart=None,
        on_shutdown=None,
    ):
        if not shards:
            raise ValueError("FleetRouter needs at least one shard")
        if hedge_min_ms <= 0 or hedge_max_ms < hedge_min_ms:
            raise ValueError(
                "hedge window must satisfy 0 < hedge_min_ms <= "
                f"hedge_max_ms, got [{hedge_min_ms}, {hedge_max_ms}]"
            )
        self.host = host
        self.port = port
        self.shards = {shard.shard_id: shard for shard in shards}
        self.ring = HashRing([shard.shard_id for shard in shards])
        self.hedge_min_s = hedge_min_ms / 1000.0
        self.hedge_max_s = hedge_max_ms / 1000.0
        self.hedge_factor = hedge_factor
        self.attempt_timeout_s = attempt_timeout_s
        self.on_restart = on_restart
        self.on_shutdown = on_shutdown
        self.started_at: float | None = None
        self.requests: dict[str, int] = {}
        self.errors = 0
        #: Requests answered 502/503 because no shard could serve them.
        self.unrouted = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._clients: set[asyncio.Task] = set()

    # -- shard selection -------------------------------------------------

    def _candidates(self, key: str) -> list[ShardState]:
        """Ring-ordered shards eligible for one request.

        ``up`` shards whose breaker admits traffic come first (the
        breaker's ``allow`` doubles as the half-open probe edge); if
        every breaker refuses, fall back to the up shards anyway — the
        router must degrade to *trying* rather than refusing while any
        shard is alive.
        """
        ordered = [self.shards[sid] for sid in self.ring.order(key)]
        up = [shard for shard in ordered if shard.state == UP]
        allowed = [shard for shard in up if shard.breaker.allow()]
        return allowed if allowed else up

    def hedge_delay_s(self, shard: ShardState) -> float:
        """Seconds to wait on ``shard`` before duplicating the request.

        Derived from the shard's own recent p95 so hedges chase actual
        slowness, clamped to ``[hedge_min, hedge_max]`` so a cold
        window neither hedges instantly nor never.
        """
        p95 = shard.latency.p95()
        derived = self.hedge_min_s if p95 is None else p95 * self.hedge_factor
        return min(self.hedge_max_s, max(self.hedge_min_s, derived))

    # -- proxying --------------------------------------------------------

    async def _attempt(
        self, shard: ShardState, method: str, path: str, body: bytes,
        tenant: str, delay_s: float = 0.0,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One proxied request to one shard (raises on transport error).

        ``delay_s`` is the deterministic ``slow-shard`` fault payload —
        injected *before* the forward, as if the network or the shard
        were slow, so the hedging path runs for real in chaos tests.
        """
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        shard.requests += 1
        start = time.monotonic()
        reader, writer = await asyncio.open_connection(shard.host, shard.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {shard.host}:{shard.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
            )
            if tenant:
                head += f"X-Tenant: {tenant}\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed shard status line {status_line!r}"
                )
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            payload = await reader.readexactly(length) if length else b""
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        shard.latency.record(time.monotonic() - start)
        shard.breaker.record_success()
        extra = {}
        if "retry-after" in headers:
            extra["Retry-After"] = headers["retry-after"]
        return status, payload, extra

    def _attempt_failed(self, shard: ShardState, error: Exception) -> None:
        shard.failures += 1
        shard.breaker.record_failure(
            f"{type(error).__name__}: {error}"
        )

    async def _attempt_hedged(
        self, primary: ShardState, successor: ShardState | None,
        method: str, path: str, body: bytes, tenant: str,
    ) -> tuple[int, bytes, dict[str, str]]:
        """Primary attempt with a delayed duplicate to the successor.

        The duplicate fires once the primary has been quiet past the
        p95-derived delay; whichever attempt answers first wins and the
        loser is cancelled.  Responses are digest-keyed and
        bit-identical, so the winner's bytes are always correct.
        """
        slow = faultinject.get_injector().fault("slow-shard")
        delay_s = (
            slow.delay_ms / 1000.0
            if slow is not None and faultinject.should_fire("slow-shard")
            else 0.0
        )
        primary_task = asyncio.ensure_future(self._attempt(
            primary, method, path, body, tenant, delay_s=delay_s,
        ))
        if successor is None:
            return await asyncio.wait_for(
                primary_task, self.attempt_timeout_s
            )
        done, _pending = await asyncio.wait(
            {primary_task}, timeout=self.hedge_delay_s(primary)
        )
        if done:
            error = primary_task.exception()
            if error is not None and not isinstance(
                error, asyncio.CancelledError
            ):
                self._attempt_failed(primary, error)
            return primary_task.result()  # raises into the failover loop
        primary.hedges_fired += 1
        hedge_task = asyncio.ensure_future(self._attempt(
            successor, method, path, body, tenant,
        ))
        tasks: set[asyncio.Task] = {primary_task, hedge_task}
        deadline = time.monotonic() + self.attempt_timeout_s
        try:
            while tasks:
                done, tasks = await asyncio.wait(
                    tasks,
                    timeout=max(0.0, deadline - time.monotonic()),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    raise asyncio.TimeoutError(
                        f"no shard answered within {self.attempt_timeout_s}s"
                    )
                for task in done:
                    if task.exception() is None:
                        if task is hedge_task:
                            primary.hedge_wins += 1
                        return task.result()
                    failed_shard = (
                        primary if task is primary_task else successor
                    )
                    self._attempt_failed(failed_shard, task.exception())
            raise ConnectionError("both primary and hedge attempts failed")
        finally:
            for task in (primary_task, hedge_task):
                if not task.done():
                    task.cancel()

    async def _forward(
        self, method: str, path: str, body: bytes, tenant: str,
    ) -> tuple[int, bytes, dict[str, str]]:
        """Route one ``/v1/*`` request: pick, hedge, fail over."""
        key = routing_key(path, body)
        home = self.shards[self.ring.order(key)[0]]
        candidates = self._candidates(key)
        if not candidates:
            self.unrouted += 1
            return 503, json.dumps(
                error_body(
                    "no_shard_available",
                    "no shard available (fleet is restarting)",
                    hint="retry after the fleet re-admits a shard",
                    retry_after_s=1,
                ),
                sort_keys=True,
            ).encode("utf-8"), {"Retry-After": "1"}
        last_error: Exception | None = None
        for index, shard in enumerate(candidates):
            if shard is not home:
                home.failovers += 1
            successor = (
                candidates[index + 1] if index + 1 < len(candidates) else None
            )
            try:
                status, payload, extra = await self._attempt_hedged(
                    shard, successor, method, path, body, tenant,
                )
            except asyncio.CancelledError:
                raise
            except (OSError, asyncio.TimeoutError, ConnectionError) as error:
                # _attempt_hedged already recorded per-shard failures
                # for attempts it managed; a bare primary (no
                # successor) records here.
                if successor is None:
                    self._attempt_failed(shard, error)
                last_error = error
                continue
            if status == 503:
                # A draining shard refusing new work is deliberate;
                # retry the successor without penalizing the breaker.
                last_error = ConnectionError("shard draining (503)")
                continue
            return status, payload, extra
        self.unrouted += 1
        self.errors += 1
        return 502, json.dumps(
            error_body(
                "all_shards_failed",
                f"every shard failed (last: {last_error})",
                hint="check shard health via GET /stats",
            ),
            sort_keys=True,
        ).encode("utf-8"), {}

    # -- control endpoints ----------------------------------------------

    def healthz_payload(self) -> dict:
        states = {
            shard_id: shard.state for shard_id, shard in self.shards.items()
        }
        up = sum(1 for state in states.values() if state == UP)
        status = (
            "ok" if up == len(states) else "degraded" if up else "down"
        )
        return {
            "status": status,
            "role": "fleet-router",
            "shards_up": up,
            "shards": states,
            "uptime_s": (
                0.0 if self.started_at is None
                else time.monotonic() - self.started_at
            ),
        }

    async def stats_payload(self) -> dict:
        """Router + per-shard state, with live shard-counter aggregates.

        The aggregate block sums each up shard's own ``/stats``
        (computed, coalesced, LRU and disk hits) so fleet-level tools
        read one endpoint whether they target a shard or the router.
        """
        per_shard = {
            shard_id: shard.snapshot()
            for shard_id, shard in sorted(self.shards.items())
        }
        aggregate = {
            "computed": 0, "coalesced": 0, "lru_hits": 0,
            "disk_tier_hits": 0, "shed": 0,
        }
        for shard in self.shards.values():
            if shard.state != UP:
                continue
            try:
                stats = await asyncio.wait_for(
                    self._fetch_json(shard, "GET", "/stats"), 5.0
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                continue
            aggregate["computed"] += stats.get("computed", 0)
            aggregate["coalesced"] += stats.get("coalesced", 0)
            aggregate["lru_hits"] += stats.get("lru", {}).get("hits", 0)
            aggregate["disk_tier_hits"] += stats.get("disk_tier_hits", 0)
            aggregate["shed"] += stats.get("resilience", {}).get("shed", 0)
        return {
            "role": "fleet-router",
            "uptime_s": (
                0.0 if self.started_at is None
                else time.monotonic() - self.started_at
            ),
            "requests": dict(sorted(self.requests.items())),
            "errors": self.errors,
            "unrouted": self.unrouted,
            "computed": aggregate["computed"],
            "coalesced": aggregate["coalesced"],
            "lru": {"hits": aggregate["lru_hits"]},
            "disk_tier_hits": aggregate["disk_tier_hits"],
            "shed": aggregate["shed"],
            "fleet": {
                "shards": per_shard,
                "hedge_min_ms": self.hedge_min_s * 1000.0,
                "hedge_max_ms": self.hedge_max_s * 1000.0,
                "hedge_factor": self.hedge_factor,
            },
        }

    async def _fetch_json(
        self, shard: ShardState, method: str, path: str,
    ) -> dict:
        status, payload, _extra = await self._attempt(
            shard, method, path, b"",  "",
        )
        if status != 200:
            raise ValueError(f"{path}: HTTP {status}")
        return json.loads(payload.decode("utf-8"))

    # -- HTTP plumbing ---------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes, tenant: str,
    ) -> tuple[int, bytes, dict[str, str]]:
        path = path.split("?", 1)[0]
        self.requests[path] = self.requests.get(path, 0) + 1
        if method == "GET" and path == "/healthz":
            return 200, json.dumps(
                self.healthz_payload(), sort_keys=True
            ).encode("utf-8"), {}
        if method == "GET" and path == "/stats":
            return 200, json.dumps(
                await self.stats_payload(), sort_keys=True
            ).encode("utf-8"), {}
        if method == "POST" and path == "/admin/restart":
            if self.on_restart is None:
                return 503, json.dumps(
                    error_body(
                        "no_supervisor",
                        "no supervisor attached",
                        hint="rolling restarts need a FleetSupervisor",
                    ),
                    sort_keys=True,
                ).encode("utf-8"), {}
            accepted, detail = self.on_restart()
            status = 200 if accepted else 409
            return status, json.dumps(
                {"status": detail}, sort_keys=True
            ).encode("utf-8"), {}
        if method == "POST" and path == "/shutdown":
            if self.on_shutdown is not None:
                asyncio.get_running_loop().call_soon(self.on_shutdown)
            else:
                asyncio.get_running_loop().call_soon(self.request_shutdown)
            return 200, b'{"status": "shutting-down"}', {}
        if path in _REQUEST_TYPES:
            if method != "POST":
                return 405, json.dumps(
                    error_body(
                        "method_not_allowed",
                        f"{method} not allowed on {path}",
                        hint="use POST",
                        allowed=["POST"],
                    ),
                    sort_keys=True,
                ).encode("utf-8"), {}
            if (
                self._shutdown_event is not None
                and self._shutdown_event.is_set()
            ):
                return 503, json.dumps(
                    error_body(
                        "shutting_down",
                        "fleet is shutting down",
                        hint="the fleet is draining; do not retry here",
                        retry_after_s=1,
                    ),
                    sort_keys=True,
                ).encode("utf-8"), {"Retry-After": "1"}
            try:
                return await self._forward(method, path, body, tenant)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - router must not die
                self.errors += 1
                logger.exception("router error on %s %s", method, path)
                return 502, json.dumps(
                    error_body(
                        "router_error",
                        f"{type(error).__name__}: {error}",
                        hint="router-side failure; see the router log",
                    ),
                    sort_keys=True,
                ).encode("utf-8"), {}
        known = {route.path for route in FLEET_ROUTES} | set(_REQUEST_TYPES)
        if path in known:
            allowed = sorted(
                {
                    route.method
                    for route in FLEET_ROUTES
                    if route.path == path
                }
                or {"POST"}
            )
            return 405, json.dumps(
                error_body(
                    "method_not_allowed",
                    f"{method} not allowed on {path}",
                    hint=f"use {' or '.join(allowed)}",
                    allowed=allowed,
                ),
                sort_keys=True,
            ).encode("utf-8"), {}
        return 404, json.dumps(
            error_body(
                "not_found",
                f"no route for {path}",
                hint="see the routes list for the supported endpoints",
                routes=[
                    {"method": route.method, "path": route.path}
                    for route in FLEET_ROUTES
                ] + [
                    {"method": "POST", "path": proxied}
                    for proxied in sorted(_REQUEST_TYPES)
                ],
            ),
            sort_keys=True,
        ).encode("utf-8"), {}

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        read_http_request(reader), KEEPALIVE_TIMEOUT_S
                    )
                except RequestError as error:
                    writer.write(
                        render_json(
                            400,
                            error_body(
                                "bad_request",
                                str(error),
                                hint="send a well-formed HTTP/1.1 request",
                            ),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if parsed is None:
                    break
                method, path, body, client_close, headers = parsed
                status, payload, extra = await self._dispatch(
                    method, path, body, headers.get("x-tenant", "")
                )
                shutting_down = (
                    self._shutdown_event is not None
                    and self._shutdown_event.is_set()
                ) or path.split("?", 1)[0] == "/shutdown"
                close = client_close or shutting_down
                writer.write(
                    render_response(status, payload, close=close, extra=extra)
                )
                await writer.drain()
                if close:
                    break
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin router shutdown (threadsafe; idempotent)."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    async def serve_async(self, ready=None) -> None:
        """Serve until shutdown; drains in-flight client connections."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        try:
            async with server:
                if ready is not None:
                    ready(self)
                await self._shutdown_event.wait()
        finally:
            pending = list(self._clients)
            if pending:
                done, not_done = await asyncio.wait(pending, timeout=30.0)
                for task in not_done:
                    task.cancel()
                if not_done:
                    await asyncio.wait(not_done, timeout=5.0)
