"""Resilience primitives for the planning service.

Three small, independently testable machines that
:class:`~repro.service.app.PlanningService` threads through its request
path, each with an injectable clock so tests drive the state machines
deterministically:

* :class:`TokenBucket` / :class:`AdmissionController` — **admission
  control**.  Work that would reach the compute tier is charged against
  a bounded per-class in-flight budget and (optionally) a per-tenant
  token bucket keyed on the ``X-Tenant`` header; anything over budget
  is *shed* with a :class:`Shed` exception the HTTP layer renders as
  ``429`` + ``Retry-After``.  Cache hits and coalesced riders are never
  charged — the service sheds *work*, not lookups.

* :class:`CircuitBreaker` — supervised recovery around the worker
  pool.  A broken process pool trips the breaker ``closed → open``;
  requests degrade to threads while it is open; after an
  exponentially-growing backoff one request probes the resurrected
  pool (``half-open``), and a successful probe closes the breaker —
  transient worker crashes no longer degrade the service for its whole
  lifetime.  The state machine is visible in ``/healthz`` and
  ``/stats`` (``degraded_since``, ``recovery_attempts``, …).

Deadline extraction (``deadline_ms``) lives with the rest of request
validation in :func:`repro.service.requests.pop_deadline`; the fault
injection that exercises all of these paths is
:mod:`repro.faultinject`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Shed(Exception):
    """A request refused by admission control (rendered as HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: float):
        super().__init__(reason)
        self.reason = reason
        #: Client guidance: seconds until capacity is plausible again.
        self.retry_after_s = retry_after_s


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``try_acquire`` returns ``0.0`` on success or the seconds until
    enough tokens will have accrued — the number the HTTP layer turns
    into ``Retry-After``.  Time comes from the injected ``clock`` so
    tests advance it manually.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def try_acquire(self, amount: float = 1.0) -> float:
        """Take ``amount`` tokens; 0.0 if taken, else seconds to wait."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now
        if self._tokens >= amount:
            self._tokens -= amount
            return 0.0
        return (amount - self._tokens) / self.rate


#: Hard cap on distinct tenant buckets kept alive (oldest dropped
#: first) — an attacker inventing tenant names must not grow memory.
MAX_TENANT_BUCKETS = 1024


class AdmissionController:
    """Bounded in-flight budget per request class + per-tenant buckets.

    A *class* is the endpoint path (``/v1/plan``, ``/v1/sweep``, …);
    each class may have at most ``max_inflight`` leaders in the compute
    tier at once.  Tenants (the ``X-Tenant`` header; missing header =
    the ``""`` tenant) are additionally rate-limited by token buckets
    when ``tenant_rate`` is set.  :meth:`admit` raises :class:`Shed`
    instead of returning so call sites cannot forget to check; every
    successful admit must be paired with :meth:`release`.
    """

    def __init__(
        self,
        max_inflight: int = 64,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        clock=time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate if tenant_rate else None
        self.tenant_burst = (
            float(tenant_burst)
            if tenant_burst
            else (max(1.0, 2.0 * tenant_rate) if self.tenant_rate else None)
        )
        self._clock = clock
        self._inflight: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}
        #: Admission timestamps per class (oldest first) so releases can
        #: measure how long one unit of compute-tier work actually held
        #: its slot — the basis of the in-flight ``Retry-After``.
        self._admitted_at: dict[str, list[float]] = {}
        #: EWMA of observed work durations across all classes (seconds);
        #: ``None`` until the first release.
        self.work_ewma_s: float | None = None
        self.admitted = 0
        self.shed_inflight = 0
        self.shed_tenant = 0
        self.shed_by_class: dict[str, int] = {}

    def retry_after_s(self) -> float:
        """Expected seconds until an in-flight slot frees.

        With ``max_inflight`` leaders in flight whose durations average
        ``work_ewma_s`` and whose phases are spread out, the next slot
        frees in roughly ``work_ewma_s / max_inflight`` — the number
        the HTTP layer renders as ``Retry-After`` (``max(1, ceil(.))``)
        when the in-flight budget sheds.  Before any work has completed
        there is nothing to derive from, so fall back to one second.
        """
        if self.work_ewma_s is None:
            return 1.0
        return max(0.05, self.work_ewma_s / self.max_inflight)

    def admit(self, klass: str, tenant: str = "") -> None:
        """Charge one unit of compute-tier work, or raise :class:`Shed`."""
        inflight = self._inflight.get(klass, 0)
        if inflight >= self.max_inflight:
            self.shed_inflight += 1
            self.shed_by_class[klass] = self.shed_by_class.get(klass, 0) + 1
            raise Shed(
                f"{klass} is at its in-flight budget "
                f"({inflight}/{self.max_inflight}); shedding",
                retry_after_s=self.retry_after_s(),
            )
        if self.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                while len(self._buckets) >= MAX_TENANT_BUCKETS:
                    self._buckets.pop(next(iter(self._buckets)))
                bucket = TokenBucket(
                    self.tenant_rate, self.tenant_burst, clock=self._clock
                )
                self._buckets[tenant] = bucket
            wait = bucket.try_acquire()
            if wait > 0.0:
                self.shed_tenant += 1
                self.shed_by_class[klass] = (
                    self.shed_by_class.get(klass, 0) + 1
                )
                raise Shed(
                    f"tenant {tenant or '<default>'} is over its rate "
                    f"({self.tenant_rate}/s); shedding",
                    retry_after_s=wait,
                )
        self._inflight[klass] = inflight + 1
        self._admitted_at.setdefault(klass, []).append(self._clock())
        self.admitted += 1

    def release(self, klass: str) -> None:
        """Return one unit of ``klass`` budget (pairs with :meth:`admit`)."""
        remaining = self._inflight.get(klass, 0) - 1
        if remaining > 0:
            self._inflight[klass] = remaining
        else:
            self._inflight.pop(klass, None)
        starts = self._admitted_at.get(klass)
        if starts:
            # Oldest-start pairing is an approximation when leaders of
            # one class overlap, but the EWMA only feeds Retry-After
            # guidance, where the scale matters, not the exact pairing.
            duration = max(0.0, self._clock() - starts.pop(0))
            if not starts:
                self._admitted_at.pop(klass, None)
            self.work_ewma_s = (
                duration
                if self.work_ewma_s is None
                else 0.3 * duration + 0.7 * self.work_ewma_s
            )

    def snapshot(self) -> dict:
        """Counter snapshot for the ``/stats`` endpoint."""
        return {
            "max_inflight": self.max_inflight,
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "work_ewma_s": self.work_ewma_s,
            "retry_after_s": self.retry_after_s(),
            "inflight": dict(sorted(self._inflight.items())),
            "admitted": self.admitted,
            "shed_inflight": self.shed_inflight,
            "shed_tenant": self.shed_tenant,
            "shed_by_class": dict(sorted(self.shed_by_class.items())),
            "tenants": len(self._buckets),
        }


@dataclass
class _BreakerCounters:
    """The observable history of one breaker (exported on ``/stats``)."""

    trips: int = 0
    recoveries: int = 0
    recovery_attempts: int = 0
    last_failure: str | None = None
    degraded_since: float | None = field(default=None)


class CircuitBreaker:
    """Closed → open → half-open breaker with exponential backoff.

    * ``closed`` — the protected resource (the process pool) is
      healthy; :meth:`allow` returns ``True``.
    * ``open`` — a failure tripped the breaker; :meth:`allow` returns
      ``False`` until the current backoff expires, then transitions to
      ``half-open`` (counting a *recovery attempt*) and lets one
      request probe.
    * ``half-open`` — a probe is in flight.  :meth:`record_success`
      closes the breaker (a *recovery*); :meth:`record_failure`
      re-opens it with a doubled backoff (capped).

    The service keeps serving throughout — open/half-open requests that
    are not probes run on the thread fallback — so the breaker governs
    *where* work runs, never *whether* it runs.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        backoff_s: float = 0.5,
        max_backoff_s: float = 30.0,
        clock=time.monotonic,
    ):
        if backoff_s <= 0:
            raise ValueError(f"backoff_s must be > 0, got {backoff_s}")
        self.state = self.CLOSED
        self.base_backoff_s = backoff_s
        self.max_backoff_s = max(backoff_s, max_backoff_s)
        self._clock = clock
        self._backoff_s = backoff_s
        self._retry_at: float | None = None
        self.counters = _BreakerCounters()

    def allow(self) -> bool:
        """Whether the protected resource may be used right now.

        In ``open`` state this is also the transition edge: once the
        backoff has expired the breaker moves to ``half-open`` and the
        caller becomes the probe.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._retry_at is not None and self._clock() >= self._retry_at:
                self.state = self.HALF_OPEN
                self.counters.recovery_attempts += 1
                return True
            return False
        return True  # half-open: the probe (and any riders) proceed

    def record_failure(self, reason: str) -> None:
        """The protected resource failed: trip (or re-open) the breaker."""
        tripped_from_closed = self.state == self.CLOSED
        self.counters.last_failure = reason
        if tripped_from_closed:
            self.counters.trips += 1
        if self.counters.degraded_since is None:
            self.counters.degraded_since = self._clock()
        self.state = self.OPEN
        self._retry_at = self._clock() + self._backoff_s
        # Double *after* scheduling: first retry waits the base backoff,
        # each failed probe doubles the next wait, capped.
        self._backoff_s = min(self._backoff_s * 2.0, self.max_backoff_s)

    def record_success(self) -> None:
        """The protected resource worked: close the breaker (if open)."""
        if self.state == self.CLOSED:
            return
        if self.state == self.HALF_OPEN:
            self.counters.recoveries += 1
        self.state = self.CLOSED
        self.counters.degraded_since = None
        self._backoff_s = self.base_backoff_s
        self._retry_at = None

    def snapshot(self) -> dict:
        """State + counters for ``/healthz`` and ``/stats``.

        ``degraded_since`` is reported as *seconds spent degraded so
        far* (``null`` when healthy) so operators can tell a transient
        blip from a permanently broken pool at a glance;
        ``retry_in_s`` is how long until the next resurrection probe.
        """
        now = self._clock()
        degraded_for = (
            None
            if self.counters.degraded_since is None
            else max(0.0, now - self.counters.degraded_since)
        )
        retry_in = (
            None
            if self.state != self.OPEN or self._retry_at is None
            else max(0.0, self._retry_at - now)
        )
        return {
            "state": self.state,
            "trips": self.counters.trips,
            "recoveries": self.counters.recoveries,
            "recovery_attempts": self.counters.recovery_attempts,
            "degraded_since": degraded_for,
            "retry_in_s": retry_in,
            "backoff_s": self._backoff_s,
            "last_failure": self.counters.last_failure,
        }
