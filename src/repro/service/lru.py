"""Bounded in-process LRU tier over digest-keyed planning results.

The hottest tier of the service's cache hierarchy: a fixed-capacity
least-recently-used map from the planner's whole-plan digests (and the
service's request digests for sweep/scenario queries) to the finished
result objects.  Sits in front of the disk-backed
:class:`~repro.planner.cache.PlanCache` — a hit returns in microseconds
with no pickle load, no pool round-trip and no planning.

Unlike :class:`~repro.planner.cache.PlanCache`'s oldest-first bound,
this tier is *recency*-ordered: a ``get`` refreshes the entry, so a hot
working set survives a stream of one-off queries.  Accesses are
expected from one thread (the service's event loop); the structure is a
plain :class:`~collections.OrderedDict` with O(1) get/put.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any


class LRUPlanTier:
    """Fixed-capacity LRU of planning results, keyed by digest.

    ``hits``/``misses``/``evictions`` counters feed the service's
    ``/stats`` endpoint.  Values are treated as immutable (the planner's
    contract for cached :class:`~repro.planner.planner.RankedPlans`),
    so hits return the stored object itself.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership without touching recency or counters."""
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """The stored value (refreshed to most-recent), or ``None``."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> Any | None:
        """The stored value without touching recency or hit/miss counters.

        For observers — admission-control decisions, tests, tools
        probing tier state — that must not perturb the eviction order
        or the ``/stats`` numbers the way a real lookup would.
        """
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``; evicts the least-recent beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def keys(self) -> list[str]:
        """Keys from least- to most-recently used (for tests/stats)."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the ``/stats`` endpoint."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
