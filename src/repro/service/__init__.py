"""Long-running planning service (``repro-experiments serve``).

Turns the planner's one-shot CLI into sustained serving: an asyncio
HTTP front end (stdlib only) with request coalescing, a tiered
LRU → disk → compute cache hierarchy, and CPU-bound planning scheduled
on the persistent worker pools sweeps already keep warm.  See
``docs/service.md`` for the endpoint and deployment reference.

Programmatic entry points:

* :class:`PlanningService` — the server; :meth:`~PlanningService.run`
  blocks (CLI), :class:`ServiceThread` hosts it on a thread (tests,
  benchmarks, the load generator);
* :class:`PlanRequest` / :class:`SweepRequest` /
  :class:`ScenarioRequest` / :class:`WhatifRequest` — validated
  request bodies, each normalizing to a cache digest;
* :class:`~repro.service.lru.LRUPlanTier` — the bounded in-process hot
  tier;
* :class:`~repro.service.resilience.AdmissionController` /
  :class:`~repro.service.resilience.CircuitBreaker` — the resilience
  machinery (deadlines, load shedding, supervised pool recovery; see
  the "Resilience" section of ``docs/service.md``);
* :data:`ROUTES` — the served route table (ground truth for docs
  validation);
* :class:`~repro.service.fleet.FleetSupervisor` /
  :class:`~repro.service.router.FleetRouter` — the sharded topology
  (``serve --fleet N``): N shard subprocesses behind a consistent-hash
  router with failover, hedging and supervised restarts;
  :data:`FLEET_ROUTES` is the router's own route table.
"""

from repro.service.app import (
    ROUTES,
    PlanningService,
    Route,
    ServiceStats,
    ServiceThread,
    shutdown_and_check_workers,
)
from repro.service.fleet import FleetSupervisor
from repro.service.lru import LRUPlanTier
from repro.service.requests import (
    MAX_SWEEP_POINTS,
    PlanRequest,
    RequestError,
    ScenarioRequest,
    SweepRequest,
    WhatifRequest,
    execute_plan_request,
    execute_scenario_request,
    execute_sweep_request,
    execute_whatif_request,
    plans_to_json,
    pop_deadline,
    sweep_to_json,
)
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    Shed,
    TokenBucket,
)
from repro.service.router import (
    FLEET_ROUTES,
    FleetRouter,
    HashRing,
    ShardState,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "FLEET_ROUTES",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "LRUPlanTier",
    "MAX_SWEEP_POINTS",
    "PlanRequest",
    "PlanningService",
    "RequestError",
    "ROUTES",
    "Route",
    "ScenarioRequest",
    "ServiceStats",
    "ServiceThread",
    "ShardState",
    "Shed",
    "SweepRequest",
    "TokenBucket",
    "WhatifRequest",
    "execute_plan_request",
    "execute_scenario_request",
    "execute_sweep_request",
    "execute_whatif_request",
    "plans_to_json",
    "pop_deadline",
    "shutdown_and_check_workers",
    "sweep_to_json",
]
