"""Request layer of the planning service: validate, normalize, execute.

Every HTTP body is parsed into a frozen request dataclass
(:class:`PlanRequest`, :class:`SweepRequest`, :class:`ScenarioRequest`,
:class:`WhatifRequest`) with strict validation — unknown fields, wrong types and out-of-range
values all raise :class:`RequestError`, which the HTTP layer renders as
a 400 instead of a traceback.  A validated request *normalizes to a
digest*: plan requests resolve to the planner's own whole-plan cache
key (:func:`repro.planner.plan_cache_key`), so the service's LRU tier,
the disk-backed :class:`~repro.planner.cache.PlanCache` and the
planner's process-local cache all address the same entry; sweep and
scenario requests digest their normalized fields (scenario identity
enters as the full :meth:`~repro.scenarios.cluster.ClusterScenario.signature`,
never just the name).

The ``execute_*`` functions are the CPU-bound bodies scheduled on the
service's worker pool.  They are top-level so a
:class:`~concurrent.futures.ProcessPoolExecutor` can pickle them, and
they deliberately run through the same code paths as the CLI
(:func:`~repro.planner.plan` / :func:`~repro.planner.plan_points` /
:func:`~repro.scenarios.method_robustness`), so per-worker structural
and plan caches stay warm across requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import KNOWN_METHODS
from repro.optimize import (
    DEFAULT_BUDGET,
    STRATEGY_NAMES,
    optimize,
    optimize_cache_key,
)
from repro.planner.cache import PlanCache, config_digest
from repro.planner.estimate import infeasibility_reason
from repro.planner.planner import (
    PLANNER_VERSION,
    PlannerConstraints,
    RankedPlans,
    plan,
    plan_cache_key,
)
from repro.planner.sweep import (
    SweepOutcome,
    SweepPoint,
    grid,
    model_for_devices,
    plan_points,
)
from repro.planner.whatif import whatif, whatif_cache_key
from repro.scenarios import (
    ClusterScenario,
    RobustnessObjective,
    get_scenario,
    method_robustness,
)

#: Upper bound on grid points a single sweep request may expand to —
#: the request-level guard against one query monopolizing the pool.
MAX_SWEEP_POINTS = 512


class RequestError(ValueError):
    """A malformed or invalid request body (rendered as HTTP 400)."""


_MISSING = object()


def _field(
    payload: dict,
    name: str,
    types: type | tuple[type, ...],
    default: Any = _MISSING,
    *,
    convert: Any = None,
) -> Any:
    """One validated field: present-and-typed, or the default.

    ``bool`` is a subclass of ``int``; requests reject the confusion
    (``"devices": true``) unless bool is explicitly allowed.
    """
    if name not in payload:
        if default is _MISSING:
            raise RequestError(f"missing required field {name!r}")
        return default
    value = payload[name]
    if value is None and default is not _MISSING:
        return default
    if not isinstance(value, types) or (
        isinstance(value, bool)
        and not (types is bool or (isinstance(types, tuple) and bool in types))
    ):
        raise RequestError(
            f"field {name!r} must be {_type_names(types)}, "
            f"got {type(value).__name__}"
        )
    if convert is not None:
        value = convert(name, value)
    return value


def _type_names(types: type | tuple[type, ...]) -> str:
    if not isinstance(types, tuple):
        types = (types,)
    return "/".join(t.__name__ for t in types)


def _coerce_vocab(name: str, value: int | str) -> int:
    """A vocabulary size: ``131072`` or ``"128k"``."""
    if isinstance(value, str):
        text = value.strip().lower()
        try:
            value = int(text[:-1]) * 1024 if text.endswith("k") else int(text)
        except ValueError:
            raise RequestError(
                f"field {name!r}: invalid vocabulary size {text!r}; "
                "use e.g. 131072 or '128k'"
            ) from None
    if value <= 0:
        raise RequestError(f"field {name!r} must be positive, got {value}")
    return value


def _positive(name: str, value: int | float) -> int | float:
    if value <= 0:
        raise RequestError(f"field {name!r} must be positive, got {value}")
    return value


def _non_negative(name: str, value: int | float) -> int | float:
    if value < 0:
        raise RequestError(f"field {name!r} must be >= 0, got {value}")
    return value


def pop_deadline(payload: Any, default_ms: float | None = None) -> float | None:
    """Extract ``deadline_ms`` from a parsed body → deadline in *seconds*.

    Every ``POST /v1/*`` body may carry ``deadline_ms`` (a positive
    number of milliseconds the client is willing to wait); the HTTP
    layer enforces it with a 504 on expiry.  The field is **popped**
    before the request dataclass ever sees the payload, so a deadline
    never changes a request's digest — two clients asking the same
    question with different patience share one cache entry and one
    coalesced computation.  Returns ``default_ms`` (converted) when the
    field is absent; raises :class:`RequestError` (→ 400) on a
    non-positive or non-numeric value.
    """
    if not isinstance(payload, dict) or "deadline_ms" not in payload:
        raw = default_ms
    else:
        raw = payload.pop("deadline_ms")
        if raw is None:
            raw = default_ms
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
        raise RequestError(
            f"field 'deadline_ms' must be a positive number of "
            f"milliseconds, got {raw!r}"
        )
    return float(raw) / 1000.0


def _reject_unknown(payload: dict, known: tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise RequestError(
            f"unknown field(s) in {what} request: {', '.join(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )


def _methods_tuple(payload: dict) -> tuple[str, ...] | None:
    methods = _field(payload, "methods", list, None)
    if methods is None:
        return None
    for method in methods:
        if method not in KNOWN_METHODS:
            raise RequestError(
                f"unknown method {method!r}; expected one of {KNOWN_METHODS}"
            )
    return tuple(methods)


def _top_k(payload: dict) -> int | None:
    """``simulate_top_k``: an int >= 0, or ``"all"`` to simulate everything."""
    value = _field(payload, "simulate_top_k", (int, str), 3)
    if isinstance(value, str):
        if value.strip().lower() == "all":
            return None
        raise RequestError(
            f"field 'simulate_top_k' must be an int >= 0 or 'all', got {value!r}"
        )
    return int(_non_negative("simulate_top_k", value))


def _scenario_name(payload: dict, field: str = "scenario") -> str | None:
    name = _field(payload, field, str, None)
    if name is not None:
        try:
            get_scenario(name)
        except KeyError as error:
            raise RequestError(str(error.args[0])) from None
    return name


def _cost_model_name(payload: dict) -> str | None:
    """``cost_model``: a resolvable cost-model name, or ``None``.

    Resolved eagerly so an unknown profile is a 400 at validation time,
    not a traceback inside a pool worker; only built-in names resolve
    there (runtime registrations are process-local).
    """
    name = _field(payload, "cost_model", str, None)
    if name is not None:
        from repro.costmodel.calibrate import get_cost_model

        try:
            get_cost_model(name)
        except KeyError as error:
            raise RequestError(str(error.args[0])) from None
    return name


def _robustness(payload: dict) -> RobustnessObjective | None:
    """``robustness``: a quantile name or ``{rank_by, samples, seed}``."""
    value = payload.get("robustness")
    if value is None:
        return None
    try:
        if isinstance(value, str):
            return RobustnessObjective(rank_by=value)
        if isinstance(value, dict):
            _reject_unknown(
                value, ("rank_by", "samples", "seed"), "robustness"
            )
            return RobustnessObjective(
                rank_by=_field(value, "rank_by", str, "p95"),
                samples=_field(value, "samples", int, 256, convert=_positive),
                seed=_field(value, "seed", int, 0),
            )
    except ValueError as error:
        if isinstance(error, RequestError):
            raise
        raise RequestError(f"field 'robustness': {error}") from None
    raise RequestError(
        "field 'robustness' must be a quantile name ('p50'/'p95'/'worst'/"
        "'mean') or an object {rank_by, samples, seed}"
    )


# ---------------------------------------------------------------------------
# /v1/plan
# ---------------------------------------------------------------------------

_PLAN_FIELDS = (
    "devices", "vocab_size", "seq_length", "microbatches",
    "memory_budget_gib", "pass_overhead", "scenario", "methods",
    "simulate_top_k", "refine", "robustness", "cost_model",
)


@dataclass(frozen=True)
class PlanRequest:
    """One normalized ``POST /v1/plan`` body.

    Mirrors the ``repro-experiments plan`` surface: the model shape is
    derived from ``devices``/``vocab_size``/``seq_length`` through
    :func:`~repro.planner.model_for_devices`, exactly as the CLI and
    sweep layers do, so equal queries normalize to equal digests no
    matter which entry point produced them.
    """

    devices: int
    vocab_size: int
    seq_length: int = 2048
    microbatches: int = 128
    memory_budget_gib: float | None = None
    pass_overhead: float | None = None
    scenario: str | None = None
    methods: tuple[str, ...] | None = None
    simulate_top_k: int | None = 3
    refine: bool = True
    robustness: RobustnessObjective | None = None
    cost_model: str | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> PlanRequest:
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        _reject_unknown(payload, _PLAN_FIELDS, "plan")
        request = cls(
            devices=_field(payload, "devices", int, convert=_positive),
            vocab_size=_field(
                payload, "vocab_size", (int, str), convert=_coerce_vocab
            ),
            seq_length=_field(
                payload, "seq_length", int, 2048, convert=_positive
            ),
            microbatches=_field(
                payload, "microbatches", int, 128, convert=_positive
            ),
            memory_budget_gib=_field(
                payload, "memory_budget_gib", (int, float), None,
                convert=_positive,
            ),
            pass_overhead=_field(
                payload, "pass_overhead", (int, float), None,
                convert=_non_negative,
            ),
            scenario=_scenario_name(payload),
            methods=_methods_tuple(payload),
            simulate_top_k=_top_k(payload),
            refine=_field(payload, "refine", bool, True),
            robustness=_robustness(payload),
            cost_model=_cost_model_name(payload),
        )
        if request.robustness is not None and request.scenario is None:
            raise RequestError(
                "field 'robustness' requires a 'scenario' (the jitter source)"
            )
        try:
            request.resolve()
        except (ValueError, KeyError) as error:
            if isinstance(error, RequestError):
                raise
            message = error.args[0] if error.args else error
            raise RequestError(str(message)) from None
        return request

    def resolve(
        self,
    ) -> tuple[
        ModelConfig,
        ParallelConfig,
        PlannerConstraints,
        ClusterScenario | None,
        RobustnessObjective | None,
    ]:
        """The planner-level objects this request denotes."""
        model = model_for_devices(self.devices, self.seq_length, self.vocab_size)
        parallel = ParallelConfig(
            pipeline_size=self.devices,
            num_microbatches=self.microbatches,
            microbatch_size=1,
        )
        constraints = PlannerConstraints(
            memory_budget_gib=self.memory_budget_gib,
            methods=self.methods,
            simulate_top_k=self.simulate_top_k,
            refine=self.refine,
            cost_model=self.cost_model,
        )
        scenario = None if self.scenario is None else get_scenario(self.scenario)
        return model, parallel, constraints, scenario, self.robustness

    def digest(self) -> str:
        """The planner's whole-plan cache key for this request.

        Identical to the key :func:`repro.planner.plan` will store the
        result under — the property the tiered cache and the coalescer
        rely on.  Includes the resolved scenario *signature*, so two
        scenarios sharing a name but not a definition never collide.
        """
        model, parallel, constraints, scenario, robustness = self.resolve()
        return plan_cache_key(
            model,
            parallel,
            constraints,
            pass_overhead=self.pass_overhead,
            scenario=scenario,
            robustness=robustness,
        )


def execute_plan_request(
    request: PlanRequest,
    cache_dir: str | None = None,
    max_cache_entries: int | None = None,
) -> RankedPlans:
    """Worker body for one plan request (top-level: pool-picklable)."""
    model, parallel, constraints, scenario, robustness = request.resolve()
    cache = (
        PlanCache(cache_dir, max_entries=max_cache_entries)
        if cache_dir is not None
        else None
    )
    return plan(
        model,
        parallel,
        constraints,
        cache=cache,
        pass_overhead=request.pass_overhead,
        scenario=scenario,
        robustness=robustness,
    )


# ---------------------------------------------------------------------------
# /v1/sweep
# ---------------------------------------------------------------------------

_SWEEP_FIELDS = (
    "devices", "vocab_sizes", "seq_lengths", "microbatches",
    "memory_budgets_gib", "pass_overheads", "scenarios", "methods",
    "simulate_top_k", "refine", "cost_model",
)


def _int_list(payload: dict, name: str, default: Any = _MISSING) -> tuple:
    values = _field(payload, name, list, default)
    if not isinstance(values, tuple):
        if not values:
            raise RequestError(f"field {name!r} must be a non-empty list")
        for v in values:
            if isinstance(v, bool) or not isinstance(v, int) or v <= 0:
                raise RequestError(
                    f"field {name!r} must list positive integers, got {v!r}"
                )
        values = tuple(values)
    return values


def _optional_number_list(payload: dict, name: str) -> tuple:
    values = _field(payload, name, list, (None,))
    if not isinstance(values, tuple):
        out = []
        for v in values:
            if v is None:
                out.append(None)
            elif isinstance(v, bool) or not isinstance(v, (int, float)) or v <= 0:
                raise RequestError(
                    f"field {name!r} must list positive numbers or null, "
                    f"got {v!r}"
                )
            else:
                out.append(float(v))
        values = tuple(out)
    return values


@dataclass(frozen=True)
class SweepRequest:
    """One normalized ``POST /v1/sweep`` body — a planning grid.

    Axes mirror :func:`repro.planner.grid`; the expansion is bounded by
    :data:`MAX_SWEEP_POINTS` so one request cannot monopolize the
    worker pool.
    """

    devices: tuple[int, ...]
    vocab_sizes: tuple[int, ...]
    seq_lengths: tuple[int, ...] = (2048,)
    microbatches: tuple[int, ...] = (128,)
    memory_budgets_gib: tuple[float | None, ...] = (None,)
    pass_overheads: tuple[float | None, ...] = (None,)
    scenarios: tuple[str | None, ...] = (None,)
    methods: tuple[str, ...] | None = None
    simulate_top_k: int | None = 3
    refine: bool = True
    cost_model: str | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> SweepRequest:
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        _reject_unknown(payload, _SWEEP_FIELDS, "sweep")
        vocab_values = _field(payload, "vocab_sizes", list)
        if not vocab_values:
            raise RequestError("field 'vocab_sizes' must be a non-empty list")
        scenario_values = _field(payload, "scenarios", list, (None,))
        if not isinstance(scenario_values, tuple):
            names: list[str | None] = []
            for name in scenario_values:
                if name is None:
                    names.append(None)
                    continue
                if not isinstance(name, str):
                    raise RequestError(
                        "field 'scenarios' must list scenario names or null, "
                        f"got {name!r}"
                    )
                names.append(_scenario_name({"scenario": name}))
            scenario_values = tuple(names)
        request = cls(
            devices=_int_list(payload, "devices"),
            vocab_sizes=tuple(
                _coerce_vocab("vocab_sizes", v) for v in vocab_values
            ),
            seq_lengths=_int_list(payload, "seq_lengths", (2048,)),
            microbatches=_int_list(payload, "microbatches", (128,)),
            memory_budgets_gib=_optional_number_list(
                payload, "memory_budgets_gib"
            ),
            pass_overheads=_optional_number_list(payload, "pass_overheads"),
            scenarios=scenario_values,
            methods=_methods_tuple(payload),
            simulate_top_k=_top_k(payload),
            refine=_field(payload, "refine", bool, True),
            cost_model=_cost_model_name(payload),
        )
        if len(request.points()) > MAX_SWEEP_POINTS:
            raise RequestError(
                f"sweep expands to {len(request.points())} grid points; "
                f"the service caps one request at {MAX_SWEEP_POINTS}"
            )
        return request

    def points(self) -> list[SweepPoint]:
        return grid(
            devices=self.devices,
            vocab_sizes=self.vocab_sizes,
            seq_lengths=self.seq_lengths,
            microbatches=self.microbatches,
            memory_budgets_gib=self.memory_budgets_gib,
            pass_overheads=self.pass_overheads,
            scenarios=self.scenarios,
        )

    def constraints(self) -> PlannerConstraints:
        return PlannerConstraints(
            methods=self.methods,
            simulate_top_k=self.simulate_top_k,
            refine=self.refine,
            cost_model=self.cost_model,
        )

    def digest(self) -> str:
        """Request digest over the normalized grid + constraints.

        Scenario axes contribute their full signatures, so re-registered
        scenario definitions invalidate rather than alias.
        """
        signatures = [
            None if name is None else list(map(repr, get_scenario(name).signature()))
            for name in self.scenarios
        ]
        return config_digest(
            "service-sweep", self.points(), self.constraints(), signatures,
            PLANNER_VERSION,
        )


def execute_sweep_request(
    request: SweepRequest,
    cache_dir: str | None = None,
    max_cache_entries: int | None = None,
) -> list[SweepOutcome]:
    """Worker body for one sweep request (structure-grouped, serial).

    One pool task plans the whole grid through
    :func:`~repro.planner.plan_points` (points pre-grouped by structure
    axes, exactly like :func:`~repro.planner.sweep`'s chunks do), so
    concurrent sweep *requests* parallelize across the pool while each
    request amortizes its structural caches in one worker.
    """
    points = request.points()
    order = sorted(
        range(len(points)), key=lambda i: points[i].structure_axes() + (i,)
    )
    outcomes = plan_points(
        [points[i] for i in order],
        request.constraints(),
        cache_dir,
        max_cache_entries,
    )
    by_input: list[SweepOutcome] = [None] * len(points)  # type: ignore[list-item]
    for position, outcome in zip(order, outcomes):
        by_input[position] = outcome
    return by_input


# ---------------------------------------------------------------------------
# /v1/whatif
# ---------------------------------------------------------------------------

_WHATIF_FIELDS = (
    "devices", "vocab_size", "seq_length", "microbatches", "method",
    "device", "factor", "pass_overhead", "scenario", "refine",
)


@dataclass(frozen=True)
class WhatifRequest:
    """One normalized ``POST /v1/whatif`` body — an incremental query.

    Prices "what if ``device`` ran ``factor``× slower?" against
    ``method``'s schedule via :func:`repro.planner.whatif` — the
    cone-limited delta-replay path over a worker-resident compiled
    graph, not a re-plan.  The model shape derives from
    ``devices``/``vocab_size``/``seq_length`` exactly like
    :class:`PlanRequest`, and the digest is the planner's own what-if
    cache key, so the service tiers and the planner's ``"whatif"``
    auxiliary cache address the same entry.
    """

    devices: int
    vocab_size: int
    method: str
    device: int
    factor: float
    seq_length: int = 2048
    microbatches: int = 128
    pass_overhead: float | None = None
    scenario: str | None = None
    refine: bool = True

    @classmethod
    def from_payload(cls, payload: Any) -> WhatifRequest:
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        _reject_unknown(payload, _WHATIF_FIELDS, "whatif")
        method = _field(payload, "method", str)
        if method not in KNOWN_METHODS:
            raise RequestError(
                f"unknown method {method!r}; expected one of {KNOWN_METHODS}"
            )
        request = cls(
            devices=_field(payload, "devices", int, convert=_positive),
            vocab_size=_field(
                payload, "vocab_size", (int, str), convert=_coerce_vocab
            ),
            method=method,
            device=_field(payload, "device", int),
            factor=float(
                _field(payload, "factor", (int, float), convert=_positive)
            ),
            seq_length=_field(
                payload, "seq_length", int, 2048, convert=_positive
            ),
            microbatches=_field(
                payload, "microbatches", int, 128, convert=_positive
            ),
            pass_overhead=_field(
                payload, "pass_overhead", (int, float), None,
                convert=_non_negative,
            ),
            scenario=_scenario_name(payload),
            refine=_field(payload, "refine", bool, True),
        )
        try:
            request.digest()  # device range, config validity
        except (ValueError, KeyError) as error:
            if isinstance(error, RequestError):
                raise
            message = error.args[0] if error.args else error
            raise RequestError(str(message)) from None
        return request

    def resolve(
        self,
    ) -> tuple[ModelConfig, ParallelConfig, ClusterScenario | None]:
        """The planner-level objects this request denotes."""
        model = model_for_devices(self.devices, self.seq_length, self.vocab_size)
        parallel = ParallelConfig(
            pipeline_size=self.devices,
            num_microbatches=self.microbatches,
            microbatch_size=1,
        )
        scenario = None if self.scenario is None else get_scenario(self.scenario)
        return model, parallel, scenario

    def digest(self) -> str:
        """The planner's what-if cache key for this request.

        Identical to the ``cache_key`` :func:`repro.planner.whatif`
        stamps on its result — same normalization (scenario resolved to
        its signature, negative device indexes wrapped), so the
        service's LRU/disk tiers and the planner's auxiliary cache
        never double-compute one query.
        """
        model, parallel, scenario = self.resolve()
        return whatif_cache_key(
            model,
            parallel,
            method=self.method,
            device=self.device,
            factor=self.factor,
            pass_overhead=self.pass_overhead,
            scenario=scenario,
            refine=self.refine,
        )


def execute_whatif_request(
    request: WhatifRequest,
    cache_dir: str | None = None,
    max_cache_entries: int | None = None,
) -> dict:
    """Worker body for one what-if request (top-level: pool-picklable).

    Returns the JSON-ready result dict.  Besides the planner's
    ``"whatif"`` auxiliary entry (written by :func:`repro.planner.whatif`
    itself), the rendered payload is stored under the main digest so
    the service's *disk* tier can answer repeats without a worker
    round-trip — the same two-level arrangement ``/v1/plan`` gets from
    :func:`~repro.planner.plan`.
    """
    model, parallel, scenario = request.resolve()
    cache = (
        PlanCache(cache_dir, max_entries=max_cache_entries)
        if cache_dir is not None
        else None
    )
    result = whatif(
        model,
        parallel,
        method=request.method,
        device=request.device,
        factor=request.factor,
        pass_overhead=request.pass_overhead,
        scenario=scenario,
        refine=request.refine,
        cache=cache,
    )
    payload = result.as_dict()
    if cache is not None:
        cache.put(result.cache_key, payload)
    return payload


# ---------------------------------------------------------------------------
# /v1/scenarios
# ---------------------------------------------------------------------------

_SCENARIO_FIELDS = (
    "scenario", "method", "devices", "vocab_size", "seq_length",
    "microbatches", "samples", "seed",
)


@dataclass(frozen=True)
class ScenarioRequest:
    """One normalized ``POST /v1/scenarios`` body.

    ``method=None`` compares every implemented family (the CLI's
    ``scenarios compare``); naming a method prices just that one
    (``scenarios run``).  Defaults mirror the CLI: 12 devices so the
    two-tier node boundary is live, 32 microbatches to keep Monte Carlo
    interactive.
    """

    scenario: str
    method: str | None = None
    devices: int = 12
    vocab_size: int = 128 * 1024
    seq_length: int = 2048
    microbatches: int = 32
    samples: int = 256
    seed: int = 0

    @classmethod
    def from_payload(cls, payload: Any) -> ScenarioRequest:
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        _reject_unknown(payload, _SCENARIO_FIELDS, "scenarios")
        name = _scenario_name(payload)
        if name is None:
            raise RequestError("missing required field 'scenario'")
        method = _field(payload, "method", str, None)
        if method is not None and method not in KNOWN_METHODS:
            raise RequestError(
                f"unknown method {method!r}; expected one of {KNOWN_METHODS}"
            )
        return cls(
            scenario=name,
            method=method,
            devices=_field(payload, "devices", int, 12, convert=_positive),
            vocab_size=_field(
                payload, "vocab_size", (int, str), 128 * 1024,
                convert=_coerce_vocab,
            ),
            seq_length=_field(
                payload, "seq_length", int, 2048, convert=_positive
            ),
            microbatches=_field(
                payload, "microbatches", int, 32, convert=_positive
            ),
            samples=_field(payload, "samples", int, 256, convert=_positive),
            seed=_field(payload, "seed", int, 0),
        )

    def digest(self) -> str:
        scenario = get_scenario(self.scenario)
        return config_digest(
            "service-scenarios",
            self,
            list(map(repr, scenario.signature())),
            PLANNER_VERSION,
        )


def execute_scenario_request(request: ScenarioRequest) -> dict:
    """Worker body for one scenario request: Monte Carlo robustness.

    Returns the already-JSON-safe payload (ranked statistics plus the
    structurally skipped methods), mirroring the CLI's ``--json``
    output so service and CLI consumers read one schema.
    """
    scenario = get_scenario(request.scenario)
    model = model_for_devices(
        request.devices, request.seq_length, request.vocab_size
    )
    parallel = ParallelConfig(
        pipeline_size=request.devices,
        num_microbatches=request.microbatches,
        microbatch_size=1,
    )
    methods = [request.method] if request.method else list(KNOWN_METHODS)
    ranked = []
    skipped = []
    for method in methods:
        reason = infeasibility_reason(method, model, parallel)
        if reason is not None:
            skipped.append({"method": method, "reason": reason})
            continue
        stats = method_robustness(
            method,
            model,
            parallel,
            scenario,
            samples=request.samples,
            seed=request.seed,
        )
        ranked.append((method, stats))
    ranked.sort(key=lambda item: (item[1].p95_time, item[0]))
    return {
        "scenario": scenario.name,
        "devices": request.devices,
        "vocab_size": request.vocab_size,
        "seq_length": request.seq_length,
        "microbatches": request.microbatches,
        "samples": request.samples,
        "seed": request.seed,
        "ranked": [
            {"method": method, **stats.as_dict()} for method, stats in ranked
        ],
        "skipped": skipped,
    }


# ---------------------------------------------------------------------------
# JSON rendering of planner results
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# /v1/optimize
# ---------------------------------------------------------------------------

_OPTIMIZE_FIELDS = (
    "devices", "vocab_size", "seq_length", "microbatches",
    "memory_budget_gib", "methods", "scenario", "cost_model",
    "strategy", "seed", "budget", "pass_overhead",
)


@dataclass(frozen=True)
class OptimizeRequest:
    """One normalized ``POST /v1/optimize`` body — a rewrite search.

    Runs :func:`repro.optimize.optimize`: start from the best named
    family for the configuration and search semantics-preserving local
    rewrites for a schedule the simulator verifies as faster.  The
    model shape derives from ``devices``/``vocab_size``/``seq_length``
    exactly like :class:`PlanRequest`; the digest is the optimizer's
    own cache key, so the service tiers and the planner cache's
    ``"optimize"`` auxiliary namespace address the same search.
    """

    devices: int
    vocab_size: int
    seq_length: int = 2048
    microbatches: int = 16
    memory_budget_gib: float | None = None
    methods: tuple[str, ...] | None = None
    scenario: str | None = None
    cost_model: str | None = None
    strategy: str = "greedy"
    seed: int = 0
    budget: int = DEFAULT_BUDGET
    pass_overhead: float | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> OptimizeRequest:
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        _reject_unknown(payload, _OPTIMIZE_FIELDS, "optimize")
        strategy = _field(payload, "strategy", str, "greedy")
        if strategy not in STRATEGY_NAMES:
            raise RequestError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{STRATEGY_NAMES}"
            )
        request = cls(
            devices=_field(payload, "devices", int, convert=_positive),
            vocab_size=_field(
                payload, "vocab_size", (int, str), convert=_coerce_vocab
            ),
            seq_length=_field(
                payload, "seq_length", int, 2048, convert=_positive
            ),
            microbatches=_field(
                payload, "microbatches", int, 16, convert=_positive
            ),
            memory_budget_gib=_field(
                payload, "memory_budget_gib", (int, float), None,
                convert=_positive,
            ),
            methods=_methods_tuple(payload),
            scenario=_scenario_name(payload),
            cost_model=_cost_model_name(payload),
            strategy=strategy,
            seed=_field(payload, "seed", int, 0),
            budget=_field(
                payload, "budget", int, DEFAULT_BUDGET, convert=_positive
            ),
            pass_overhead=_field(
                payload, "pass_overhead", (int, float), None,
                convert=_non_negative,
            ),
        )
        try:
            request.digest()  # config validity, strategy/budget bounds
        except (ValueError, KeyError) as error:
            if isinstance(error, RequestError):
                raise
            message = error.args[0] if error.args else error
            raise RequestError(str(message)) from None
        return request

    def resolve(
        self,
    ) -> tuple[ModelConfig, ParallelConfig, PlannerConstraints,
               ClusterScenario | None]:
        """The optimizer-level objects this request denotes."""
        model = model_for_devices(self.devices, self.seq_length, self.vocab_size)
        parallel = ParallelConfig(
            pipeline_size=self.devices,
            num_microbatches=self.microbatches,
            microbatch_size=1,
        )
        constraints = PlannerConstraints(
            memory_budget_gib=self.memory_budget_gib,
            methods=self.methods,
            cost_model=self.cost_model,
        )
        scenario = None if self.scenario is None else get_scenario(self.scenario)
        return model, parallel, constraints, scenario

    def digest(self) -> str:
        """The optimizer's cache key for this request.

        Identical to the ``cache_key`` :func:`repro.optimize.optimize`
        stamps on its result, so the service's LRU/disk tiers and the
        optimizer's auxiliary cache never double-compute one search.
        """
        model, parallel, constraints, scenario = self.resolve()
        return optimize_cache_key(
            model,
            parallel,
            constraints,
            pass_overhead=self.pass_overhead,
            scenario=scenario,
            strategy=self.strategy,
            seed=self.seed,
            budget=self.budget,
        )


def execute_optimize_request(
    request: OptimizeRequest,
    cache_dir: str | None = None,
    max_cache_entries: int | None = None,
) -> dict:
    """Worker body for one optimize request (top-level: pool-picklable).

    Returns the JSON-ready result dict.  Besides the optimizer's
    ``"optimize"`` auxiliary entry (written by
    :func:`repro.optimize.optimize` itself), the rendered payload is
    stored under the main digest so the service's *disk* tier can
    answer repeats without a worker round-trip — the same two-level
    arrangement ``/v1/whatif`` uses.
    """
    model, parallel, constraints, scenario = request.resolve()
    cache = (
        PlanCache(cache_dir, max_entries=max_cache_entries)
        if cache_dir is not None
        else None
    )
    result = optimize(
        model,
        parallel,
        constraints,
        cache=cache,
        pass_overhead=request.pass_overhead,
        scenario=scenario,
        strategy=request.strategy,
        seed=request.seed,
        budget=request.budget,
    )
    payload = result.as_dict()
    if cache is not None:
        cache.put(result.cache_key, payload)
    return payload


def candidate_to_json(candidate) -> dict:
    """One :class:`~repro.planner.planner.PlanCandidate` as JSON data."""
    data = {
        "method": candidate.method,
        "feasible": candidate.feasible,
        "source": candidate.source,
        "reason": candidate.reason,
        "iteration_time": candidate.iteration_time,
        "peak_memory_gb": candidate.peak_memory_gb,
        "mfu": candidate.mfu,
        "estimated_time": candidate.estimated_time,
        "estimated_peak_gb": candidate.estimated_peak_gb,
    }
    if candidate.robust_time is not None:
        data["robust_time"] = candidate.robust_time
    if candidate.robust_stats is not None:
        data["robust_stats"] = candidate.robust_stats.as_dict()
    return data


def plans_to_json(plans: RankedPlans) -> dict:
    """A :class:`~repro.planner.planner.RankedPlans` as JSON data.

    Deterministic for a deterministic plan: serialized with sorted keys
    by the HTTP layer, coalesced/cached responses are bit-identical to
    the computed one.
    """
    return {
        "model": plans.model.as_dict(),
        "parallel": plans.parallel.as_dict(),
        "memory_budget_gib": plans.memory_budget_gib,
        "pass_overhead": plans.pass_overhead,
        "scenario": None if plans.scenario is None else plans.scenario.name,
        "robustness": (
            None if plans.robustness is None else plans.robustness.as_dict()
        ),
        "cache_key": plans.cache_key,
        "cost_model": plans.cost_model,
        "trust_gated": plans.trust_gated,
        "trust_skipped": list(plans.trust_skipped),
        "best": plans.ranked[0].method if plans.ranked else None,
        "ranked": [candidate_to_json(c) for c in plans.ranked],
        "rejected": [candidate_to_json(c) for c in plans.rejected],
    }


def sweep_to_json(outcomes: list[SweepOutcome]) -> dict:
    """A sweep's outcomes as JSON data (per-point best + full ranking)."""
    points = []
    for outcome in outcomes:
        point = outcome.point
        best = outcome.plans.best if outcome.plans.ranked else None
        points.append(
            {
                "devices": point.devices,
                "vocab_size": point.vocab_size,
                "seq_length": point.seq_length,
                "microbatches": point.num_microbatches,
                "memory_budget_gib": outcome.plans.memory_budget_gib,
                "pass_overhead": point.pass_overhead,
                "scenario": point.scenario,
                "best": None if best is None else best.method,
                "iteration_time": None if best is None else best.iteration_time,
                "mfu": None if best is None else best.mfu,
                "cache_key": outcome.plans.cache_key,
                "ranked": [
                    candidate_to_json(c) for c in outcome.plans.ranked
                ],
            }
        )
    return {"points": points}
