"""Fleet supervisor: N planning-service shards behind one router.

``repro-experiments serve --fleet N`` starts this supervisor instead of
a single :class:`~repro.service.app.PlanningService`.  It spawns N
shard *subprocesses* (each the unmodified single-process service on an
ephemeral port, all sharing one crash-safe disk
:class:`~repro.planner.cache.PlanCache` directory) and one
:class:`~repro.service.router.FleetRouter` in front, then supervises:

* **Health probing** — every ``probe_interval_s`` the monitor polls
  each up shard's ``/healthz``; two consecutive failures (or the
  process exiting) mark the shard ``down``, at which point the router
  is already failing its keys over to the ring successor.

* **Restart with backoff** — a dead shard is respawned after an
  exponentially growing delay (``restart_backoff_s`` doubling per
  consecutive failure, capped) and re-admitted to routing only after a
  warm-up ``/healthz`` probe answers — a shard that crash-loops on
  startup never serves traffic.

* **Rolling restart** — ``POST /admin/restart`` on the router (or
  ``SIGHUP`` to the supervisor) restarts the fleet one shard at a
  time: drain (router stops picking it), graceful stop (``POST
  /shutdown`` so the shard flushes its in-flight work and caches),
  respawn, warm-up, re-admit, next shard.  At least N-1 shards serve
  at every instant.

* **Chaos hooks** — the ``kill-shard`` and ``hang-shard`` fault sites
  (:mod:`repro.faultinject`) fire at monitor ticks and SIGKILL /
  SIGSTOP a victim shard, driving the exact failover + restart
  machinery above under test instead of trusting it.

The supervisor process is the signal target: SIGTERM/SIGINT shut the
fleet down gracefully (router drains, shards flush), SIGHUP triggers a
rolling restart.  Exit status is 0 for a clean shutdown and 1 if any
shard had to be force-killed *at shutdown* (deliberate chaos kills
during the run do not count).
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import signal
import sys
import time

from repro import faultinject
from repro.service.router import (
    DOWN,
    DRAINING,
    STARTING,
    UP,
    FleetRouter,
    ShardState,
)

#: Consecutive failed health probes before a shard is declared dead.
PROBE_FAILURE_THRESHOLD = 2


async def _http_get(
    host: str, port: int, path: str, timeout_s: float = 2.0
) -> int:
    """Minimal GET for health/warm-up probes; returns the status code.

    Deliberately independent of the router's proxy path so probes never
    touch request counters, latency windows or breakers.
    """

    async def _fetch() -> int:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line {status_line!r}"
                )
            return int(parts[1])
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_fetch(), timeout_s)


async def _http_post(
    host: str, port: int, path: str, timeout_s: float = 5.0
) -> int:
    """Minimal empty-body POST (used for the graceful ``/shutdown``)."""

    async def _send() -> int:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"POST {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Content-Length: 0\r\nConnection: close\r\n\r\n"
                .encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line {status_line!r}"
                )
            return int(parts[1])
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_send(), timeout_s)


class ShardProcess:
    """One shard subprocess: spawn, parse its port, track liveness."""

    def __init__(self, shard: ShardState, argv_tail: list[str]):
        self.shard = shard
        #: serve-subcommand arguments after ``serve --host H --port 0``.
        self.argv_tail = list(argv_tail)
        self.process: asyncio.subprocess.Process | None = None
        self._drain_task: asyncio.Task | None = None
        #: Whether this process has been SIGSTOPped by ``hang-shard``.
        self.stopped = False

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None

    async def spawn(self, startup_timeout_s: float = 30.0) -> None:
        """Start the subprocess and wait for its ``serving on`` line."""
        env = dict(os.environ)
        # The shard must import the same repro tree as the supervisor
        # regardless of how the supervisor itself was launched.
        src = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src + (os.pathsep + existing if existing else "")
            )
        self.stopped = False
        self.process = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--host", self.shard.host, "--port", "0", *self.argv_tail,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        assert self.process.stdout is not None
        deadline = time.monotonic() + startup_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{self.shard.shard_id} printed no 'serving on' line "
                    f"within {startup_timeout_s}s"
                )
            try:
                line_bytes = await asyncio.wait_for(
                    self.process.stdout.readline(), remaining
                )
            except asyncio.TimeoutError:
                continue
            if not line_bytes:
                raise RuntimeError(
                    f"{self.shard.shard_id} exited during startup "
                    f"(code {self.process.returncode})"
                )
            line = line_bytes.decode("utf-8", "replace").strip()
            if line.startswith("serving on http://"):
                self.shard.port = int(line.rsplit(":", 1)[1])
                break
        self.shard.pid = self.process.pid
        # Keep draining stdout so the shard never blocks on a full pipe.
        self._drain_task = asyncio.ensure_future(
            self._drain(self.process.stdout)
        )

    @staticmethod
    async def _drain(stream: asyncio.StreamReader) -> None:
        try:
            while await stream.readline():
                pass
        except (ConnectionError, OSError):
            pass

    def signal(self, signum: int) -> None:
        if self.alive() and self.process is not None:
            try:
                self.process.send_signal(signum)
            except ProcessLookupError:
                pass

    def resume_if_stopped(self) -> None:
        if self.stopped:
            self.signal(signal.SIGCONT)
            self.stopped = False

    async def wait(self, timeout_s: float) -> bool:
        """Wait for exit; ``True`` if the process is gone."""
        if self.process is None:
            return True
        try:
            await asyncio.wait_for(self.process.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    async def reap(self) -> None:
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self.process is not None:
            try:
                await self.process.wait()
            except (ConnectionError, OSError):
                pass


class FleetSupervisor:
    """Spawn, probe, restart and roll N shards behind one router."""

    def __init__(
        self,
        fleet: int,
        *,
        host: str = "127.0.0.1",
        port: int = 8180,
        shard_args: list[str] | None = None,
        probe_interval_s: float = 0.5,
        restart_backoff_s: float = 0.25,
        max_restart_backoff_s: float = 10.0,
        warmup_timeout_s: float = 30.0,
        hedge_min_ms: float = 50.0,
        hedge_max_ms: float = 2000.0,
    ):
        if fleet < 1:
            raise ValueError(f"fleet size must be >= 1, got {fleet}")
        if probe_interval_s <= 0:
            raise ValueError(
                f"probe_interval_s must be > 0, got {probe_interval_s}"
            )
        if restart_backoff_s <= 0:
            raise ValueError(
                f"restart_backoff_s must be > 0, got {restart_backoff_s}"
            )
        self.host = host
        self.probe_interval_s = probe_interval_s
        self.restart_backoff_s = restart_backoff_s
        self.max_restart_backoff_s = max(
            restart_backoff_s, max_restart_backoff_s
        )
        self.warmup_timeout_s = warmup_timeout_s
        self.shards = [
            ShardState(shard_id=f"shard-{index}", host=host)
            for index in range(fleet)
        ]
        self.processes = {
            shard.shard_id: ShardProcess(shard, shard_args or [])
            for shard in self.shards
        }
        self.router = FleetRouter(
            self.shards,
            host=host,
            port=port,
            hedge_min_ms=hedge_min_ms,
            hedge_max_ms=hedge_max_ms,
            on_restart=self.request_rolling_restart,
            on_shutdown=self.request_shutdown,
        )
        #: SIGKILLs issued by the kill-shard / hang-shard chaos sites.
        self.deliberate_kills = 0
        self.deliberate_hangs = 0
        #: Shards that needed a force-kill during *shutdown* (dirty exit).
        self.forced_at_shutdown = 0
        self._restart_tasks: dict[str, asyncio.Task] = {}
        self._consecutive_failures: dict[str, int] = {}
        self._rolling_task: asyncio.Task | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._chaos_victim = 0

    # -- chaos ------------------------------------------------------------

    def _pick_victim(self) -> ShardProcess | None:
        """Round-robin over currently-up shards (None if none are up)."""
        up = [
            self.processes[shard.shard_id]
            for shard in self.shards
            if shard.state == UP and self.processes[shard.shard_id].alive()
        ]
        if not up:
            return None
        victim = up[self._chaos_victim % len(up)]
        self._chaos_victim += 1
        return victim

    def _fire_chaos(self) -> None:
        if faultinject.should_fire("kill-shard"):
            victim = self._pick_victim()
            if victim is not None:
                self.deliberate_kills += 1
                victim.signal(signal.SIGKILL)
        if faultinject.should_fire("hang-shard"):
            victim = self._pick_victim()
            if victim is not None and not victim.stopped:
                self.deliberate_hangs += 1
                victim.stopped = True
                victim.signal(signal.SIGSTOP)

    # -- monitoring -------------------------------------------------------

    async def _monitor(self) -> None:
        assert self._shutdown_event is not None
        while not self._shutdown_event.is_set():
            try:
                await asyncio.wait_for(
                    self._shutdown_event.wait(), self.probe_interval_s
                )
                return
            except asyncio.TimeoutError:
                pass
            self._fire_chaos()
            probes = []
            probed = []
            for shard in self.shards:
                process = self.processes[shard.shard_id]
                if shard.state in (DOWN, STARTING):
                    continue
                if not process.alive():
                    self._declare_down(shard, "process exited")
                    continue
                if shard.state == UP:
                    probed.append(shard)
                    probes.append(
                        _http_get(shard.host, shard.port, "/healthz",
                                  timeout_s=self.probe_interval_s * 2)
                    )
            results = await asyncio.gather(*probes, return_exceptions=True)
            for shard, result in zip(probed, results):
                if shard.state != UP:
                    continue  # state moved while the probe was in flight
                if isinstance(result, Exception) or result != 200:
                    failures = self._consecutive_failures.get(
                        shard.shard_id, 0
                    ) + 1
                    self._consecutive_failures[shard.shard_id] = failures
                    shard.probe_failures += 1
                    if failures >= PROBE_FAILURE_THRESHOLD:
                        self._declare_down(
                            shard,
                            f"{failures} consecutive failed probes",
                        )
                else:
                    self._consecutive_failures[shard.shard_id] = 0

    def _declare_down(self, shard: ShardState, reason: str) -> None:
        """Mark a shard dead and schedule its restart (idempotent)."""
        if shard.state == DOWN or shard.shard_id in self._restart_tasks:
            return
        shard.state = DOWN
        shard.breaker.record_failure(reason)
        self._consecutive_failures[shard.shard_id] = 0
        process = self.processes[shard.shard_id]
        # A hung (SIGSTOPped) shard must be resumed before SIGKILL is
        # guaranteed to reap it promptly everywhere.
        process.resume_if_stopped()
        process.signal(signal.SIGKILL)
        self._restart_tasks[shard.shard_id] = asyncio.ensure_future(
            self._restart(shard)
        )

    async def _restart(self, shard: ShardState) -> None:
        """Respawn one dead shard with backoff; re-admit after warm-up."""
        process = self.processes[shard.shard_id]
        backoff = self.restart_backoff_s
        attempt = 0
        try:
            await process.reap()
            while (
                self._shutdown_event is not None
                and not self._shutdown_event.is_set()
            ):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, self.max_restart_backoff_s)
                attempt += 1
                shard.state = STARTING
                try:
                    await process.spawn()
                    await self._warmup(shard)
                except (OSError, RuntimeError, TimeoutError,
                        asyncio.TimeoutError) as error:
                    shard.state = DOWN
                    shard.breaker.record_failure(
                        f"restart attempt {attempt} failed: {error}"
                    )
                    process.signal(signal.SIGKILL)
                    await process.reap()
                    continue
                shard.restarts += 1
                shard.probe_failures = 0
                self._consecutive_failures[shard.shard_id] = 0
                shard.breaker.record_success()
                shard.state = UP
                return
        finally:
            self._restart_tasks.pop(shard.shard_id, None)

    async def _warmup(self, shard: ShardState) -> None:
        """Poll the fresh shard's ``/healthz`` until it answers 200."""
        deadline = time.monotonic() + self.warmup_timeout_s
        while True:
            try:
                if await _http_get(
                    shard.host, shard.port, "/healthz", timeout_s=1.0
                ) == 200:
                    return
            except (OSError, asyncio.TimeoutError, ConnectionError):
                pass
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{shard.shard_id} failed warm-up within "
                    f"{self.warmup_timeout_s}s"
                )
            await asyncio.sleep(0.05)

    # -- rolling restart --------------------------------------------------

    def request_rolling_restart(self) -> tuple[bool, str]:
        """Start a rolling restart (router callback + SIGHUP handler)."""
        if self._rolling_task is not None and not self._rolling_task.done():
            return False, "rolling restart already in progress"
        if self._shutdown_event is None or self._shutdown_event.is_set():
            return False, "fleet is shutting down"
        self._rolling_task = asyncio.ensure_future(self._rolling_restart())
        return True, "rolling restart started"

    async def _rolling_restart(self) -> None:
        for shard in self.shards:
            if (
                self._shutdown_event is not None
                and self._shutdown_event.is_set()
            ):
                return
            if shard.state != UP:
                continue  # crash-restart path already owns this shard
            process = self.processes[shard.shard_id]
            shard.state = DRAINING
            # New requests already route past this shard; give its
            # in-flight leaders a moment before the graceful stop (the
            # shard's own /shutdown drain handles the rest).
            await asyncio.sleep(self.probe_interval_s)
            await self._stop_gracefully(process)
            shard.state = STARTING
            try:
                await process.spawn()
                await self._warmup(shard)
            except (OSError, RuntimeError, TimeoutError,
                    asyncio.TimeoutError) as error:
                # Hand the shard to the crash-restart path rather than
                # stalling the roll forever.
                shard.state = DOWN
                shard.breaker.record_failure(
                    f"rolling respawn failed: {error}"
                )
                process.signal(signal.SIGKILL)
                if shard.shard_id not in self._restart_tasks:
                    self._restart_tasks[shard.shard_id] = (
                        asyncio.ensure_future(self._restart(shard))
                    )
                continue
            shard.restarts += 1
            self._consecutive_failures[shard.shard_id] = 0
            shard.breaker.record_success()
            shard.state = UP

    async def _stop_gracefully(
        self, process: ShardProcess, *, at_shutdown: bool = False
    ) -> None:
        """POST /shutdown → SIGTERM → SIGKILL escalation, in that order."""
        process.resume_if_stopped()
        if process.alive():
            try:
                await _http_post(
                    process.shard.host, process.shard.port, "/shutdown"
                )
            except (OSError, asyncio.TimeoutError, ConnectionError):
                pass
            if not await process.wait(10.0):
                process.signal(signal.SIGTERM)
                if not await process.wait(5.0):
                    process.signal(signal.SIGKILL)
                    if at_shutdown:
                        self.forced_at_shutdown += 1
                    await process.wait(5.0)
        await process.reap()

    # -- lifecycle --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin fleet shutdown (threadsafe; idempotent)."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    async def run_async(self, ready=None) -> int:
        """Spawn the fleet, serve until shutdown, stop everything."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        # Resolve REPRO_FAULTS before any shard spawns: a typo'd spec
        # must refuse to start the fleet, not fire mid-run.
        faultinject.get_injector()
        spawns = []
        for shard in self.shards:
            process = self.processes[shard.shard_id]
            spawns.append(self._initial_spawn(shard, process))
        await asyncio.gather(*spawns)
        monitor = asyncio.ensure_future(self._monitor())
        router_done = asyncio.ensure_future(
            self.router.serve_async(ready=ready)
        )
        try:
            await self._shutdown_event.wait()
        finally:
            self._shutdown_event.set()
            self.router.request_shutdown()
            background = [monitor, *self._restart_tasks.values()]
            if self._rolling_task is not None:
                background.append(self._rolling_task)
            for task in background:
                task.cancel()
            await asyncio.gather(*background, return_exceptions=True)
            await asyncio.gather(*(
                self._stop_gracefully(process, at_shutdown=True)
                for process in self.processes.values()
            ), return_exceptions=True)
            await asyncio.wait_for(router_done, 60.0)
        return 1 if self.forced_at_shutdown else 0

    async def _initial_spawn(
        self, shard: ShardState, process: ShardProcess
    ) -> None:
        await process.spawn()
        await self._warmup(shard)
        shard.state = UP

    def run(self, ready=None) -> int:
        """Blocking entry point with signal handling (the CLI calls this)."""

        async def _main() -> int:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
            try:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: self.request_rolling_restart(),
                )
            except (NotImplementedError, RuntimeError, AttributeError):
                pass
            return await self.run_async(ready=ready)

        return asyncio.run(_main())
